#!/usr/bin/env python
"""Pre-production profiling -> hyperparameter fit -> online learning.

Follows the paper's deployment procedure end to end:

1. **Profiling phase** — drive the testbed with random controls and
   record (context, control) -> (cost, delay, mAP) samples; persist the
   dataset as CSV (the paper published its measurement dataset the
   same way).
2. **Offline fit** — maximise the GP log marginal likelihood over the
   kernel lengthscales and noise variances on the profiling data.
3. **Execution phase** — run Algorithm 1 with the fitted, frozen
   hyperparameters.

Usage:
    python examples/profile_and_fit.py [n_profiling] [n_online]
"""

import sys
from pathlib import Path

import numpy as np

from repro import CostWeights, EdgeBOL, ServiceConstraints, TestbedConfig
from repro.experiments.hyperfit import collect_profiling_data
from repro.service.dataset_io import (
    load_profiling_dataset,
    save_profiling_dataset,
)
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table


def main(n_profiling: int = 50, n_online: int = 100) -> None:
    config = TestbedConfig()
    constraints = ServiceConstraints(d_max_s=0.4, rho_min=0.5)
    weights = CostWeights(1.0, 1.0)

    # 1. Profiling phase on the pre-production system.
    profiling_env = static_scenario(mean_snr_db=35.0, rng=100, config=config)
    agent = EdgeBOL(config.control_grid(), constraints, weights)
    dataset = collect_profiling_data(profiling_env, agent, n_profiling, rng=0)
    path = save_profiling_dataset(dataset, Path("results/profiling.csv"))
    print(f"collected {len(dataset)} profiling samples -> {path}")

    # 2. Offline maximum-likelihood fit (dataset reloaded from disk to
    # demonstrate the persistence path).
    reloaded = load_profiling_dataset(path)
    before = [tuple(float(v) for v in np.round(gp.kernel.lengthscales, 2)) for gp in agent.gps]
    agent.fit_hyperparameters(
        reloaded.inputs, reloaded.costs, reloaded.delays, reloaded.maps,
        n_restarts=1, rng=0,
    )
    after = [tuple(float(v) for v in np.round(gp.kernel.lengthscales, 2)) for gp in agent.gps]
    print(render_table(
        ["GP", "lengthscales before", "lengthscales after", "noise var"],
        [
            [name, str(b), str(a), gp.noise_variance]
            for name, b, a, gp in zip(
                ("cost", "delay", "mAP"), before, after, agent.gps
            )
        ],
    ))

    # 3. Execution phase with frozen hyperparameters.
    env = static_scenario(mean_snr_db=35.0, rng=0, config=config)
    costs = []
    for _ in range(n_online):
        context = env.observe_context()
        policy = agent.select(context)
        observation = env.step(policy)
        costs.append(agent.observe(context, policy, observation))
    print(
        f"\nonline phase: cost {np.mean(costs[:5]):.1f} -> "
        f"{np.mean(costs[-20:]):.1f} over {n_online} periods "
        f"(safe set size {agent.last_safe_set_size})"
    )


if __name__ == "__main__":
    n_prof = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    n_onl = int(sys.argv[2]) if len(sys.argv) > 2 else 100
    main(n_prof, n_onl)
