#!/usr/bin/env python
"""Drone inspection: fast-moving UE, rapidly changing channel.

A drone streaming video to an edge AI service sees its SNR swing
widely as it flies (the paper's Section 6.5 dynamic scenario: 5-38 dB).
An untrained EdgeBOL agent is deployed mid-flight; the example shows
how the safe set and the policies track the context, and that
knowledge learned in one channel state transfers to similar ones —
the agent converges within a few sweep cycles.

Usage:
    python examples/drone_inspection.py [n_periods]
"""

import sys

import numpy as np

from repro import CostWeights, EdgeBOL, ServiceConstraints, TestbedConfig
from repro.testbed.scenarios import dynamic_scenario
from repro.utils.ascii import render_chart, render_table


def main(n_periods: int = 150) -> None:
    config = TestbedConfig()
    env = dynamic_scenario(
        low_db=5.0, high_db=38.0, period=50, length=n_periods,
        config=config, rng=3,
    )
    agent = EdgeBOL(
        config.control_grid(),
        ServiceConstraints(d_max_s=0.4, rho_min=0.5),
        CostWeights(delta1=1.0, delta2=8.0),
    )

    snrs, safe_sizes, gpu, resolution, airtime, mcs, violations = (
        [], [], [], [], [], [], 0
    )
    for _ in range(n_periods):
        snrs.append(float(np.mean(env.current_snrs_db)))
        context = env.observe_context()
        policy = agent.select(context)
        observation = env.step(policy)
        agent.observe(context, policy, observation)
        safe_sizes.append(agent.last_safe_set_size)
        gpu.append(policy.gpu_speed)
        resolution.append(policy.resolution)
        airtime.append(policy.airtime)
        mcs.append(policy.mcs_fraction)
        if observation.delay_s > 0.4 or observation.map_score < 0.5:
            violations += 1

    print(render_chart({"SNR (dB)": snrs}, title="drone channel over time"))
    print()
    print(render_chart({"|S_t|": safe_sizes}, title="safe-set size over time"))
    print()
    print(render_chart(
        {"gpu": gpu, "mcs": mcs, "res": resolution, "airtime": airtime},
        title="policies over time",
    ))
    print()
    half = n_periods // 2
    print(render_table(
        ["metric", "value"],
        [
            ["constraint violations (total)", violations],
            ["violation rate", f"{violations / n_periods * 100:.1f}%"],
            ["final safe-set size", safe_sizes[-1]],
            ["policy std (gpu, 2nd half)", float(np.std(gpu[half:]))],
        ],
    ))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
