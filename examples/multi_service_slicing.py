#!/usr/bin/env python
"""Two AI services on one cell and one GPU, each with its own EdgeBOL.

Section 4.4 of the paper argues that jointly optimising several AI
services blows up the context-action dimensionality (4S + 3) and that
the practical design is one pre-configured slice per service, each
orchestrated independently.  This example runs that design: an AR
slice (tight delay, moderate accuracy) and a surveillance slice (lax
delay, strict accuracy) share the uplink and the GPU; each EdgeBOL
instance sees only its own slice's context and KPIs, and the
cross-slice contention simply appears as environment behaviour.

Usage:
    python examples/multi_service_slicing.py [n_periods]
"""

import sys

from repro.experiments.multiservice import (
    MultiServiceSetting,
    run_per_slice_edgebol,
    summary,
)
from repro.utils.ascii import render_chart, render_table


def main(n_periods: int = 150) -> None:
    setting = MultiServiceSetting(n_periods=n_periods)
    ar_log, sv_log = run_per_slice_edgebol(setting, seed=0)

    print(render_chart(
        {"AR slice": ar_log.cost, "surveillance": sv_log.cost},
        title="per-slice cost over time",
    ))
    print()
    print(render_chart(
        {"AR airtime": ar_log.airtime, "SV airtime": sv_log.airtime},
        title="airtime requests (admission control scales overload)",
    ))
    print()
    rows = summary(ar_log, sv_log)
    print(render_table(
        ["slice", "initial cost", "final cost", "delay viol.", "mAP viol."],
        [[r["slice"], r["initial_cost"], r["final_cost"],
          r["delay_violation_rate"], r["map_violation_rate"]] for r in rows],
    ))
    print(
        "\nEach agent honours its own constraints"
        f" (AR: d<={setting.ar_constraints.d_max_s}s,"
        f" mAP>={setting.ar_constraints.rho_min};"
        f" SV: d<={setting.surveillance_constraints.d_max_s}s,"
        f" mAP>={setting.surveillance_constraints.rho_min})"
        " while sharing the GPU and the cell."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
