#!/usr/bin/env python
"""Quickstart: learn an energy-minimal configuration in one context.

Runs EdgeBOL for 100 orchestration periods against the simulated
prototype with the paper's Fig. 9 settings (mean SNR 35 dB,
d_max = 0.4 s, rho_min = 0.5, delta1 = delta2 = 1) and prints the
cost trajectory, the converged policy and the constraint satisfaction
rate.

Usage:
    python examples/quickstart.py [n_periods]
"""

import sys

import numpy as np

from repro import (
    CostWeights,
    EdgeBOL,
    ServiceConstraints,
    TestbedConfig,
    static_scenario,
)
from repro.utils.ascii import render_chart, render_table


def main(n_periods: int = 100) -> None:
    config = TestbedConfig()
    env = static_scenario(mean_snr_db=35.0, rng=0, config=config)
    agent = EdgeBOL(
        config.control_grid(),
        ServiceConstraints(d_max_s=0.4, rho_min=0.5),
        CostWeights(delta1=1.0, delta2=1.0),
    )

    costs, delays, maps = [], [], []
    for t in range(n_periods):
        context = env.observe_context()
        policy = agent.select(context)
        observation = env.step(policy)
        cost = agent.observe(context, policy, observation)
        costs.append(cost)
        delays.append(observation.delay_s)
        maps.append(observation.map_score)

    print(render_chart({"cost u_t": costs}, title="EdgeBOL cost over time"))
    print()
    burn_in = n_periods // 4
    rows = [
        ["initial cost (first 5 periods)", float(np.mean(costs[:5]))],
        ["converged cost (last 20)", float(np.mean(costs[-20:]))],
        ["savings", f"{(1 - np.mean(costs[-20:]) / np.mean(costs[:5])) * 100:.1f}%"],
        ["delay satisfaction (t>=burn-in)",
         f"{np.mean(np.array(delays[burn_in:]) <= 0.4) * 100:.1f}%"],
        ["mAP satisfaction (t>=burn-in)",
         f"{np.mean(np.array(maps[burn_in:]) >= 0.5) * 100:.1f}%"],
        ["final safe-set size", agent.last_safe_set_size],
    ]
    print(render_table(["metric", "value"], rows))
    final = agent.select(env.observe_context())
    print(
        f"\nconverged policy: resolution={final.resolution:.2f} "
        f"airtime={final.airtime:.2f} gpu_speed={final.gpu_speed:.2f} "
        f"mcs={final.mcs_fraction:.2f}"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100)
