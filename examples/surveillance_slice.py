#!/usr/bin/env python
"""Security-surveillance slice: multiple fixed cameras, strict accuracy.

The paper motivates object recognition for "security surveillance or
fault detection in industrial chains" (Section 4.1).  This example
provisions a slice with several camera UEs of heterogeneous channel
quality, demands high accuracy (rho_min = 0.6) with a relaxed delay
bound (cameras tolerate ~1.5 s), and lets EdgeBOL find the cheapest
joint configuration.  It then compares the result against the offline
exhaustive-search oracle and runs the full synthetic-detector pipeline
(real mAP evaluation over generated frames) at the chosen resolution.

Usage:
    python examples/surveillance_slice.py [n_cameras] [n_periods]
"""

import sys

import numpy as np

from repro import CostWeights, EdgeBOL, ServiceConstraints, TestbedConfig
from repro.bandit import ExhaustiveOracle
from repro.service.detection import SyntheticDetector
from repro.service.images import SyntheticCocoDataset
from repro.testbed.scenarios import heterogeneous_scenario
from repro.utils.ascii import render_table


def main(n_cameras: int = 4, n_periods: int = 120) -> None:
    config = TestbedConfig()
    constraints = ServiceConstraints(d_max_s=1.5, rho_min=0.6)
    weights = CostWeights(delta1=1.0, delta2=4.0)

    env = heterogeneous_scenario(n_users=n_cameras, rng=7, config=config)
    agent = EdgeBOL(config.control_grid(), constraints, weights)

    costs = []
    for _ in range(n_periods):
        context = env.observe_context()
        policy = agent.select(context)
        observation = env.step(policy)
        costs.append(agent.observe(context, policy, observation))
    converged_cost = float(np.mean(costs[-20:]))
    final_policy = agent.select(env.observe_context())

    # Offline optimum for the mean channel state of this deployment.
    oracle_env = heterogeneous_scenario(n_users=n_cameras, rng=99, config=config)
    oracle = ExhaustiveOracle(oracle_env, weights)
    snrs = [30.0 * 0.8**i for i in range(n_cameras)]
    best = oracle.best(constraints, snrs_db=snrs)

    print(render_table(
        ["metric", "EdgeBOL", "oracle"],
        [
            ["cost (mu)", converged_cost, best.cost],
            ["resolution", final_policy.resolution, best.policy.resolution],
            ["airtime", final_policy.airtime, best.policy.airtime],
            ["gpu speed", final_policy.gpu_speed, best.policy.gpu_speed],
            ["mcs level", final_policy.mcs_fraction, best.policy.mcs_fraction],
        ],
    ))
    gap = (converged_cost - best.cost) / best.cost * 100
    print(f"\noptimality gap: {gap:.1f}%")

    # Validate the accuracy target with the real mAP pipeline.
    dataset = SyntheticCocoDataset(rng=1)
    detector = SyntheticDetector(rng=2)
    batch = dataset.sample_batch(150)
    measured = detector.measure_map(batch, final_policy.resolution)
    print(
        f"measured mAP over a fresh 150-frame batch at resolution "
        f"{final_policy.resolution:.2f}: {measured:.3f} "
        f"(target >= {constraints.rho_min})"
    )


if __name__ == "__main__":
    n_cameras = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    n_periods = int(sys.argv[2]) if len(sys.argv) > 2 else 120
    main(n_cameras, n_periods)
