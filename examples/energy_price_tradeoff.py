#!/usr/bin/env python
"""Energy-price trade-off: shifting consumption between BS and server.

Section 6.2 of the paper: the relative price of a watt at the vBS
(delta2) versus at the edge server (delta1) steers EdgeBOL to shift
power between the two. A solar-powered small cell (expensive BS watts,
high delta2) ends up with low-consuming radio policies compensated by
GPU speed; cheap grid power at the BS (low delta2) does the opposite.

This example sweeps delta2 and prints the converged powers and
policies — the data behind Figs. 10-11.

Usage:
    python examples/energy_price_tradeoff.py [n_periods_per_cell]
"""

import sys

import numpy as np

from repro import CostWeights, EdgeBOL, ServiceConstraints, TestbedConfig
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table


def converge(delta2: float, n_periods: int, config: TestbedConfig):
    env = static_scenario(mean_snr_db=35.0, rng=5, config=config)
    agent = EdgeBOL(
        config.control_grid(),
        ServiceConstraints(d_max_s=0.5, rho_min=0.4),
        CostWeights(delta1=1.0, delta2=delta2),
    )
    server_p, bs_p, policies = [], [], []
    for _ in range(n_periods):
        context = env.observe_context()
        policy = agent.select(context)
        observation = env.step(policy)
        agent.observe(context, policy, observation)
        server_p.append(observation.server_power_w)
        bs_p.append(observation.bs_power_w)
        policies.append(policy.to_array())
    tail = slice(-20, None)
    mean_policy = np.mean(policies[-20:], axis=0)
    return (
        float(np.mean(server_p[tail])),
        float(np.mean(bs_p[tail])),
        mean_policy,
    )


def main(n_periods: int = 100) -> None:
    config = TestbedConfig()
    rows = []
    for delta2 in (1.0, 4.0, 16.0, 64.0):
        server_power, bs_power, policy = converge(delta2, n_periods, config)
        rows.append(
            [
                delta2,
                server_power,
                bs_power,
                policy[0],
                policy[1],
                policy[2],
                policy[3],
            ]
        )
    print(render_table(
        [
            "delta2", "server W", "BS W",
            "resolution", "airtime", "gpu", "mcs",
        ],
        rows,
    ))
    print(
        "\nExpected shape (paper Figs. 10-11): as delta2 grows, BS power"
        " falls (cheaper to spend server watts), airtime/resolution drop"
        " and GPU speed rises to compensate the delay."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100)
