#!/usr/bin/env python
"""Full O-RAN integration: every decision travels A1 -> E2, every KPI
travels E2 -> O1.

Deploys EdgeBOL as an rApp in the SMO framework of the paper's Fig. 7:
the learning agent's radio policies are pushed as A1 policy instances,
enforced on the simulated O-eNB through E2 RIC Control by the policy
xApp, while the BS power KPI flows back through E2 indications, the KPI
database xApp and O1 reports into the data-collector rApp.  The example
verifies the enforced MAC state equals the agent's decisions and prints
interface traffic counters.

Usage:
    python examples/oran_integration.py [n_periods]
"""

import sys

import numpy as np

from repro import CostWeights, EdgeBOL, ServiceConstraints, TestbedConfig
from repro.oran import OranSystem
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table


def main(n_periods: int = 50) -> None:
    config = TestbedConfig()
    env = static_scenario(mean_snr_db=35.0, rng=11, config=config)
    agent = EdgeBOL(
        config.control_grid(),
        ServiceConstraints(d_max_s=0.4, rho_min=0.5),
        CostWeights(delta1=1.0, delta2=2.0),
    )
    system = OranSystem(env, agent)
    records = system.run(n_periods)

    smo = system.smo
    bus = smo.bus
    last = records[-1]
    rows = [
        ["periods run", len(records)],
        ["A1 policies deployed (rApp)", smo.policy_rapp.deployed_policies],
        ["E2 controls enforced (xApp)", smo.policy_xapp.enforced],
        ["E2 indications stored (KPI xApp)", len(smo.kpi_xapp.records)],
        ["O1 reports received (collector rApp)", smo.data_rapp.report_count],
        ["bus topics", ", ".join(bus.topics())],
        ["final cost", last.cost],
        ["final enforced airtime", last.policy.airtime],
        ["final enforced MCS cap", last.policy.radio_policy().max_mcs],
    ]
    print(render_table(["metric", "value"], rows))

    costs = [r.cost for r in records]
    print(
        f"\ncost: first-5 mean {np.mean(costs[:5]):.1f} -> "
        f"last-10 mean {np.mean(costs[-10:]):.1f}"
    )
    enforced = smo.e2_node.radio_policy
    print(
        f"O-eNB MAC state after the run: airtime={enforced.airtime:.2f}, "
        f"max_mcs={enforced.max_mcs} (set exclusively via A1->E2)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50)
