"""Background-traffic generators.

Fig. 6 of the paper emulates "10x more load" on the BS.  The default
environment models that with a constant multiplier; these generators
provide stochastic alternatives for studies of time-varying cell load:

* :class:`PoissonTraffic` — memoryless per-period load around a mean;
* :class:`OnOffTraffic` — a two-state Markov-modulated source (bursty
  cross traffic: an ON state at high rate, an OFF state at zero);
* :class:`DiurnalTraffic` — a deterministic day-shaped profile with
  multiplicative noise, matching cellular load traces.

All produce an *offered load multiplier* per orchestration period that
can be applied to the slice's own load before the BS power model.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative, check_positive


class PoissonTraffic:
    """Per-period multiplier ~ mean * Poisson-normalised fluctuation.

    The number of background flows in a period is Poisson; the
    multiplier is proportional to the realised count, normalised so the
    long-run mean equals ``mean_multiplier``.
    """

    def __init__(self, mean_multiplier: float = 10.0,
                 mean_flows: float = 20.0, rng=None) -> None:
        check_positive(mean_multiplier, "mean_multiplier")
        check_positive(mean_flows, "mean_flows")
        self.mean_multiplier = float(mean_multiplier)
        self.mean_flows = float(mean_flows)
        self._rng = ensure_rng(rng)

    def step(self) -> float:
        flows = self._rng.poisson(self.mean_flows)
        return float(self.mean_multiplier * flows / self.mean_flows)


class OnOffTraffic:
    """Two-state Markov-modulated background source.

    Parameters
    ----------
    on_multiplier, off_multiplier:
        Load multiplier in each state.
    p_on_to_off, p_off_to_on:
        Per-period transition probabilities.
    """

    def __init__(
        self,
        on_multiplier: float = 10.0,
        off_multiplier: float = 1.0,
        p_on_to_off: float = 0.1,
        p_off_to_on: float = 0.1,
        rng=None,
        start_on: bool = False,
    ) -> None:
        check_non_negative(off_multiplier, "off_multiplier")
        if on_multiplier < off_multiplier:
            raise ValueError("on_multiplier must be >= off_multiplier")
        for name, p in (("p_on_to_off", p_on_to_off), ("p_off_to_on", p_off_to_on)):
            if not 0.0 < p <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {p}")
        self.on_multiplier = float(on_multiplier)
        self.off_multiplier = float(off_multiplier)
        self.p_on_to_off = float(p_on_to_off)
        self.p_off_to_on = float(p_off_to_on)
        self._rng = ensure_rng(rng)
        self._on = bool(start_on)

    @property
    def is_on(self) -> bool:
        return self._on

    def stationary_on_probability(self) -> float:
        """Long-run fraction of time spent in the ON state."""
        return self.p_off_to_on / (self.p_off_to_on + self.p_on_to_off)

    def step(self) -> float:
        if self._on and self._rng.random() < self.p_on_to_off:
            self._on = False
        elif not self._on and self._rng.random() < self.p_off_to_on:
            self._on = True
        return self.on_multiplier if self._on else self.off_multiplier


class DiurnalTraffic:
    """Day-shaped load profile with multiplicative log-normal noise.

    The multiplier follows ``base + amplitude * sin^2(pi t / period)``
    — low at "night", peaking mid-"day" — like aggregate cellular load
    traces.
    """

    def __init__(
        self,
        base_multiplier: float = 1.0,
        peak_multiplier: float = 10.0,
        periods_per_day: int = 200,
        noise_rel: float = 0.1,
        rng=None,
        phase: int = 0,
    ) -> None:
        check_positive(base_multiplier, "base_multiplier")
        if peak_multiplier < base_multiplier:
            raise ValueError("peak_multiplier must be >= base_multiplier")
        if periods_per_day < 2:
            raise ValueError("periods_per_day must be >= 2")
        check_non_negative(noise_rel, "noise_rel")
        self.base_multiplier = float(base_multiplier)
        self.peak_multiplier = float(peak_multiplier)
        self.periods_per_day = int(periods_per_day)
        self.noise_rel = float(noise_rel)
        self._rng = ensure_rng(rng)
        # Starting offset into the day shape: multi-cell load harnesses
        # stagger cells so their peaks do not coincide.
        self._t = int(phase) % self.periods_per_day

    def step(self) -> float:
        phase = math.sin(math.pi * (self._t % self.periods_per_day)
                         / self.periods_per_day) ** 2
        self._t += 1
        value = self.base_multiplier + (
            self.peak_multiplier - self.base_multiplier
        ) * phase
        if self.noise_rel > 0:
            sigma = self.noise_rel
            value *= float(
                np.exp(self._rng.normal(-0.5 * sigma**2, sigma))
            )
        return float(max(value, 0.0))
