"""MAC-layer radio scheduler.

The orchestrator (EdgeBOL) sets *policies* at second-level timescale; the
MAC scheduler operating at millisecond granularity must respect them
(Policies 2 and 4 of the paper).  As in the multi-user experiments of
Section 6.4, the low-level mechanism is a round-robin scheduler: the
airtime budget is divided equally among backlogged users, and each user
transmits with the highest MCS its channel supports, capped by the MCS
policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.ran import phy
from repro.telemetry import runtime as telemetry
from repro.utils.validation import check_fraction

#: Bucket bounds (user counts) for the ``ran.mac.scheduled_users``
#: telemetry histogram.
_USER_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


@dataclass(frozen=True)
class RadioPolicy:
    """Radio policies enforced on the vBS slice.

    Attributes
    ----------
    airtime:
        Uplink duty-cycle budget for the slice, in [0, 1] (Policy 2).
    max_mcs:
        Highest MCS the scheduler may select (Policy 4).
    """

    airtime: float
    max_mcs: int

    def __post_init__(self) -> None:
        check_fraction(self.airtime, "airtime")
        if not 0 <= self.max_mcs <= phy.MAX_MCS:
            raise ValueError(
                f"max_mcs must be in 0..{phy.MAX_MCS}, got {self.max_mcs}"
            )

    @classmethod
    def from_normalized(cls, airtime: float, mcs_fraction: float) -> "RadioPolicy":
        """Build from the normalised [0, 1] control-space representation."""
        return cls(airtime=airtime, max_mcs=phy.mcs_from_fraction(mcs_fraction))


@dataclass(frozen=True)
class UserAllocation:
    """Per-user outcome of one scheduling epoch.

    Attributes
    ----------
    user_id:
        Position of the user in the input sequence.
    snr_db:
        Channel quality the allocation was computed for.
    mcs:
        Transport MCS actually used (policy cap AND channel limited).
    airtime_share:
        Fraction of total subframes granted to this user.
    goodput_bps:
        Achievable uplink goodput in bits/s under this allocation.
    """

    user_id: int
    snr_db: float
    mcs: int
    airtime_share: float
    goodput_bps: float


class RoundRobinScheduler:
    """Equal-airtime round-robin scheduler with per-user link adaptation.

    Parameters
    ----------
    bandwidth_mhz:
        LTE channel bandwidth (20 MHz in the testbed).
    mac_efficiency:
        Fraction of the nominal PHY rate a *single* closed-loop UE
        achieves end-to-end (grant latency, HARQ round trips,
        segmentation).  Calibrated in :mod:`repro.testbed.config`.
    pipelining_gain:
        Multi-user efficiency recovery per additional UE.  A lone
        stop-and-wait UE is latency-limited: subframes it cannot fill
        (while waiting for grants/HARQ) are wasted.  With several UEs
        the scheduler interleaves their grants, so the per-user
        efficiency grows as ``mac_efficiency * (1 + gain * (n - 1))``,
        capped at ``max_efficiency``.
    max_efficiency:
        Upper bound of the recovered per-user MAC efficiency.
    """

    def __init__(
        self,
        bandwidth_mhz: float = 20.0,
        mac_efficiency: float = 1.0,
        pipelining_gain: float = 0.35,
        max_efficiency: float = 0.85,
    ) -> None:
        if bandwidth_mhz <= 0:
            raise ValueError(f"bandwidth_mhz must be positive, got {bandwidth_mhz}")
        if not 0 < mac_efficiency <= 1:
            raise ValueError(f"mac_efficiency must be in (0, 1], got {mac_efficiency}")
        if pipelining_gain < 0:
            raise ValueError(f"pipelining_gain must be >= 0, got {pipelining_gain}")
        if not 0 < max_efficiency <= 1:
            raise ValueError(f"max_efficiency must be in (0, 1], got {max_efficiency}")
        self.bandwidth_mhz = float(bandwidth_mhz)
        self.mac_efficiency = float(mac_efficiency)
        self.pipelining_gain = float(pipelining_gain)
        self.max_efficiency = float(max_efficiency)

    def effective_mac_efficiency(self, n_users: int) -> float:
        """Per-user MAC efficiency for an ``n_users``-UE round robin."""
        if n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {n_users}")
        recovered = self.mac_efficiency * (
            1.0 + self.pipelining_gain * (n_users - 1)
        )
        return float(min(self.max_efficiency, recovered))

    def allocate(
        self, policy: RadioPolicy, snrs_db: Sequence[float]
    ) -> list[UserAllocation]:
        """Allocate the airtime budget equally across users.

        Each user's goodput follows from its share of subframes and the
        effective MCS (policy bound clipped by link adaptation for the
        user's SNR).  An empty user list yields an empty allocation.
        Counted as ``ran.mac.allocations`` with the per-epoch user
        count in the ``ran.mac.scheduled_users`` histogram.
        """
        users = list(snrs_db)
        if not users:
            return []
        telemetry.inc("ran.mac.allocations")
        telemetry.observe(
            "ran.mac.scheduled_users", float(len(users)),
            upper_bounds=_USER_BUCKETS,
        )
        share = policy.airtime / len(users)
        efficiency = self.effective_mac_efficiency(len(users))
        allocations = []
        for user_id, snr_db in enumerate(users):
            mcs = phy.effective_mcs(policy.max_mcs, float(snr_db))
            goodput = phy.uplink_capacity_bps(
                mcs,
                share,
                bandwidth_mhz=self.bandwidth_mhz,
                mac_efficiency=efficiency,
            )
            allocations.append(
                UserAllocation(
                    user_id=user_id,
                    snr_db=float(snr_db),
                    mcs=mcs,
                    airtime_share=share,
                    goodput_bps=goodput,
                )
            )
        return allocations

    def cell_capacity_bps(self, policy: RadioPolicy, snr_db: float) -> float:
        """Aggregate slice capacity if the whole budget served one channel."""
        mcs = phy.effective_mcs(policy.max_mcs, snr_db)
        return phy.uplink_capacity_bps(
            mcs,
            policy.airtime,
            bandwidth_mhz=self.bandwidth_mhz,
            mac_efficiency=self.mac_efficiency,
        )
