"""Radio access network substrate.

Models the srsRAN-based virtualized LTE base station of the EdgeBOL
testbed: SNR -> CQI -> MCS link adaptation, a round-robin MAC scheduler
that honours the airtime and maximum-MCS policies (Policies 2 and 4 of
the paper), and a baseband power model reproducing the regimes measured
in Figs. 5-6.
"""

from repro.ran.channel import GaussMarkovChannel, SnrTrace, constant_trace
from repro.ran.mac import RadioPolicy, RoundRobinScheduler, UserAllocation
from repro.ran.phy import (
    MAX_MCS,
    cqi_to_max_mcs,
    mcs_efficiency,
    mcs_from_fraction,
    snr_to_cqi,
    uplink_capacity_bps,
)
from repro.ran.harq import HarqModel, first_transmission_bler
from repro.ran.power import BSPowerModel
from repro.ran.schedulers import EqualRateScheduler, ProportionalFairScheduler
from repro.ran.traffic import DiurnalTraffic, OnOffTraffic, PoissonTraffic
from repro.ran.vbs import UplinkGrantResult, VirtualizedBS

__all__ = [
    "GaussMarkovChannel",
    "SnrTrace",
    "constant_trace",
    "RadioPolicy",
    "RoundRobinScheduler",
    "UserAllocation",
    "MAX_MCS",
    "cqi_to_max_mcs",
    "mcs_efficiency",
    "mcs_from_fraction",
    "snr_to_cqi",
    "uplink_capacity_bps",
    "BSPowerModel",
    "HarqModel",
    "first_transmission_bler",
    "EqualRateScheduler",
    "ProportionalFairScheduler",
    "DiurnalTraffic",
    "OnOffTraffic",
    "PoissonTraffic",
    "UplinkGrantResult",
    "VirtualizedBS",
]
