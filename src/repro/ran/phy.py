"""LTE physical-layer abstraction.

Implements the link-adaptation tables the MAC scheduler relies on:

* ``snr_to_cqi``    -- wideband SNR to Channel Quality Indicator (1..15),
  using the common affine approximation of the 10% BLER thresholds.
* ``cqi_to_max_mcs`` -- highest MCS whose spectral efficiency does not
  exceed the CQI's (3GPP TS 36.213 Table 7.2.3-1 efficiencies).
* ``mcs_efficiency`` -- spectral efficiency in bits per resource element
  for MCS 0..28 (QPSK/16QAM/64QAM ladder).
* ``uplink_capacity_bps`` -- achievable PUSCH rate for a bandwidth,
  airtime share and MCS, including a MAC-efficiency factor that folds in
  grant, HARQ and DMRS overheads of the real srsRAN stack.

The testbed in the paper is SISO LTE at 20 MHz (100 PRB).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_fraction, check_positive

#: Highest MCS index supported (3GPP 36.213, 64QAM uplink enabled).
MAX_MCS = 28

#: Spectral efficiency (bits per resource element) per CQI, 3GPP TS
#: 36.213 Table 7.2.3-1.  Index 0 corresponds to CQI 1.
_CQI_EFFICIENCY = np.array(
    [
        0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766, 1.9141,
        2.4063, 2.7305, 3.3223, 3.9023, 4.5234, 5.1152, 5.5547,
    ]
)

#: Modulation order Qm per MCS index (QPSK=2, 16QAM=4, 64QAM=6), PUSCH
#: ladder with 64QAM enabled.
_MCS_QM = np.array([2] * 11 + [4] * 10 + [6] * 8)

#: Approximate effective code rate per MCS index.  Chosen so that
#: ``Qm * rate`` spans the CQI efficiency range monotonically, matching
#: the 36.213 transport-block tables to within a few percent.
_MCS_RATE = np.array(
    [
        0.076, 0.097, 0.117, 0.153, 0.188, 0.234, 0.293, 0.369,
        0.424, 0.478, 0.588, 0.369, 0.424, 0.478, 0.540, 0.602,
        0.643, 0.683, 0.755, 0.826, 0.878, 0.588, 0.628, 0.671,
        0.711, 0.754, 0.803, 0.853, 0.926,
    ]
)

if len(_MCS_QM) != MAX_MCS + 1 or len(_MCS_RATE) != MAX_MCS + 1:  # pragma: no cover
    raise AssertionError("MCS tables must cover indices 0..MAX_MCS")

#: Spectral efficiency (bits/RE) per MCS index.
_MCS_EFFICIENCY = _MCS_QM * _MCS_RATE

#: Data resource elements per PRB pair per subframe after DMRS/control
#: overhead (12 subcarriers x 14 symbols = 168 REs, ~20% overhead).
_DATA_RE_PER_PRB = 134.0

#: PRBs per MHz of LTE bandwidth (100 PRB at 20 MHz).
_PRB_PER_MHZ = 5.0

#: Subframes per second.
_SUBFRAMES_PER_S = 1000.0


def snr_to_cqi(snr_db: float) -> int:
    """Map wideband uplink SNR (dB) to a CQI index in 1..15.

    Uses the widely adopted affine fit of the 10%-BLER SINR thresholds
    (e.g. the mapping used by ns-3 and srsRAN's default reporting):
    ``CQI ~= 0.5 * SNR + 4.5``, clipped to the valid range.
    """
    cqi = int(np.floor(0.5 * float(snr_db) + 4.5))
    return int(np.clip(cqi, 1, 15))


def cqi_to_max_mcs(cqi: int) -> int:
    """Highest MCS whose spectral efficiency fits within the CQI's.

    This is the standard inner-loop link-adaptation rule: transmit with
    the largest MCS that the reported channel quality supports.
    """
    if not 1 <= cqi <= 15:
        raise ValueError(f"CQI must be in 1..15, got {cqi}")
    target = _CQI_EFFICIENCY[cqi - 1]
    eligible = np.nonzero(_MCS_EFFICIENCY <= target + 1e-12)[0]
    if eligible.size == 0:
        return 0
    return int(eligible[-1])


def mcs_efficiency(mcs: int) -> float:
    """Spectral efficiency (bits per resource element) of ``mcs``."""
    if not 0 <= mcs <= MAX_MCS:
        raise ValueError(f"MCS must be in 0..{MAX_MCS}, got {mcs}")
    return float(_MCS_EFFICIENCY[mcs])


def mcs_modulation_order(mcs: int) -> int:
    """Modulation order Qm (2/4/6) of ``mcs``."""
    if not 0 <= mcs <= MAX_MCS:
        raise ValueError(f"MCS must be in 0..{MAX_MCS}, got {mcs}")
    return int(_MCS_QM[mcs])


def mcs_from_fraction(fraction: float) -> int:
    """Map a normalised policy level in [0, 1] to an MCS cap.

    The EdgeBOL control space is normalised; level 0 maps to MCS 0 and
    level 1 to :data:`MAX_MCS`.
    """
    check_fraction(fraction, "mcs fraction")
    return int(round(fraction * MAX_MCS))


def uplink_capacity_bps(
    mcs: int,
    airtime: float,
    bandwidth_mhz: float = 20.0,
    mac_efficiency: float = 1.0,
) -> float:
    """Achievable uplink rate (bits/s) for an MCS and airtime share.

    Parameters
    ----------
    mcs:
        Transport MCS actually used (already CQI-limited).
    airtime:
        Fraction of subframes granted to the slice (Policy 2).
    bandwidth_mhz:
        LTE channel bandwidth; the testbed uses 20 MHz.
    mac_efficiency:
        Multiplicative factor in (0, 1] folding in grant latency, HARQ
        retransmissions and segmentation overhead of a real stack.
    """
    if not 0 <= mcs <= MAX_MCS:
        raise ValueError(f"MCS must be in 0..{MAX_MCS}, got {mcs}")
    check_fraction(airtime, "airtime")
    check_positive(bandwidth_mhz, "bandwidth_mhz")
    if not 0 < mac_efficiency <= 1:
        raise ValueError(f"mac_efficiency must be in (0, 1], got {mac_efficiency}")
    n_prb = _PRB_PER_MHZ * bandwidth_mhz
    bits_per_subframe = _MCS_EFFICIENCY[mcs] * _DATA_RE_PER_PRB * n_prb
    return float(bits_per_subframe * _SUBFRAMES_PER_S * airtime * mac_efficiency)


def effective_mcs(policy_mcs: int, snr_db: float) -> int:
    """MCS actually used: the policy cap limited by channel quality.

    Implements the paper's Policy 4 semantics: the MAC may select any MCS
    up to the policy bound, and link adaptation further restricts it to
    what the instantaneous channel supports.
    """
    if not 0 <= policy_mcs <= MAX_MCS:
        raise ValueError(f"policy_mcs must be in 0..{MAX_MCS}, got {policy_mcs}")
    channel_mcs = cqi_to_max_mcs(snr_to_cqi(snr_db))
    return min(policy_mcs, channel_mcs)
