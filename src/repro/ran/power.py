"""Baseband-unit (vBS) power model.

Reproduces Performance Indicator 4 and the two regimes measured in the
paper:

* **Low load** (Fig. 5): the BS is mostly idle; raising the MCS shortens
  the busy time per bit faster than it raises the instantaneous power,
  so *higher MCS lowers energy*.
* **Saturation** (Fig. 6, 10x load): the busy time is pinned at the
  airtime budget, so the per-subframe power premium of high MCS
  dominates and *higher MCS raises power*.

The model is

``P = P_idle + busy_fraction * (p_base + p_mcs * efficiency(mcs))``

with ``busy_fraction = min(airtime, offered_load / (nominal_rate *
grant_utilization))``: the BS processes subframes only while traffic
occupies them (scaled by how densely a single closed-loop UE fills its
grants), never more than the airtime policy allows.  Calibrated so the
net power spans the 4.5-7.5 W range reported for the srsRAN BBU on an
Intel NUC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ran import phy
from repro.utils.validation import check_fraction, check_non_negative, check_positive


@dataclass(frozen=True)
class BSPowerModel:
    """Affine busy-time power model for the virtualized BS baseband.

    Attributes
    ----------
    idle_power_w:
        Net baseband power with no traffic.
    base_busy_power_w:
        Extra power while processing subframes, independent of MCS
        (FFTs, channel estimation).
    mcs_busy_power_w:
        Extra power per unit spectral efficiency while busy (decoder
        effort grows with modulation order / code rate).
    grant_utilization:
        Average fraction of a granted subframe actually filled with
        payload by a closed-loop UE (padding, BSR rounding); lower
        values mean more subframes occupied per delivered bit.
    """

    idle_power_w: float = 4.2
    base_busy_power_w: float = 6.0
    mcs_busy_power_w: float = 0.16
    grant_utilization: float = 0.5

    def __post_init__(self) -> None:
        check_non_negative(self.idle_power_w, "idle_power_w")
        check_non_negative(self.base_busy_power_w, "base_busy_power_w")
        check_non_negative(self.mcs_busy_power_w, "mcs_busy_power_w")
        if not 0 < self.grant_utilization <= 1:
            raise ValueError(
                f"grant_utilization must be in (0, 1], got {self.grant_utilization}"
            )

    def busy_fraction(
        self, offered_load_bps: float, airtime: float, nominal_rate_bps: float
    ) -> float:
        """Fraction of time the baseband actively processes subframes.

        Parameters
        ----------
        offered_load_bps:
            Aggregate uplink traffic the slice carries.
        airtime:
            Airtime policy (upper bound on the busy fraction).
        nominal_rate_bps:
            Nominal PHY rate at 100% airtime for the effective MCS
            (bits per subframe x subframe rate), before MAC overheads.
        """
        check_non_negative(offered_load_bps, "offered_load_bps")
        check_fraction(airtime, "airtime")
        check_positive(nominal_rate_bps, "nominal_rate_bps")
        demanded = offered_load_bps / (nominal_rate_bps * self.grant_utilization)
        return float(min(airtime, demanded))

    def power_w(
        self,
        mcs: int,
        offered_load_bps: float,
        airtime: float,
        nominal_rate_bps: float,
    ) -> float:
        """Net baseband power (W) for one steady-state operating point."""
        if not 0 <= mcs <= phy.MAX_MCS:
            raise ValueError(f"mcs must be in 0..{phy.MAX_MCS}, got {mcs}")
        busy = self.busy_fraction(offered_load_bps, airtime, nominal_rate_bps)
        dynamic = self.base_busy_power_w + self.mcs_busy_power_w * phy.mcs_efficiency(mcs)
        return float(self.idle_power_w + busy * dynamic)

    @property
    def max_power_w(self) -> float:
        """Upper bound on net power (busy 100% at the highest MCS)."""
        return float(
            self.idle_power_w
            + self.base_busy_power_w
            + self.mcs_busy_power_w * phy.mcs_efficiency(phy.MAX_MCS)
        )
