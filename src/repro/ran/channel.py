"""Wireless channel models.

The prototype connects the UE and the vBS with SMA cables plus
attenuators and sweeps the RF gain to attain different uplink SNRs; here
SNR is a stochastic process per user.  Two models are provided:

* :class:`GaussMarkovChannel` -- a first-order autoregressive (Gauss-
  Markov) SNR process around a configurable mean, the standard model for
  slowly varying shadowing on a static link.
* :class:`SnrTrace` -- a deterministic, replayable SNR schedule used for
  the fast context dynamics of Fig. 13 (SNR swinging between 5 and
  38 dB).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range, check_non_negative


class GaussMarkovChannel:
    """First-order Gauss-Markov uplink SNR process.

    ``snr[t+1] = mean + corr * (snr[t] - mean) + noise`` with Gaussian
    innovations scaled so the stationary standard deviation is ``std``.

    Parameters
    ----------
    mean_snr_db:
        Long-run mean SNR in dB.
    std_db:
        Stationary standard deviation of the process.
    correlation:
        One-step autocorrelation in [0, 1); higher values give slower
        fading.
    rng:
        Seed or generator for the innovations.
    snr_floor_db, snr_ceil_db:
        Hard clipping range mirroring the attenuator limits of the
        testbed.
    """

    def __init__(
        self,
        mean_snr_db: float,
        std_db: float = 1.5,
        correlation: float = 0.9,
        rng=None,
        snr_floor_db: float = -5.0,
        snr_ceil_db: float = 40.0,
    ) -> None:
        self.mean_snr_db = float(mean_snr_db)
        self.std_db = check_non_negative(std_db, "std_db")
        self.correlation = check_in_range(correlation, "correlation", 0.0, 0.999)
        if snr_ceil_db <= snr_floor_db:
            raise ValueError("snr_ceil_db must exceed snr_floor_db")
        self.snr_floor_db = float(snr_floor_db)
        self.snr_ceil_db = float(snr_ceil_db)
        self._rng = ensure_rng(rng)
        self._current = self.mean_snr_db

    @property
    def current_snr_db(self) -> float:
        """Most recently generated SNR sample."""
        return self._current

    def reset(self, snr_db: float | None = None) -> float:
        """Reset the process to ``snr_db`` (default: the mean)."""
        self._current = self.mean_snr_db if snr_db is None else float(snr_db)
        return self._current

    def retune(self, mean_snr_db: float) -> None:
        """Change the long-run mean without resetting the state.

        Mirrors adjusting the RF chain gain mid-experiment.
        """
        self.mean_snr_db = float(mean_snr_db)

    def step(self) -> float:
        """Advance one period and return the new SNR sample (dB)."""
        innovation_std = self.std_db * np.sqrt(max(1.0 - self.correlation**2, 0.0))
        noise = self._rng.normal(0.0, innovation_std) if innovation_std > 0 else 0.0
        deviation = self._current - self.mean_snr_db
        self._current = self.mean_snr_db + self.correlation * deviation + noise
        self._current = float(
            np.clip(self._current, self.snr_floor_db, self.snr_ceil_db)
        )
        return self._current

    def sample(self, n: int) -> np.ndarray:
        """Generate ``n`` consecutive SNR samples."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        return np.array([self.step() for _ in range(n)])


class SnrTrace:
    """Deterministic SNR schedule replayed period by period.

    Iterating past the end wraps around, so a finite trace drives an
    arbitrarily long experiment.
    """

    def __init__(self, values_db: Sequence[float]) -> None:
        values = np.asarray(list(values_db), dtype=float)
        if values.size == 0:
            raise ValueError("trace must contain at least one value")
        if not np.all(np.isfinite(values)):
            raise ValueError("trace values must be finite")
        self._values = values
        self._index = 0

    def __len__(self) -> int:
        return int(self._values.size)

    @property
    def values_db(self) -> np.ndarray:
        """Copy of the underlying schedule."""
        return self._values.copy()

    def reset(self) -> None:
        """Rewind to the beginning of the trace."""
        self._index = 0

    def step(self) -> float:
        """Return the next SNR value, wrapping at the end."""
        value = float(self._values[self._index % self._values.size])
        self._index += 1
        return value


def constant_trace(snr_db: float, length: int = 1) -> SnrTrace:
    """Trace holding a single SNR value (steady-channel scenarios)."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    return SnrTrace([float(snr_db)] * length)


def dynamic_context_trace(
    low_db: float = 5.0,
    high_db: float = 38.0,
    period: int = 50,
    length: int = 150,
    rng=None,
    jitter_db: float = 1.0,
) -> SnrTrace:
    """Fast-varying SNR trace in the style of Fig. 13.

    Produces a piecewise pattern that swings between ``low_db`` and
    ``high_db`` with a triangular sweep of the given ``period``, plus
    small Gaussian jitter so consecutive contexts are never identical.
    """
    if high_db <= low_db:
        raise ValueError("high_db must exceed low_db")
    if period < 2:
        raise ValueError(f"period must be >= 2, got {period}")
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    generator = ensure_rng(rng)
    t = np.arange(length)
    phase = (t % period) / period
    triangle = np.where(phase < 0.5, 2.0 * phase, 2.0 * (1.0 - phase))
    values = low_db + (high_db - low_db) * triangle
    if jitter_db > 0:
        values = values + generator.normal(0.0, jitter_db, size=length)
    values = np.clip(values, low_db, high_db)
    return SnrTrace(values)
