"""HARQ and block-error-rate modelling.

The calibrated ``mac_efficiency`` of the scheduler folds HARQ losses
into a single factor; this module provides the explicit link-level
model for studies that need it: per-MCS BLER as a function of SNR
(logistic approximations of the LTE AWGN waterfall curves) and a
synchronous HARQ process with chase combining and a bounded number of
retransmissions.

The key outputs are :meth:`HarqModel.expected_transmissions` (airtime
inflation per transport block) and :meth:`HarqModel.goodput_factor`
(the throughput multiplier relative to an error-free link), both of
which can be composed with :class:`repro.ran.mac.RoundRobinScheduler`
allocations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ran import phy
from repro.utils.validation import check_in_range, check_positive

#: 50%-BLER SNR threshold per MCS, linear in the MCS index.  Calibrated
#: against this library's CQI mapping so that the CQI-table MCS for a
#: given SNR sits at roughly the 10% first-transmission BLER the LTE
#: link-adaptation design rule targets.
_BLER50_OFFSET_DB = -10.9
_BLER50_SLOPE_DB_PER_MCS = 1.125

#: Logistic steepness of the BLER waterfall (dB).
_WATERFALL_WIDTH_DB = 1.6

#: SNR gain from chase-combining one additional retransmission.
_COMBINING_GAIN_DB = 2.5


def first_transmission_bler(mcs: int, snr_db: float) -> float:
    """BLER of the first transmission attempt at the given SNR.

    Logistic waterfall centred at the per-MCS threshold; BLER drops
    from ~1 to ~0 across a few dB, as in link-level LTE simulations.
    """
    if not 0 <= mcs <= phy.MAX_MCS:
        raise ValueError(f"mcs must be in 0..{phy.MAX_MCS}, got {mcs}")
    threshold = _BLER50_OFFSET_DB + _BLER50_SLOPE_DB_PER_MCS * mcs
    x = (float(snr_db) - threshold) / _WATERFALL_WIDTH_DB
    return float(1.0 / (1.0 + np.exp(x)))


@dataclass(frozen=True)
class HarqModel:
    """Synchronous HARQ with chase combining.

    Attributes
    ----------
    max_transmissions:
        Initial transmission plus retransmissions (LTE default: 4).
    combining_gain_db:
        Effective SNR gain per accumulated retransmission.
    rtt_subframes:
        HARQ round-trip in subframes (8 for FDD LTE); used by the
        latency accounting helpers.
    """

    max_transmissions: int = 4
    combining_gain_db: float = _COMBINING_GAIN_DB
    rtt_subframes: int = 8

    def __post_init__(self) -> None:
        if self.max_transmissions < 1:
            raise ValueError("max_transmissions must be >= 1")
        check_positive(self.combining_gain_db, "combining_gain_db")
        if self.rtt_subframes < 1:
            raise ValueError("rtt_subframes must be >= 1")

    def attempt_blers(self, mcs: int, snr_db: float) -> np.ndarray:
        """BLER of attempt k (conditioned on reaching attempt k)."""
        return np.array([
            first_transmission_bler(
                mcs, snr_db + self.combining_gain_db * attempt
            )
            for attempt in range(self.max_transmissions)
        ])

    def residual_bler(self, mcs: int, snr_db: float) -> float:
        """Probability a transport block fails all HARQ attempts."""
        return float(np.prod(self.attempt_blers(mcs, snr_db)))

    def expected_transmissions(self, mcs: int, snr_db: float) -> float:
        """Mean number of transmissions per transport block.

        ``E[T] = sum_k P(reach attempt k)`` with attempt 0 always made.
        """
        blers = self.attempt_blers(mcs, snr_db)
        reach_probability = 1.0
        expected = 0.0
        for bler in blers:
            expected += reach_probability
            reach_probability *= bler
        return float(expected)

    def goodput_factor(self, mcs: int, snr_db: float) -> float:
        """Throughput multiplier relative to an error-free link.

        Successful blocks divided by airtime spent:
        ``(1 - residual) / E[T]``.
        """
        residual = self.residual_bler(mcs, snr_db)
        return float((1.0 - residual) / self.expected_transmissions(mcs, snr_db))

    def mean_hol_delay_subframes(self, mcs: int, snr_db: float) -> float:
        """Mean head-of-line delay added by retransmissions (subframes).

        Each extra attempt costs one HARQ RTT.
        """
        extra = self.expected_transmissions(mcs, snr_db) - 1.0
        return float(extra * self.rtt_subframes)

    def best_mcs(self, snr_db: float, max_mcs: int = phy.MAX_MCS) -> int:
        """Throughput-optimal MCS under this HARQ model.

        Maximises ``efficiency(m) * goodput_factor(m, snr)`` — the
        link-adaptation target when BLER is modelled explicitly (often
        slightly more aggressive than the CQI table's 10% BLER rule).
        """
        check_in_range(max_mcs, "max_mcs", 0, phy.MAX_MCS)
        scores = [
            phy.mcs_efficiency(m) * self.goodput_factor(m, snr_db)
            for m in range(max_mcs + 1)
        ]
        return int(np.argmax(scores))
