"""Virtualized base station: policy enforcement + KPI production.

Ties the PHY abstraction, the round-robin MAC scheduler and the baseband
power model into one component with the external behaviour the EdgeBOL
agent sees: given the radio policies and the user channel states, it
reports per-user uplink goodputs, per-image transmission times, the mean
MCS actually used, and the baseband power consumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.ran import phy
from repro.ran.mac import RadioPolicy, RoundRobinScheduler, UserAllocation
from repro.ran.power import BSPowerModel
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class UplinkGrantResult:
    """Slice-level outcome of applying a radio policy for one period.

    Attributes
    ----------
    allocations:
        Per-user allocation records.
    mean_mcs:
        Average MCS actually used across users (reported on E2 as a KPI
        and plotted on the x-axis of Figs. 5-6).
    slice_capacity_bps:
        Sum of per-user goodputs.
    """

    allocations: tuple[UserAllocation, ...]
    mean_mcs: float
    slice_capacity_bps: float


class VirtualizedBS:
    """srsRAN-style vBS with O-RAN controllable radio policies.

    Parameters
    ----------
    bandwidth_mhz:
        LTE channel bandwidth (the testbed uses 20 MHz SISO).
    mac_efficiency:
        End-to-end fraction of nominal PHY rate achieved by the stack.
    power_model:
        Baseband power model (defaults match the GW-Instek measurements
        of the paper: 4-8 W net).
    """

    def __init__(
        self,
        bandwidth_mhz: float = 20.0,
        mac_efficiency: float = 1.0,
        power_model: BSPowerModel | None = None,
    ) -> None:
        self.scheduler = RoundRobinScheduler(
            bandwidth_mhz=bandwidth_mhz, mac_efficiency=mac_efficiency
        )
        self.power_model = power_model if power_model is not None else BSPowerModel()

    def grant(self, policy: RadioPolicy, snrs_db: Sequence[float]) -> UplinkGrantResult:
        """Run one scheduling epoch and summarise the slice allocation."""
        allocations = self.scheduler.allocate(policy, snrs_db)
        if not allocations:
            return UplinkGrantResult(allocations=(), mean_mcs=0.0, slice_capacity_bps=0.0)
        mean_mcs = float(np.mean([a.mcs for a in allocations]))
        capacity = float(sum(a.goodput_bps for a in allocations))
        return UplinkGrantResult(
            allocations=tuple(allocations),
            mean_mcs=mean_mcs,
            slice_capacity_bps=capacity,
        )

    @staticmethod
    def transmission_time_s(image_bits: float, allocation: UserAllocation) -> float:
        """Uplink transfer time of one image for a given allocation.

        Returns ``inf`` when the allocation carries no goodput (zero
        airtime share or MCS 0 on a dead channel), which the service
        layer treats as an unserved user.
        """
        check_non_negative(image_bits, "image_bits")
        if allocation.goodput_bps <= 0:
            return float("inf")
        return float(image_bits / allocation.goodput_bps)

    def baseband_power_w(
        self,
        policy: RadioPolicy,
        grant: UplinkGrantResult,
        offered_load_bps: float,
    ) -> float:
        """Net BBU power for a steady-state period.

        The busy time is computed against the *nominal* PHY rate at the
        mean effective MCS (subframe occupancy depends on the transport
        block size, not on MAC-level waiting), so shifting the policy
        toward higher MCS shortens the busy period for a fixed offered
        load (Fig. 5) while a saturated slice pays the high-MCS
        per-subframe premium (Fig. 6).
        """
        if not grant.allocations:
            return self.power_model.idle_power_w
        mean_mcs = int(round(grant.mean_mcs))
        nominal_rate = phy.uplink_capacity_bps(
            mean_mcs,
            1.0,
            bandwidth_mhz=self.scheduler.bandwidth_mhz,
            mac_efficiency=1.0,
        )
        if nominal_rate <= 0:
            return self.power_model.idle_power_w
        return self.power_model.power_w(
            mean_mcs, offered_load_bps, policy.airtime, nominal_rate
        )
