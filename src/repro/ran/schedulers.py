"""Alternative MAC scheduling disciplines.

The paper's multi-user experiments use round robin
(:class:`repro.ran.mac.RoundRobinScheduler`); these variants let the
low-level mechanism be swapped while the EdgeBOL policies stay the
same — the orchestrator sets *bounds*, the scheduler chooses within
them (Section 3's O-RAN split).

* :class:`ProportionalFairScheduler` — airtime shares proportional to a
  fairness-exponent power of each user's spectral efficiency;
  ``alpha=0`` degenerates to equal airtime (round robin), ``alpha=1``
  gives rate-proportional shares (max-throughput-leaning).
* :class:`EqualRateScheduler` — inverse-rate airtime shares so every
  user gets (approximately) the same goodput; what a worst-user-delay
  objective would ask for.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ran import phy
from repro.ran.mac import RadioPolicy, RoundRobinScheduler, UserAllocation


class ProportionalFairScheduler(RoundRobinScheduler):
    """Airtime shares proportional to ``efficiency ** alpha``.

    Parameters
    ----------
    alpha:
        Fairness exponent; 0 = equal airtime, 1 = rate-proportional.
    Remaining parameters as in :class:`RoundRobinScheduler`.
    """

    def __init__(self, *args, alpha: float = 0.5, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)

    def _shares(self, policy: RadioPolicy, snrs_db: Sequence[float]) -> np.ndarray:
        efficiencies = np.array([
            max(phy.mcs_efficiency(phy.effective_mcs(policy.max_mcs, s)), 1e-6)
            for s in snrs_db
        ])
        weights = efficiencies**self.alpha
        return policy.airtime * weights / weights.sum()

    def allocate(
        self, policy: RadioPolicy, snrs_db: Sequence[float]
    ) -> list[UserAllocation]:
        users = list(snrs_db)
        if not users:
            return []
        shares = self._shares(policy, users)
        efficiency = self.effective_mac_efficiency(len(users))
        allocations = []
        for user_id, (snr_db, share) in enumerate(zip(users, shares)):
            mcs = phy.effective_mcs(policy.max_mcs, float(snr_db))
            goodput = phy.uplink_capacity_bps(
                mcs,
                float(share),
                bandwidth_mhz=self.bandwidth_mhz,
                mac_efficiency=efficiency,
            )
            allocations.append(UserAllocation(
                user_id=user_id,
                snr_db=float(snr_db),
                mcs=mcs,
                airtime_share=float(share),
                goodput_bps=goodput,
            ))
        return allocations


class EqualRateScheduler(ProportionalFairScheduler):
    """Inverse-efficiency shares: every user gets the same goodput.

    Equivalent to ``alpha = -1`` in the proportional-fair family; kept
    as its own class because the negative exponent inverts the usual
    fairness intuition.
    """

    def __init__(self, *args, **kwargs) -> None:
        kwargs.pop("alpha", None)
        super().__init__(*args, alpha=0.0, **kwargs)

    def _shares(self, policy: RadioPolicy, snrs_db: Sequence[float]) -> np.ndarray:
        efficiencies = np.array([
            max(phy.mcs_efficiency(phy.effective_mcs(policy.max_mcs, s)), 1e-6)
            for s in snrs_db
        ])
        weights = 1.0 / efficiencies
        return policy.airtime * weights / weights.sum()
