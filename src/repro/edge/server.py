"""Edge server: host + GPU power accounting.

Wraps :class:`repro.edge.gpu.GpuModel` with the host-side contribution
(CPU, memory, PSU overhead) so the reported figure corresponds to the
paper's Performance Indicator 3 — the wall power of the whole server as
measured by the GW-Instek power meter (observed range roughly
50-200 W depending on load and GPU policy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edge.gpu import GpuModel
from repro.utils.validation import check_fraction, check_non_negative


@dataclass(frozen=True)
class ServerLoadReport:
    """Steady-state server-side KPIs for one orchestration period.

    Attributes
    ----------
    gpu_utilization:
        Fraction of time the GPU is busy (aggregate over users).
    gpu_power_w:
        Mean GPU draw.
    server_power_w:
        Wall power of the whole server (PI 3).
    inference_time_s:
        Per-image GPU service time at the configured policy.
    """

    gpu_utilization: float
    gpu_power_w: float
    server_power_w: float
    inference_time_s: float


class EdgeServer:
    """GPU-enabled edge server with a controllable power-limit policy.

    Parameters
    ----------
    gpu:
        GPU speed/power model.
    host_idle_power_w:
        Host draw excluding the GPU (CPU idle, fans, PSU losses).
    host_per_request_j:
        Host-side energy per request (decode, tensor copies); adds a
        load-dependent CPU component on top of the GPU draw.
    """

    def __init__(
        self,
        gpu: GpuModel | None = None,
        host_idle_power_w: float = 48.0,
        host_per_request_j: float = 1.2,
    ) -> None:
        self.gpu = gpu if gpu is not None else GpuModel()
        self.host_idle_power_w = check_non_negative(
            host_idle_power_w, "host_idle_power_w"
        )
        self.host_per_request_j = check_non_negative(
            host_per_request_j, "host_per_request_j"
        )

    def inference_time_s(self, resolution: float, speed_policy: float) -> float:
        """Per-image GPU service time (delegates to the GPU model)."""
        return self.gpu.inference_time_s(resolution, speed_policy)

    def load_report(
        self,
        total_request_rate_hz: float,
        resolution: float,
        speed_policy: float,
    ) -> ServerLoadReport:
        """KPIs for a steady state with the given aggregate request rate.

        The utilisation is clipped at 1 — a closed-loop workload can
        never push the GPU past saturation, but callers probing open-loop
        what-if points may.
        """
        check_non_negative(total_request_rate_hz, "total_request_rate_hz")
        check_fraction(resolution, "resolution")
        service_time = self.gpu.inference_time_s(resolution, speed_policy)
        utilization = min(total_request_rate_hz * service_time, 1.0)
        gpu_power = self.gpu.mean_power_w(utilization, speed_policy)
        host_power = (
            self.host_idle_power_w + self.host_per_request_j * total_request_rate_hz
        )
        return ServerLoadReport(
            gpu_utilization=float(utilization),
            gpu_power_w=float(gpu_power),
            server_power_w=float(gpu_power + host_power),
            inference_time_s=float(service_time),
        )
