"""Edge-server substrate.

Models the GPU-enabled edge server of the EdgeBOL testbed: an NVIDIA
GPU whose driver-enforced power limit (Policy 3) trades inference speed
for power, and a closed queueing network capturing the stop-and-wait
coupling between users, the radio interface and the GPU.
"""

from repro.edge.gpu import GpuModel
from repro.edge.queueing import (
    ClosedNetwork,
    DelayStation,
    QueueingStation,
    SolverResult,
    solve_exact_mva,
    solve_schweitzer,
)
from repro.edge.server import EdgeServer, ServerLoadReport

__all__ = [
    "GpuModel",
    "ClosedNetwork",
    "DelayStation",
    "QueueingStation",
    "SolverResult",
    "solve_exact_mva",
    "solve_schweitzer",
    "EdgeServer",
    "ServerLoadReport",
]
