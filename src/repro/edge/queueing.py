"""Closed queueing-network solvers (Mean Value Analysis).

The EdgeBOL service is closed-loop: each user captures an image, sends
it uplink, waits for the detection response and only then captures the
next frame.  The steady state of such a system is exactly the classical
*closed queueing network* with one customer per user circulating among:

* the user's radio link (a **delay station** — round-robin scheduling
  already partitions airtime, so users do not queue behind each other),
* the shared **GPU** (a FCFS queueing station),
* the user's **think time** (pre-processing + downlink + app overhead).

Two solvers are provided:

* :func:`solve_exact_mva` — exact multi-class Mean Value Analysis
  (Reiser & Lavenberg 1980), recursing over population vectors.  Exact
  but exponential in the number of classes; ideal for the paper's <= 6
  heterogeneous users.
* :func:`solve_schweitzer` — the Bard–Schweitzer proportional
  approximation, a fixed-point iteration that scales to many classes.

Both support product-form networks of delay and queueing stations with
class-dependent service demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.telemetry import runtime as telemetry
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class QueueingStation:
    """FCFS/PS queueing station with class-dependent service demands.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"gpu"``).
    demands_s:
        Mean service demand per visit for each class, seconds.
    """

    name: str
    demands_s: tuple[float, ...]

    def __post_init__(self) -> None:
        for d in self.demands_s:
            check_non_negative(d, f"demand at station {self.name!r}")


@dataclass(frozen=True)
class DelayStation:
    """Infinite-server (pure delay) station — no queueing between users."""

    name: str
    demands_s: tuple[float, ...]

    def __post_init__(self) -> None:
        for d in self.demands_s:
            check_non_negative(d, f"demand at station {self.name!r}")


@dataclass(frozen=True)
class ClosedNetwork:
    """A closed multi-class queueing network.

    Attributes
    ----------
    populations:
        Number of circulating customers per class (one per user class).
    stations:
        Queueing and delay stations; each must declare a demand for
        every class.
    think_times_s:
        Per-class pure think time (equivalent to one more delay
        station, kept separate for convenience).
    """

    populations: tuple[int, ...]
    stations: tuple["QueueingStation | DelayStation", ...]
    think_times_s: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        n_classes = len(self.populations)
        if n_classes == 0:
            raise ValueError("network needs at least one class")
        for pop in self.populations:
            if pop < 0:
                raise ValueError(f"populations must be non-negative, got {pop}")
        for st in self.stations:
            if len(st.demands_s) != n_classes:
                raise ValueError(
                    f"station {st.name!r} declares {len(st.demands_s)} demands "
                    f"for {n_classes} classes"
                )
        if self.think_times_s and len(self.think_times_s) != n_classes:
            raise ValueError("think_times_s length must match populations")

    @property
    def n_classes(self) -> int:
        return len(self.populations)

    def think_time(self, class_index: int) -> float:
        if not self.think_times_s:
            return 0.0
        return self.think_times_s[class_index]


@dataclass(frozen=True)
class SolverResult:
    """Steady-state solution of a closed network.

    Attributes
    ----------
    throughputs:
        Per-class throughput (customers/s) — the service frame rate.
    response_times:
        ``(n_stations, n_classes)`` mean residence time per visit,
        including queueing, for each station and class.
    queue_lengths:
        ``(n_stations,)`` mean number of customers at each station.
    cycle_times:
        Per-class end-to-end cycle time including think time.
    utilizations:
        ``(n_stations,)`` utilisation of each queueing station (NaN for
        delay stations, which have no meaningful utilisation bound).
    """

    throughputs: np.ndarray
    response_times: np.ndarray
    queue_lengths: np.ndarray
    cycle_times: np.ndarray
    utilizations: np.ndarray


def _cycle_times(pops: np.ndarray, throughput: np.ndarray) -> np.ndarray:
    """Per-class cycle time; 0 for empty classes, inf for stalled ones."""
    cycle = np.zeros_like(pops, dtype=float)
    flowing = throughput > 0
    cycle[flowing] = pops[flowing] / throughput[flowing]
    cycle[(~flowing) & (pops > 0)] = np.inf
    return cycle


def _demand_matrix(network: ClosedNetwork) -> np.ndarray:
    return np.array([st.demands_s for st in network.stations], dtype=float)


def _is_queueing(network: ClosedNetwork) -> np.ndarray:
    return np.array(
        [isinstance(st, QueueingStation) for st in network.stations], dtype=bool
    )


def solve_exact_mva(network: ClosedNetwork) -> SolverResult:
    """Exact multi-class MVA over all population sub-vectors.

    Complexity is ``O(n_stations * prod(populations + 1))``; intended
    for the small populations of the EdgeBOL testbed (<= ~10 users).
    Recorded as a ``queueing.solve`` telemetry span (``solver:
    exact_mva``) nested under the caller (``env.step`` in runs).
    """
    with telemetry.span("queueing.solve") as sp:
        if sp:
            sp.set("solver", "exact_mva")
            sp.set("classes", network.n_classes)
        return _solve_exact_mva(network)


def _solve_exact_mva(network: ClosedNetwork) -> SolverResult:
    demands = _demand_matrix(network)
    queueing = _is_queueing(network)
    n_stations, n_classes = demands.shape
    think = np.array([network.think_time(c) for c in range(n_classes)])
    full_pop = tuple(int(p) for p in network.populations)

    @lru_cache(maxsize=None)
    def queue_len(pop: tuple[int, ...]) -> tuple[float, ...]:
        """Mean queue length per station at population vector ``pop``."""
        if sum(pop) == 0:
            return tuple(0.0 for _ in range(n_stations))
        response, throughput = _mva_step(pop)
        q = np.zeros(n_stations)
        for c in range(n_classes):
            if pop[c] == 0:
                continue
            q += throughput[c] * response[:, c]
        return tuple(float(v) for v in q)

    def _mva_step(pop: tuple[int, ...]):
        response = np.zeros((n_stations, n_classes))
        throughput = np.zeros(n_classes)
        for c in range(n_classes):
            if pop[c] == 0:
                continue
            reduced = list(pop)
            reduced[c] -= 1
            q_reduced = np.array(queue_len(tuple(reduced)))
            for k in range(n_stations):
                if queueing[k]:
                    response[k, c] = demands[k, c] * (1.0 + q_reduced[k])
                else:
                    response[k, c] = demands[k, c]
            total = think[c] + response[:, c].sum()
            throughput[c] = pop[c] / total if total > 0 else np.inf
        return response, throughput

    if sum(full_pop) == 0:
        zeros_q = np.zeros(n_stations)
        empty = np.zeros(n_classes)
        util = np.where(queueing, 0.0, np.nan)
        return SolverResult(
            throughputs=empty,
            response_times=np.zeros((n_stations, n_classes)),
            queue_lengths=zeros_q,
            cycle_times=empty.copy(),
            utilizations=util,
        )

    response, throughput = _mva_step(full_pop)
    queue = np.array(queue_len(full_pop))
    cycle = _cycle_times(np.array(full_pop, dtype=float), throughput)
    util = np.full(n_stations, np.nan)
    for k in range(n_stations):
        if queueing[k]:
            util[k] = float(np.dot(throughput, demands[k, :]))
    return SolverResult(
        throughputs=throughput,
        response_times=response,
        queue_lengths=queue,
        cycle_times=cycle,
        utilizations=util,
    )


def solve_schweitzer(
    network: ClosedNetwork,
    tol: float = 1e-9,
    max_iterations: int = 10_000,
) -> SolverResult:
    """Bard–Schweitzer approximate MVA (fixed-point iteration).

    Approximates the arrival-theorem queue length seen by a class-``c``
    customer as ``Q_kc * (N_c - 1) / N_c + sum_{j != c} Q_kj``.
    Converges for all product-form networks; accuracy is typically
    within a few percent of exact MVA.  Recorded as a
    ``queueing.solve`` telemetry span (``solver: schweitzer``).
    """
    with telemetry.span("queueing.solve") as sp:
        if sp:
            sp.set("solver", "schweitzer")
            sp.set("classes", network.n_classes)
        return _solve_schweitzer(
            network, tol=tol, max_iterations=max_iterations
        )


def _solve_schweitzer(
    network: ClosedNetwork,
    tol: float,
    max_iterations: int,
) -> SolverResult:
    demands = _demand_matrix(network)
    queueing = _is_queueing(network)
    n_stations, n_classes = demands.shape
    pops = np.array(network.populations, dtype=float)
    think = np.array([network.think_time(c) for c in range(n_classes)])

    active = pops > 0
    if not np.any(active):
        return solve_exact_mva(network)

    # Initial guess: customers spread evenly over stations they visit.
    q_per_class = np.zeros((n_stations, n_classes))
    for c in range(n_classes):
        visited = demands[:, c] > 0
        n_visited = max(int(visited.sum()), 1)
        q_per_class[visited, c] = pops[c] / n_visited

    response = np.zeros((n_stations, n_classes))
    throughput = np.zeros(n_classes)
    for _ in range(max_iterations):
        q_prev = q_per_class.copy()
        q_total = q_per_class.sum(axis=1)
        for c in range(n_classes):
            if not active[c]:
                continue
            # Arrival-theorem estimate of the queue seen on arrival.
            seen = q_total - q_per_class[:, c] / pops[c]
            response[:, c] = np.where(
                queueing, demands[:, c] * (1.0 + seen), demands[:, c]
            )
            total = think[c] + response[:, c].sum()
            throughput[c] = pops[c] / total if total > 0 else np.inf
            q_per_class[:, c] = throughput[c] * response[:, c]
        if np.max(np.abs(q_per_class - q_prev)) < tol:
            break

    cycle = _cycle_times(pops, throughput)
    util = np.full(n_stations, np.nan)
    for k in range(n_stations):
        if queueing[k]:
            util[k] = float(np.dot(throughput, demands[k, :]))
    return SolverResult(
        throughputs=throughput,
        response_times=response,
        queue_lengths=q_per_class.sum(axis=1),
        cycle_times=cycle,
        utilizations=util,
    )
