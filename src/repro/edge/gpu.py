"""GPU speed/power model (Policy 3 substrate).

The testbed GPU is an NVIDIA RTX 2080 Ti whose driver exposes a runtime
power-management limit between 100 and 280 W.  Policy 3 normalises this
knob to [0, 1].  The model captures the three facts measured in Fig. 3:

* a higher power limit lets the GPU clock higher, reducing per-image
  inference time (sub-linearly: clocks scale roughly with the cube root
  of power, we use a configurable exponent);
* higher-resolution inputs *ease* the detector's work per image
  (cleaner features, fewer ambiguous proposals), so the per-image base
  time decreases mildly with resolution;
* the mean power drawn equals idle power plus the duty-cycle-weighted
  headroom up to the cap — the driver enforces the cap, the workload
  sets the duty cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_fraction, check_non_negative, check_positive


@dataclass(frozen=True)
class GpuModel:
    """Parametric model of a power-capped inference GPU.

    Attributes
    ----------
    min_power_cap_w, max_power_cap_w:
        Driver limits of the power-management knob (RTX 2080 Ti:
        100-280 W).
    idle_power_w:
        Draw of the idle GPU.
    speed_exponent:
        Exponent relating relative power cap to relative clock speed;
        0 < exponent <= 1 (DVFS gives diminishing returns).
    base_inference_time_s:
        Per-image inference time at full resolution and full speed
        (Faster R-CNN R101 on a 2080 Ti: ~0.1 s).
    resolution_ease_s:
        Extra per-image time at zero resolution; decreases linearly to 0
        at full resolution (Fig. 3 bottom).
    busy_draw_fraction:
        Mean fraction of the power cap actually drawn while processing
        (an inference workload seldom pins the GPU at its limit).
    """

    min_power_cap_w: float = 100.0
    max_power_cap_w: float = 280.0
    idle_power_w: float = 18.0
    speed_exponent: float = 0.6
    base_inference_time_s: float = 0.090
    resolution_ease_s: float = 0.06
    busy_draw_fraction: float = 0.72

    def __post_init__(self) -> None:
        check_positive(self.min_power_cap_w, "min_power_cap_w")
        if self.max_power_cap_w <= self.min_power_cap_w:
            raise ValueError("max_power_cap_w must exceed min_power_cap_w")
        check_non_negative(self.idle_power_w, "idle_power_w")
        if not 0 < self.speed_exponent <= 1:
            raise ValueError(
                f"speed_exponent must be in (0, 1], got {self.speed_exponent}"
            )
        check_positive(self.base_inference_time_s, "base_inference_time_s")
        check_non_negative(self.resolution_ease_s, "resolution_ease_s")
        if not 0 < self.busy_draw_fraction <= 1:
            raise ValueError(
                f"busy_draw_fraction must be in (0, 1], got {self.busy_draw_fraction}"
            )

    def power_cap_w(self, speed_policy: float) -> float:
        """Absolute power-management limit for a normalised policy level."""
        check_fraction(speed_policy, "speed_policy")
        span = self.max_power_cap_w - self.min_power_cap_w
        return float(self.min_power_cap_w + span * speed_policy)

    def speed_factor(self, speed_policy: float) -> float:
        """Relative processing speed in (0, 1] for a policy level.

        Equals ``(cap / max_cap) ** speed_exponent`` so the full-power
        configuration has factor 1.
        """
        cap = self.power_cap_w(speed_policy)
        return float((cap / self.max_power_cap_w) ** self.speed_exponent)

    def inference_time_s(self, resolution: float, speed_policy: float) -> float:
        """Per-image GPU service time for a resolution and speed policy."""
        check_fraction(resolution, "resolution")
        base = self.base_inference_time_s + self.resolution_ease_s * (1.0 - resolution)
        return float(base / self.speed_factor(speed_policy))

    def mean_power_w(self, utilization: float, speed_policy: float) -> float:
        """Mean GPU draw for a steady-state duty cycle.

        While processing, the GPU draws ``busy_draw_fraction`` of its
        power cap; while idle it draws ``idle_power_w``.
        """
        check_fraction(utilization, "utilization")
        busy_draw = self.busy_draw_fraction * self.power_cap_w(speed_policy)
        busy_draw = max(busy_draw, self.idle_power_w)
        return float(
            self.idle_power_w + utilization * (busy_draw - self.idle_power_w)
        )
