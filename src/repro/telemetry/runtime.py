"""Telemetry runtime: the enabled flag, global registry and sink fan-out.

This module is the single import instrumented code needs::

    from repro.telemetry import runtime as telemetry

    with telemetry.span("engine.posterior") as sp:
        ...
        if sp:
            sp.set("points", n_points)
    telemetry.inc("core.gp.add")

Zero overhead when disabled: every entry point checks the module-level
enabled flag *before any allocation* — :func:`span` returns the shared
:data:`~repro.telemetry.spans.NULL_SPAN` singleton and the metric
helpers return immediately, so instrumentation costs one function call
and one attribute check per site (< 2% on the posterior benchmark,
asserted by ``benchmarks/test_perf_posterior.py``'s budget).

Recording a run is one context manager::

    with telemetry.record("results/trace.jsonl"):
        run_agent(env, agent, 200)

which enables telemetry, routes completed spans to a JSONL sink,
appends a final metrics snapshot and restores the previous state on
exit.  ``python -m repro telemetry-report results/trace.jsonl`` renders
the result.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.telemetry.export import InMemorySink, JsonlSink
from repro.telemetry.metrics import DEFAULT_TIME_BUCKETS_S, MetricsRegistry
from repro.telemetry.spans import NULL_SPAN, Span, current_span

__all__ = [
    "enabled", "enable", "disable", "add_sink", "remove_sink",
    "get_registry", "reset_metrics", "metrics_snapshot",
    "span", "trace", "current_span", "inc", "observe", "set_gauge",
    "record", "emit_record",
]


class _Runtime:
    """Mutable process-local telemetry state (one instance per process)."""

    __slots__ = ("enabled", "registry", "sinks", "lock")

    def __init__(self) -> None:
        """Start disabled, with an empty registry and no sinks."""
        self.enabled = False
        self.registry = MetricsRegistry()
        self.sinks: list = []
        self.lock = threading.Lock()


_STATE = _Runtime()


# -- switching ----------------------------------------------------------


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return _STATE.enabled


def enable(*sinks) -> None:
    """Turn telemetry on, optionally registering ``sinks`` first."""
    for sink in sinks:
        add_sink(sink)
    _STATE.enabled = True


def disable() -> None:
    """Turn telemetry off (sinks and metrics are left in place)."""
    _STATE.enabled = False


def add_sink(sink) -> None:
    """Register a sink (an object with ``emit(record)``)."""
    if not hasattr(sink, "emit"):
        raise TypeError(f"sink must expose emit(record), got {sink!r}")
    with _STATE.lock:
        if sink not in _STATE.sinks:
            _STATE.sinks.append(sink)


def remove_sink(sink) -> None:
    """Unregister a sink (no-op if absent)."""
    with _STATE.lock:
        if sink in _STATE.sinks:
            _STATE.sinks.remove(sink)


# -- metrics ------------------------------------------------------------


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry (live, always usable)."""
    return _STATE.registry


def reset_metrics() -> None:
    """Clear every metric in the process registry."""
    _STATE.registry.reset()


def metrics_snapshot() -> dict:
    """Plain-dict snapshot of all counters/gauges/histograms."""
    return _STATE.registry.snapshot()


def inc(name: str, value: int = 1) -> None:
    """Increment counter ``name`` — no-op while disabled."""
    if not _STATE.enabled:
        return
    _STATE.registry.counter(name).inc(value)


def observe(name: str, value: float,
            upper_bounds: tuple[float, ...] = DEFAULT_TIME_BUCKETS_S) -> None:
    """Record ``value`` in histogram ``name`` — no-op while disabled."""
    if not _STATE.enabled:
        return
    _STATE.registry.histogram(name, upper_bounds).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` — no-op while disabled."""
    if not _STATE.enabled:
        return
    _STATE.registry.gauge(name).set(value)


# -- spans --------------------------------------------------------------


def _emit_span(completed: Span) -> None:
    """Fan one finished span's record out to every sink."""
    record = completed.to_record()
    with _STATE.lock:
        sinks = list(_STATE.sinks)
    for sink in sinks:
        sink.emit(record)


def emit_record(record: dict) -> None:
    """Fan an arbitrary typed record to every sink — no-op while disabled.

    Other subsystems use this to interleave their own record types with
    span/metrics lines in a recorded trace — e.g. the ``"decision"``
    lines of :mod:`repro.obs` (``docs/OBSERVABILITY.md``); readers skip
    types they do not know.
    """
    if not _STATE.enabled:
        return
    with _STATE.lock:
        sinks = list(_STATE.sinks)
    for sink in sinks:
        sink.emit(record)


def span(name: str, **attrs) -> "Span":
    """A context manager timing ``name`` — :data:`NULL_SPAN` when disabled.

    The flag is checked before any allocation; keyword arguments become
    span attributes.  Hot paths should pass no kwargs and instead set
    attributes under an ``if sp:`` guard so attribute computation is
    also skipped while disabled.
    """
    if not _STATE.enabled:
        return NULL_SPAN
    return Span(name, attrs, emit=_emit_span)


#: Alias of :func:`span` — ``with telemetry.trace("env.step"): ...``.
trace = span


def emit_metrics(extra: dict | None = None) -> dict:
    """Push one metrics-snapshot record to every sink; returns it."""
    record = {"type": "metrics", **metrics_snapshot()}
    if extra:
        record.update(extra)
    with _STATE.lock:
        sinks = list(_STATE.sinks)
    for sink in sinks:
        sink.emit(record)
    return record


# -- one-shot recording -------------------------------------------------


@contextmanager
def record(path: "str | None" = None, reset: bool = True):
    """Record everything inside the block to a JSONL file (or memory).

    Parameters
    ----------
    path:
        Destination JSONL file; ``None`` buffers records in an
        :class:`~repro.telemetry.export.InMemorySink` instead (the
        sink is the value yielded either way).
    reset:
        Clear the metrics registry on entry so the final snapshot
        covers exactly this block (default true).

    The previous enabled state is restored on exit, a final metrics
    snapshot is appended, and the sink is closed.
    """
    sink = InMemorySink() if path is None else JsonlSink(path)
    was_enabled = _STATE.enabled
    if reset:
        reset_metrics()
    add_sink(sink)
    enable()
    try:
        yield sink
    finally:
        emit_metrics()
        _STATE.enabled = was_enabled
        remove_sink(sink)
        sink.close()
