"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The registry is the quantitative half of the telemetry layer (spans are
the structural half, see :mod:`repro.telemetry.spans`).  Everything is
dependency-free and thread-safe: each metric guards its mutable state
with one lock, so histogram ``count`` always equals the number of
``observe()`` calls even under concurrent interleaving (property-tested
in ``tests/test_telemetry_properties.py``).

Naming convention: dotted lowercase paths prefixed by the owning
component, e.g. ``core.gp.add``, ``ran.mac.allocations``,
``oran.bus.published`` (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Default histogram bucket upper bounds, in seconds — tuned for the
#: latencies of the control loop (microseconds for bus publishes up to
#: seconds for full experiment phases).  Values above the last bound
#: land in the overflow bucket.
DEFAULT_TIME_BUCKETS_S: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
)


class Counter:
    """Monotonically increasing integer counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        """Create the counter at zero."""
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, value: int = 1) -> None:
        """Add ``value`` (must be non-negative) to the counter."""
        if value < 0:
            raise ValueError(f"counter increment must be >= 0, got {value}")
        with self._lock:
            self._value += int(value)

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class Gauge:
    """Last-value-wins instantaneous measurement (e.g. a cache size)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        """Create the gauge with a NaN initial value."""
        self.name = name
        self._value = float("nan")
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the latest value."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        """Most recently set value (NaN before the first ``set``)."""
        return self._value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary.

    Buckets are defined by sorted upper bounds; a value lands in the
    first bucket whose bound is ``>= value``, and values above every
    bound land in an implicit overflow bucket (``counts`` therefore has
    ``len(upper_bounds) + 1`` entries).
    """

    __slots__ = ("name", "upper_bounds", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str,
                 upper_bounds: tuple[float, ...] = DEFAULT_TIME_BUCKETS_S) -> None:
        """Create an empty histogram over ``upper_bounds`` buckets."""
        bounds = tuple(float(b) for b in upper_bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.name = name
        self.upper_bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        index = bisect_left(self.upper_bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Number of ``observe()`` calls."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of every observed value."""
        return self._sum

    def snapshot(self) -> dict:
        """Plain-dict summary (JSONL ``histograms`` entry schema)."""
        with self._lock:
            return {
                "buckets": list(self.upper_bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "mean": (self._sum / self._count) if self._count else None,
            }


class MetricsRegistry:
    """Process-local, create-on-first-use registry of named metrics.

    One registry backs the whole telemetry runtime
    (:func:`repro.telemetry.runtime.get_registry`); tests may build
    private instances.  Metric names are unique per kind; asking twice
    for the same name returns the same object.
    """

    def __init__(self) -> None:
        """Create an empty registry."""
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created if absent)."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created if absent)."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(
        self,
        name: str,
        upper_bounds: tuple[float, ...] = DEFAULT_TIME_BUCKETS_S,
    ) -> Histogram:
        """The histogram under ``name`` (created with ``upper_bounds``).

        Bounds are fixed at creation; later calls with different bounds
        return the existing histogram unchanged.
        """
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, upper_bounds)
            return metric

    def reset(self) -> None:
        """Drop every registered metric."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> dict:
        """Plain-dict copy of every metric (the JSONL ``metrics`` record)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(histograms.items())
            },
        }
