"""Dependency-free observability for the EdgeBOL reproduction.

Three layers (see ``docs/OBSERVABILITY.md`` for the full guide):

* **Spans** — nested monotonic wall-clock timing of named operations
  (:mod:`repro.telemetry.spans`), capturing the per-period call tree
  ``edgebol.select -> engine.posterior`` / ``env.step ->
  queueing.solve``.
* **Metrics** — process-local counters, gauges and fixed-bucket
  histograms (:mod:`repro.telemetry.metrics`).
* **Export** — a structured JSONL sink plus an in-memory sink for
  tests (:mod:`repro.telemetry.export`), rendered by
  :mod:`repro.telemetry.report` and the ``repro telemetry-report``
  CLI subcommand.

The whole layer is off by default and costs one flag check per
instrumentation site while disabled::

    from repro.telemetry import runtime as telemetry

    with telemetry.record("results/trace.jsonl"):
        ...   # any instrumented code: experiments, agents, the env

Users may equivalently ``from repro import telemetry`` and use the
same functions re-exported here.
"""

from repro.telemetry.export import InMemorySink, JsonlSink, read_jsonl
from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.runtime import (
    add_sink,
    current_span,
    disable,
    emit_metrics,
    enable,
    enabled,
    get_registry,
    inc,
    metrics_snapshot,
    observe,
    record,
    remove_sink,
    reset_metrics,
    set_gauge,
    span,
    trace,
)
from repro.telemetry.spans import NULL_SPAN, NullSpan, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS_S",
    "InMemorySink",
    "JsonlSink",
    "read_jsonl",
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "add_sink",
    "current_span",
    "disable",
    "emit_metrics",
    "enable",
    "enabled",
    "get_registry",
    "inc",
    "metrics_snapshot",
    "observe",
    "record",
    "remove_sink",
    "reset_metrics",
    "set_gauge",
    "span",
    "trace",
]
