"""Render a recorded trace as an ASCII span-tree and metrics summary.

Consumed by the ``repro telemetry-report`` CLI subcommand.  Spans with
the same position in the call tree (the same root-to-leaf name path)
are aggregated into one row — a 200-period run emits hundreds of
``edgebol.select`` spans but reports them as one line with count and
duration statistics, keeping the report size independent of run
length.
"""

from __future__ import annotations

import math

from repro.telemetry.export import read_jsonl
from repro.utils.ascii import render_table


def _span_paths(span_records: list[dict]) -> dict[tuple[str, ...], dict]:
    """Aggregate span records by their root-to-span name path.

    Returns a mapping of name-path tuples to ``{count, total_s, min_s,
    max_s}``.  Records whose parent id is missing from the trace (e.g.
    a truncated file) are treated as roots.
    """
    by_id = {r["id"]: r for r in span_records}
    path_cache: dict[int, tuple[str, ...]] = {}

    def path_of(record: dict) -> tuple[str, ...]:
        """Root-to-span name path of one record (memoised)."""
        cached = path_cache.get(record["id"])
        if cached is not None:
            return cached
        parent_id = record.get("parent")
        parent = by_id.get(parent_id) if parent_id is not None else None
        path = (path_of(parent) if parent is not None else ()) + (record["name"],)
        path_cache[record["id"]] = path
        return path

    aggregated: dict[tuple[str, ...], dict] = {}
    for record in span_records:
        duration = record.get("duration_s") or 0.0
        entry = aggregated.setdefault(
            path_of(record),
            {"count": 0, "total_s": 0.0, "min_s": math.inf, "max_s": -math.inf},
        )
        entry["count"] += 1
        entry["total_s"] += duration
        entry["min_s"] = min(entry["min_s"], duration)
        entry["max_s"] = max(entry["max_s"], duration)
    return aggregated


def render_span_tree(span_records: list[dict]) -> str:
    """One indented table row per distinct span path, tree-ordered."""
    if not span_records:
        return "span tree: (no spans recorded)"
    aggregated = _span_paths(span_records)

    # Depth-first order: children listed under their parent, heaviest
    # subtree first.
    ordered: list[tuple[tuple[str, ...], dict]] = []

    def visit(prefix: tuple[str, ...]) -> None:
        """Append ``prefix``'s children (heaviest first), recursing."""
        children = sorted(
            (
                (path, entry) for path, entry in aggregated.items()
                if path[:-1] == prefix
            ),
            key=lambda item: -item[1]["total_s"],
        )
        for path, entry in children:
            ordered.append((path, entry))
            visit(path)

    visit(())
    rows = []
    for path, entry in ordered:
        mean_ms = entry["total_s"] / entry["count"] * 1e3
        rows.append([
            "  " * (len(path) - 1) + path[-1],
            entry["count"],
            entry["total_s"],
            mean_ms,
            entry["min_s"] * 1e3,
            entry["max_s"] * 1e3,
        ])
    return render_table(
        ["span", "count", "total s", "mean ms", "min ms", "max ms"], rows
    )


def render_metrics(metrics_record: dict | None) -> str:
    """Counter/gauge/histogram tables for one metrics snapshot."""
    if not metrics_record:
        return "metrics: (no snapshot recorded)"
    parts = []
    counters = metrics_record.get("counters") or {}
    if counters:
        parts.append(render_table(
            ["counter", "value"], [[k, v] for k, v in counters.items()]
        ))
    gauges = metrics_record.get("gauges") or {}
    if gauges:
        parts.append(render_table(
            ["gauge", "value"], [[k, v] for k, v in gauges.items()]
        ))
    histograms = metrics_record.get("histograms") or {}
    if histograms:
        rows = []
        for name, h in histograms.items():
            rows.append([
                name, h.get("count", 0), h.get("mean"), h.get("min"),
                h.get("max"),
            ])
        parts.append(render_table(
            ["histogram", "count", "mean", "min", "max"],
            [[c if c is not None else float("nan") for c in row] for row in rows],
        ))
    if not parts:
        return "metrics: (empty snapshot)"
    return "\n\n".join(parts)


def render_report(span_records: list[dict],
                  metrics_records: list[dict] | None = None,
                  title: str = "telemetry report") -> str:
    """Full text report: header, span tree, latest metrics snapshot."""
    latest = metrics_records[-1] if metrics_records else None
    n_traces = len({r.get("trace") for r in span_records}) if span_records else 0
    header = (
        f"{title}: {len(span_records)} spans in {n_traces} traces"
    )
    return "\n\n".join([
        header,
        render_span_tree(span_records),
        render_metrics(latest),
    ])


def render_file(path) -> str:
    """Load a JSONL trace from ``path`` and render the full report."""
    span_records, metrics_records = read_jsonl(path)
    return render_report(span_records, metrics_records, title=str(path))


def selftest_report() -> str:
    """Generate a tiny synthetic trace in memory and render it.

    Exercises span nesting, attributes, metrics and the renderer in one
    pass — run by CI as ``python -m repro telemetry-report --selftest``.
    """
    from repro.telemetry import runtime as telemetry

    with telemetry.record(None) as sink:
        for period in range(3):
            with telemetry.span("selftest.period", t=period):
                with telemetry.span("selftest.select") as sp:
                    sp.set("safe", 4 + period)
                    with telemetry.span("selftest.posterior"):
                        telemetry.observe("selftest.sweep_s", 1e-4 * (period + 1))
                with telemetry.span("selftest.step"):
                    telemetry.inc("selftest.solves")
                telemetry.set_gauge("selftest.last_period", period)
    report = render_report(sink.spans, sink.metrics, title="telemetry selftest")
    # The selftest must prove parent-child reconstruction works.
    if "selftest.posterior" not in report or "selftest.solves" not in report:
        raise AssertionError("selftest trace did not render expected rows")
    return report
