"""Telemetry sinks: structured JSONL export and an in-memory buffer.

Sinks receive *records* — plain dicts with a ``"type"`` key — at span
completion (``type: "span"``) and at snapshot time (``type:
"metrics"``).  The JSONL file therefore interleaves span lines in
completion order (children before parents) with zero or more metrics
lines; :mod:`repro.telemetry.report` reconstructs the span tree from
the ``parent`` ids.
"""

from __future__ import annotations

import json
import math
from pathlib import Path


def _jsonable(value):
    """Coerce ``value`` into something ``json.dumps`` accepts.

    Non-finite floats become strings (JSON has no Infinity/NaN), numpy
    scalars collapse to Python numbers via their ``item()``, and
    anything else unknown falls back to ``repr``.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _jsonable(item())
        except (TypeError, ValueError):
            pass
    return repr(value)


class InMemorySink:
    """Buffer records in lists — the test/notebook sink."""

    def __init__(self) -> None:
        """Create an empty sink."""
        self.spans: list[dict] = []
        self.metrics: list[dict] = []

    def emit(self, record: dict) -> None:
        """File the record under ``spans`` or ``metrics`` by type."""
        if record.get("type") == "metrics":
            self.metrics.append(record)
        else:
            self.spans.append(record)

    def close(self) -> None:
        """No-op (memory needs no flushing)."""

    def records(self) -> list[dict]:
        """Every record in arrival order (spans then metrics lists)."""
        return list(self.spans) + list(self.metrics)


class JsonlSink:
    """Append records to a JSONL file, one JSON object per line.

    Parent directories are created; the file handle opens lazily on the
    first record.  Writes are batched: the OS-level flush happens every
    ``flush_every`` records (and on :meth:`close`), which cuts the
    per-record cost of a traced run substantially
    (``BENCH_observability.json``, ``traced_jsonl`` vs
    ``traced_jsonl_buffered``).  A crashed run still leaves a readable
    prefix up to the last flushed batch; pass ``flush_every=1`` for the
    legacy flush-per-line behaviour when every record must survive a
    crash.
    """

    def __init__(self, path: "str | Path", flush_every: int = 64) -> None:
        """Bind the sink to ``path`` without opening it yet."""
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self._handle = None
        self._pending = 0
        self.n_records = 0

    def emit(self, record: dict) -> None:
        """Serialise one record as a JSON line (batched flush)."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w")
        json.dump(_jsonable(record), self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self.n_records += 1
        self._pending += 1
        if self._pending >= self.flush_every:
            self._handle.flush()
            self._pending = 0

    def close(self) -> None:
        """Flush any buffered lines and close the handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._pending = 0


def _prom_name(name: str, prefix: str) -> str:
    """Sanitise a metric name into the Prometheus charset.

    Dots and any other non ``[a-zA-Z0-9_]`` characters collapse to
    underscores, and the result is prefixed (``bo.rounds`` →
    ``repro_bo_rounds``).
    """
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}_{safe}" if prefix else safe


def _prom_escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: "dict[str, str] | None") -> str:
    """Render a sorted ``{name="value",...}`` label block ('' if empty)."""
    if not labels:
        return ""
    parts = ",".join(
        f'{key}="{_prom_escape(str(labels[key]))}"' for key in sorted(labels)
    )
    return "{" + parts + "}"


def _prom_number(value) -> str:
    """Format a sample value (ints stay integral; non-finite allowed)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_exposition(snapshot: dict, prefix: str = "repro",
                          labels: "dict[str, str] | None" = None) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format.

    ``snapshot`` is the dict shape produced by
    :func:`repro.telemetry.runtime.metrics_snapshot` (and mirrored by
    ``MetricStore.metrics_snapshot``): ``counters`` (name → int),
    ``gauges`` (name → float) and ``histograms`` (name → bucket
    summary).  Counters gain the conventional ``_total`` suffix,
    histograms expand into cumulative ``_bucket{le="..."}`` samples
    (closed by ``le="+Inf"``) plus ``_sum``/``_count``, and every family
    gets a ``# TYPE`` line.  Output ordering is deterministic (counters,
    then gauges, then histograms, each sorted by name) so expositions
    diff cleanly across runs; ``labels`` attach to every sample (e.g.
    ``{"run": "cells032"}``).
    """
    label_block = _prom_labels(labels)
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(name, prefix) + "_total"
        value = snapshot["counters"][name]
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{label_block} {_prom_number(value)}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _prom_name(name, prefix)
        value = snapshot["gauges"][name]
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{label_block} {_prom_number(value)}")
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        bounds = list(hist.get("buckets", []))
        counts = list(hist.get("counts", []))
        for bound, count in zip(bounds, counts):
            cumulative += count
            bucket_labels = dict(labels or {})
            bucket_labels["le"] = _prom_number(bound)
            block = _prom_labels(bucket_labels)
            lines.append(f"{metric}_bucket{block} {cumulative}")
        inf_labels = dict(labels or {})
        inf_labels["le"] = "+Inf"
        block = _prom_labels(inf_labels)
        lines.append(f"{metric}_bucket{block} {hist.get('count', cumulative)}")
        lines.append(f"{metric}_sum{label_block} "
                     f"{_prom_number(hist.get('sum', 0.0))}")
        lines.append(f"{metric}_count{label_block} {hist.get('count', 0)}")
    return "\n".join(lines) + "\n" if lines else ""


def read_jsonl(path: "str | Path") -> tuple[list[dict], list[dict]]:
    """Load a telemetry JSONL file into ``(span_records, metrics_records)``.

    Blank lines are skipped; records with other/missing types are
    ignored rather than fatal, so partially written traces from crashed
    runs still load.
    """
    spans: list[dict] = []
    metrics: list[dict] = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "span":
                spans.append(record)
            elif kind == "metrics":
                metrics.append(record)
    return spans, metrics
