"""Telemetry sinks: structured JSONL export and an in-memory buffer.

Sinks receive *records* — plain dicts with a ``"type"`` key — at span
completion (``type: "span"``) and at snapshot time (``type:
"metrics"``).  The JSONL file therefore interleaves span lines in
completion order (children before parents) with zero or more metrics
lines; :mod:`repro.telemetry.report` reconstructs the span tree from
the ``parent`` ids.
"""

from __future__ import annotations

import json
import math
from pathlib import Path


def _jsonable(value):
    """Coerce ``value`` into something ``json.dumps`` accepts.

    Non-finite floats become strings (JSON has no Infinity/NaN), numpy
    scalars collapse to Python numbers via their ``item()``, and
    anything else unknown falls back to ``repr``.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _jsonable(item())
        except (TypeError, ValueError):
            pass
    return repr(value)


class InMemorySink:
    """Buffer records in lists — the test/notebook sink."""

    def __init__(self) -> None:
        """Create an empty sink."""
        self.spans: list[dict] = []
        self.metrics: list[dict] = []

    def emit(self, record: dict) -> None:
        """File the record under ``spans`` or ``metrics`` by type."""
        if record.get("type") == "metrics":
            self.metrics.append(record)
        else:
            self.spans.append(record)

    def close(self) -> None:
        """No-op (memory needs no flushing)."""

    def records(self) -> list[dict]:
        """Every record in arrival order (spans then metrics lists)."""
        return list(self.spans) + list(self.metrics)


class JsonlSink:
    """Append records to a JSONL file, one JSON object per line.

    Parent directories are created; the file handle opens lazily on the
    first record and is flushed per line so a crashed run still leaves
    a readable prefix.
    """

    def __init__(self, path: "str | Path") -> None:
        """Bind the sink to ``path`` without opening it yet."""
        self.path = Path(path)
        self._handle = None
        self.n_records = 0

    def emit(self, record: dict) -> None:
        """Serialise one record as a JSON line."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w")
        json.dump(_jsonable(record), self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self._handle.flush()
        self.n_records += 1

    def close(self) -> None:
        """Close the file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_jsonl(path: "str | Path") -> tuple[list[dict], list[dict]]:
    """Load a telemetry JSONL file into ``(span_records, metrics_records)``.

    Blank lines are skipped; records with other/missing types are
    ignored rather than fatal, so partially written traces from crashed
    runs still load.
    """
    spans: list[dict] = []
    metrics: list[dict] = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "span":
                spans.append(record)
            elif kind == "metrics":
                metrics.append(record)
    return spans, metrics
