"""Spans: nested wall-clock timing of the control-loop hot paths.

A :class:`Span` is a context manager measuring one named operation with
the monotonic clock (``time.perf_counter``).  Spans nest through a
thread-local stack: entering a span while another is open records the
parent-child edge, so a trace reconstructs the call tree
(``edgebol.select -> engine.posterior``, ``env.step ->
queueing.solve``).  By construction a child's measured interval lies
inside its parent's, so a child's duration never exceeds its parent's
(property-tested in ``tests/test_telemetry_properties.py``).

Spans are only created by :func:`repro.telemetry.runtime.span` when
telemetry is enabled; when disabled the shared :data:`NULL_SPAN` is
returned instead, which allocates nothing and is falsy — hot paths can
guard attribute computation with ``if sp: sp.set(...)``.
"""

from __future__ import annotations

import itertools
import threading
import time

#: Process-wide span-id source (thread-safe: ``itertools.count`` relies
#: on the GIL-atomic ``next``).
_IDS = itertools.count(1)

_STACK = threading.local()


def _stack() -> list:
    """The calling thread's stack of open spans (innermost last)."""
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = _STACK.spans = []
    return stack


def current_span() -> "Span | None":
    """The innermost open span on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def get_context() -> list:
    """The thread's live span stack (innermost last).

    Cooperative schedulers (:class:`repro.oran.loop.VirtualTimeLoop`)
    capture this when a task is created so spans opened inside one task
    nest under the task's *creating* span, not under whatever span
    happens to be open when the scheduler later resumes it.
    """
    return _stack()


def set_context(stack: list) -> list:
    """Install ``stack`` as the thread's span stack; return the old one.

    The scheduler swaps contexts around every task step::

        saved = set_context(task_stack)
        try:
            step(task)
        finally:
            task_stack = set_context(saved)

    The returned previous stack must be restored by the caller —
    leaving a task's stack installed would corrupt parent/child edges
    for spans opened outside the scheduler.
    """
    old = _stack()
    _STACK.spans = stack
    return old


class Span:
    """One timed, named, attributed operation in a trace.

    Attributes are free-form key-value pairs (values should be JSON
    serialisable); ``duration_s`` is monotonic wall-clock seconds and is
    only set after ``__exit__``.  ``trace_id`` identifies the root span
    of the tree this span belongs to.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "trace_id",
                 "depth", "start_wall_s", "duration_s", "_t0", "_emit")

    def __init__(self, name: str, attrs: dict | None = None, emit=None) -> None:
        """Create an un-started span; use ``with`` to time it."""
        if not name:
            raise ValueError("span name must be non-empty")
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.span_id = next(_IDS)
        self.parent_id: int | None = None
        self.trace_id: int | None = None
        self.depth = 0
        self.start_wall_s = 0.0
        self.duration_s: float | None = None
        self._t0 = 0.0
        self._emit = emit

    def set(self, key: str, value) -> None:
        """Attach one key-value attribute to the span."""
        self.attrs[key] = value

    def __bool__(self) -> bool:
        """Real spans are truthy (cf. the falsy :data:`NULL_SPAN`)."""
        return True

    def __enter__(self) -> "Span":
        """Start timing and push onto the thread's span stack."""
        parent = current_span()
        if parent is not None:
            self.parent_id = parent.span_id
            self.trace_id = parent.trace_id
            self.depth = parent.depth + 1
        else:
            self.trace_id = self.span_id
        _stack().append(self)
        self.start_wall_s = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Stop timing, pop the stack and emit to the runtime's sinks."""
        self.duration_s = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # tolerate mis-nested exits rather than corrupt
            stack.remove(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._emit is not None:
            self._emit(self)
        return False

    def to_record(self) -> dict:
        """JSONL line payload for this span (schema in OBSERVABILITY.md)."""
        return {
            "type": "span",
            "trace": self.trace_id,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start_s": self.start_wall_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        """Debug rendering with name, id and duration."""
        dur = "open" if self.duration_s is None else f"{self.duration_s:.6f}s"
        return f"Span({self.name!r}, id={self.span_id}, {dur})"


class NullSpan:
    """Falsy, allocation-free stand-in used while telemetry is disabled.

    Supports the full :class:`Span` surface (``with``, :meth:`set`) as
    no-ops so instrumented code needs no branching beyond the truthiness
    check.
    """

    __slots__ = ()

    def set(self, key: str, value) -> None:
        """Discard the attribute."""

    def __bool__(self) -> bool:
        """Null spans are falsy so call sites can skip attribute work."""
        return False

    def __enter__(self) -> "NullSpan":
        """No-op."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """No-op; never swallows exceptions."""
        return False


#: The shared disabled-mode span: one instance for the whole process.
NULL_SPAN = NullSpan()
