"""LinUCB baseline: linear contextual bandit over the joint space.

Section 5 of the paper notes most contextual bandit algorithms assume a
linear reward structure (Li et al. 2010; Rusmevichientong & Tsitsiklis
2010), which the measured KPI surfaces violate.  This baseline makes
the point concrete: three ridge-regression models with UCB-style
confidence ellipsoids (one per KPI) drive the same safe-set +
acquisition logic as EdgeBOL, but with *linear* function approximation
over the (context, control) features.
"""

from __future__ import annotations

import numpy as np

from repro.testbed.config import ControlPolicy, CostWeights, ServiceConstraints
from repro.testbed.context import Context
from repro.testbed.env import TestbedObservation
from repro.utils.validation import check_positive


class _RidgeUCB:
    """Online ridge regression with LinUCB confidence widths."""

    def __init__(self, n_features: int, regularisation: float = 1.0) -> None:
        self._a = regularisation * np.eye(n_features)
        self._b = np.zeros(n_features)
        self._a_inv = np.linalg.inv(self._a)
        self._theta = np.zeros(n_features)

    def update(self, features: np.ndarray, target: float) -> None:
        self._a += np.outer(features, features)
        self._b += target * features
        self._a_inv = np.linalg.inv(self._a)
        self._theta = self._a_inv @ self._b

    def predict(self, features: np.ndarray):
        """Mean and confidence width per row of ``features``."""
        mean = features @ self._theta
        width = np.sqrt(np.sum((features @ self._a_inv) * features, axis=1))
        return mean, width


class LinUCBController:
    """Linear-model analogue of EdgeBOL.

    Features are ``[1, c, x, c (x) x interactions]`` — a first-order
    model with context-control cross terms; anything beyond that is
    outside the linear-bandit assumption the baseline represents.
    """

    def __init__(
        self,
        control_grid: np.ndarray,
        constraints: ServiceConstraints,
        cost_weights: CostWeights,
        alpha: float = 1.5,
        regularisation: float = 1.0,
        delay_clip_s: float = 3.0,
        context_dim: int = Context.dimension(),
        max_users: int = 8,
    ) -> None:
        grid = np.asarray(control_grid, dtype=float)
        if grid.ndim != 2 or grid.shape[1] != 4:
            raise ValueError(f"control_grid must be (n, 4), got {grid.shape}")
        self.control_grid = grid
        self.constraints = constraints
        self.cost_weights = cost_weights
        self.alpha = check_positive(alpha, "alpha")
        self.delay_clip_s = check_positive(delay_clip_s, "delay_clip_s")
        self.context_dim = int(context_dim)
        self.max_users = int(max_users)

        n_features = 1 + self.context_dim + 4 + self.context_dim * 4
        self._cost = _RidgeUCB(n_features, regularisation)
        self._delay = _RidgeUCB(n_features, regularisation)
        self._map = _RidgeUCB(n_features, regularisation)
        self._s0_features_cache: np.ndarray | None = None
        self._last_safe_size: int | None = None

    @property
    def last_safe_set_size(self) -> int | None:
        return self._last_safe_size

    def _features(self, contexts: np.ndarray, controls: np.ndarray) -> np.ndarray:
        n = controls.shape[0]
        ones = np.ones((n, 1))
        cross = (contexts[:, :, None] * controls[:, None, :]).reshape(n, -1)
        return np.hstack([ones, contexts, controls, cross])

    def _grid_features(self, context: Context) -> np.ndarray:
        c = context.to_array(max_users=self.max_users)
        contexts = np.tile(c, (self.control_grid.shape[0], 1))
        return self._features(contexts, self.control_grid)

    def select(self, context: Context) -> ControlPolicy:
        """Safe-LCB over the linear models' confidence ellipsoids."""
        features = self._grid_features(context)
        d_mean, d_width = self._delay.predict(features)
        q_mean, q_width = self._map.predict(features)
        safe = (d_mean + self.alpha * d_width <= self.constraints.d_max_s) & (
            q_mean - self.alpha * q_width >= self.constraints.rho_min
        )
        # Always keep the max-resource corner admissible (the S0 of
        # Algorithm 1) so the agent never stalls.
        s0 = int(np.argmin(np.sum((self.control_grid - 1.0) ** 2, axis=1)))
        safe[s0] = True
        self._last_safe_size = int(np.count_nonzero(safe))

        c_mean, c_width = self._cost.predict(features)
        lcb = c_mean - self.alpha * c_width
        lcb[~safe] = np.inf
        return ControlPolicy.from_array(self.control_grid[int(np.argmin(lcb))])

    def observe(
        self,
        context: Context,
        policy: ControlPolicy,
        observation: TestbedObservation,
    ) -> float:
        """Update the three ridge models."""
        c = context.to_array(max_users=self.max_users)[None, :]
        x = policy.to_array()[None, :]
        features = self._features(c, x)[0]
        cost = self.cost_weights.cost(
            observation.server_power_w, observation.bs_power_w
        )
        delay = float(np.clip(observation.delay_s, 0.0, self.delay_clip_s))
        self._cost.update(features, cost)
        self._delay.update(features, delay)
        self._map.update(features, float(np.clip(observation.map_score, 0, 1)))
        return cost

    def set_constraints(self, constraints: ServiceConstraints) -> None:
        """Thresholds change; the linear models carry over unchanged."""
        self.constraints = constraints
