"""Context-free epsilon-greedy baseline over the control grid.

A deliberately simple comparison point for the ablation benches: keeps
a running mean of a penalised cost per grid control (ignoring context),
explores uniformly with probability epsilon, and exploits the empirical
best otherwise.  Illustrates how much the GP's correlation structure
buys over tabular averaging on a 14641-arm bandit.
"""

from __future__ import annotations

import numpy as np

from repro.testbed.config import ControlPolicy, CostWeights, ServiceConstraints
from repro.testbed.context import Context
from repro.testbed.env import TestbedObservation
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction, check_positive


class EpsilonGreedyBandit:
    """Tabular epsilon-greedy over a discretised control space.

    Infeasible periods incur ``penalty`` on top of the raw cost, which
    is the standard soft-constraint treatment for bandits without
    feasibility modelling.
    """

    def __init__(
        self,
        control_grid: np.ndarray,
        constraints: ServiceConstraints,
        cost_weights: CostWeights,
        epsilon: float = 0.1,
        epsilon_decay: float = 0.995,
        epsilon_min: float = 0.01,
        penalty: float = 500.0,
        rng=None,
    ) -> None:
        grid = np.asarray(control_grid, dtype=float)
        if grid.ndim != 2 or grid.shape[1] != 4:
            raise ValueError(f"control_grid must be (n, 4), got {grid.shape}")
        check_fraction(epsilon, "epsilon")
        check_fraction(epsilon_min, "epsilon_min")
        if not 0 < epsilon_decay <= 1:
            raise ValueError(f"epsilon_decay must be in (0, 1], got {epsilon_decay}")
        check_positive(penalty, "penalty")
        self.control_grid = grid
        self.constraints = constraints
        self.cost_weights = cost_weights
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.epsilon_min = epsilon_min
        self.penalty = penalty
        self._rng = ensure_rng(rng)
        n = grid.shape[0]
        self._counts = np.zeros(n)
        self._means = np.zeros(n)
        self._last_index: int | None = None

    def select(self, context: Context) -> ControlPolicy:
        """Explore uniformly w.p. epsilon, else pick the empirical best."""
        del context  # context-free baseline
        if self._rng.random() < self.epsilon or not self._counts.any():
            index = int(self._rng.integers(0, self.control_grid.shape[0]))
        else:
            # Unvisited arms rank behind any visited arm.
            scores = np.where(self._counts > 0, self._means, np.inf)
            index = int(np.argmin(scores))
        self._last_index = index
        return ControlPolicy.from_array(self.control_grid[index])

    def observe(
        self,
        context: Context,
        policy: ControlPolicy,
        observation: TestbedObservation,
    ) -> float:
        """Update the running mean of the penalised cost."""
        del context
        if self._last_index is None:
            raise RuntimeError("observe called before select")
        raw = self.cost_weights.cost(
            observation.server_power_w, observation.bs_power_w
        )
        penalised = raw
        if not self.constraints.satisfied(observation.delay_s, observation.map_score):
            penalised += self.penalty
        i = self._last_index
        self._counts[i] += 1
        self._means[i] += (penalised - self._means[i]) / self._counts[i]
        self.epsilon = max(self.epsilon_min, self.epsilon * self.epsilon_decay)
        return raw

    def set_constraints(self, constraints: ServiceConstraints) -> None:
        """Reset value estimates: they embed the old penalty structure."""
        self.constraints = constraints
        self._counts[:] = 0
        self._means[:] = 0
