"""Unconstrained contextual GP bandit with penalty costs (ablation).

Removes EdgeBOL's safe set: a single GP models the *penalised* cost
(raw cost plus a fixed penalty whenever a constraint is violated) and
the contextual LCB picks over the whole grid.  Used by the ablation
bench to quantify what the explicit safe set contributes — typically a
drastic reduction of constraint violations during learning.
"""

from __future__ import annotations

import numpy as np

from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern
from repro.core.posterior import SurrogateEngine
from repro.testbed.config import ControlPolicy, CostWeights, ServiceConstraints
from repro.testbed.context import Context
from repro.testbed.env import TestbedObservation
from repro.utils.validation import check_positive


class PenalizedGPBandit:
    """Contextual GP-LCB without a safe set.

    Parameters mirror :class:`repro.core.edgebol.EdgeBOL` where
    meaningful; the penalty replaces the feasibility machinery.
    """

    def __init__(
        self,
        control_grid: np.ndarray,
        constraints: ServiceConstraints,
        cost_weights: CostWeights,
        beta: float = 2.5,
        penalty: float = 300.0,
        output_scale: float = 60.0**2,
        noise_variance: float = 4.0,
        context_dim: int = Context.dimension(),
        max_users: int = 8,
        lengthscales: np.ndarray | None = None,
    ) -> None:
        grid = np.asarray(control_grid, dtype=float)
        if grid.ndim != 2 or grid.shape[1] != 4:
            raise ValueError(f"control_grid must be (n, 4), got {grid.shape}")
        check_positive(penalty, "penalty")
        self.control_grid = grid
        self.constraints = constraints
        self.cost_weights = cost_weights
        self.beta = check_positive(beta, "beta")
        self.penalty = penalty
        self.context_dim = int(context_dim)
        self.max_users = int(max_users)
        if lengthscales is None:
            lengthscales = np.concatenate(
                [np.full(self.context_dim, 0.5), np.full(4, 1.0)]
            )
        self._gp = GaussianProcess(
            kernel=Matern(lengthscales=lengthscales, output_scale=output_scale),
            noise_variance=noise_variance,
        )
        self._engine = SurrogateEngine(
            {"cost": self._gp}, grid, context_dim=self.context_dim
        )

    @property
    def engine(self) -> SurrogateEngine:
        """The single-head posterior engine (grid hot path)."""
        return self._engine

    def _joint_grid(self, context: Context) -> np.ndarray:
        return self._engine.joint_grid(
            context.to_array(max_users=self.max_users)
        )

    def select(self, context: Context) -> ControlPolicy:
        """Global (unconstrained) LCB minimisation."""
        batch = self._engine.posterior(
            context.to_array(max_users=self.max_users)
        )
        mean, std = batch.moments("cost")
        index = int(np.argmin(mean - self.beta * std))
        return ControlPolicy.from_array(self.control_grid[index])

    def observe(
        self,
        context: Context,
        policy: ControlPolicy,
        observation: TestbedObservation,
    ) -> float:
        """Ingest the penalised cost observation."""
        raw = self.cost_weights.cost(
            observation.server_power_w, observation.bs_power_w
        )
        target = raw
        if not self.constraints.satisfied(observation.delay_s, observation.map_score):
            target += self.penalty
        z = np.concatenate(
            [context.to_array(max_users=self.max_users), policy.to_array()]
        )
        self._gp.add(z, target)
        return raw

    def set_constraints(self, constraints: ServiceConstraints) -> None:
        """Update thresholds; historical penalties embed the old ones."""
        self.constraints = constraints
