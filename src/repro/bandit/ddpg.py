"""DDPG benchmark adapted to the contextual-bandit problem.

Follows Section 6.5 of the paper: a deep deterministic policy gradient
agent (inspired by vrAIn) whose critic, instead of a bootstrapped Q
function, learns the immediate *DDPG cost* — the normalised cost of
eq. (1) when every constraint of problem (2) holds, and the maximum
cost value otherwise.  The actor uses a sigmoid output layer; all
hyperparameters are tuned for convergence speed on this problem.

Being a parametric model trained against the feasibility-dependent DDPG
cost, the agent must *relearn* whenever the constraint thresholds
change — the behaviour contrasted against EdgeBOL in Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import MLP, Adam, mse_loss
from repro.testbed.config import ControlPolicy, CostWeights, ServiceConstraints
from repro.testbed.context import Context
from repro.testbed.env import TestbedObservation
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DDPGConfig:
    """Hyperparameters of the DDPG benchmark.

    ``cost_scale`` normalises raw costs into ~[0, 1]; the DDPG cost of
    an infeasible period is exactly 1 (the maximum).
    """

    hidden_sizes: tuple[int, ...] = (64, 64)
    actor_lr: float = 1e-3
    critic_lr: float = 2e-3
    buffer_size: int = 20_000
    batch_size: int = 64
    updates_per_step: int = 4
    noise_std_init: float = 0.25
    noise_decay: float = 0.997
    noise_std_min: float = 0.02
    cost_scale: float = 300.0
    warmup_steps: int = 20

    def __post_init__(self) -> None:
        check_positive(self.actor_lr, "actor_lr")
        check_positive(self.critic_lr, "critic_lr")
        check_positive(self.cost_scale, "cost_scale")
        if self.batch_size < 1 or self.buffer_size < self.batch_size:
            raise ValueError("need buffer_size >= batch_size >= 1")


class _ReplayBuffer:
    """Fixed-capacity FIFO replay of (context, action, ddpg_cost)."""

    def __init__(self, capacity: int, context_dim: int, action_dim: int) -> None:
        self.capacity = capacity
        self._contexts = np.zeros((capacity, context_dim))
        self._actions = np.zeros((capacity, action_dim))
        self._costs = np.zeros(capacity)
        self._size = 0
        self._cursor = 0

    def push(self, context: np.ndarray, action: np.ndarray, cost: float) -> None:
        i = self._cursor
        self._contexts[i] = context
        self._actions[i] = action
        self._costs[i] = cost
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def __len__(self) -> int:
        return self._size

    def sample(self, batch_size: int, rng: np.random.Generator):
        indices = rng.integers(0, self._size, size=batch_size)
        return (
            self._contexts[indices],
            self._actions[indices],
            self._costs[indices],
        )


class DDPGController:
    """Actor-critic contextual-bandit controller.

    Exposes the same ``select`` / ``observe`` / ``set_constraints``
    interface as :class:`repro.core.edgebol.EdgeBOL` so experiment
    runners can drive either interchangeably.

    Parameters
    ----------
    constraints, cost_weights:
        Problem definition (constraints feed the DDPG cost).
    config:
        Hyperparameters.
    min_resolution, min_airtime:
        Physical lower bounds of the first two control axes (the actor
        output in [0, 1] is affinely mapped onto the valid range).
    """

    def __init__(
        self,
        constraints: ServiceConstraints,
        cost_weights: CostWeights,
        config: DDPGConfig | None = None,
        context_dim: int = Context.dimension(),
        max_users: int = 8,
        min_resolution: float = 0.25,
        min_airtime: float = 0.1,
        rng=None,
    ) -> None:
        self.constraints = constraints
        self.cost_weights = cost_weights
        self.config = config if config is not None else DDPGConfig()
        self.context_dim = int(context_dim)
        self.max_users = int(max_users)
        self._low = np.array([min_resolution, min_airtime, 0.0, 0.0])
        self._high = np.ones(4)

        actor_rng, critic_rng, self._rng = spawn_rngs(ensure_rng(rng), 3)
        cfg = self.config
        self.actor = MLP(
            [self.context_dim, *cfg.hidden_sizes, 4],
            hidden_activation="relu",
            output_activation="sigmoid",
            rng=actor_rng,
        )
        self.critic = MLP(
            [self.context_dim + 4, *cfg.hidden_sizes, 1],
            hidden_activation="relu",
            output_activation="linear",
            rng=critic_rng,
        )
        self._actor_optim = Adam(self.actor.parameters(), learning_rate=cfg.actor_lr)
        self._critic_optim = Adam(self.critic.parameters(), learning_rate=cfg.critic_lr)
        self._buffer = _ReplayBuffer(cfg.buffer_size, self.context_dim, 4)
        self._noise_std = cfg.noise_std_init
        self._steps = 0

    # -- policy mapping ---------------------------------------------------

    def _action_to_policy(self, action: np.ndarray) -> ControlPolicy:
        scaled = self._low + action * (self._high - self._low)
        return ControlPolicy.from_array(np.clip(scaled, self._low, self._high))

    def _context_array(self, context: Context) -> np.ndarray:
        return context.to_array(max_users=self.max_users)

    # -- interaction --------------------------------------------------------

    def select(self, context: Context) -> ControlPolicy:
        """Actor output plus exploration noise."""
        c = self._context_array(context)
        action = self.actor(c[None, :])[0]
        if self._steps < self.config.warmup_steps:
            action = self._rng.uniform(0.0, 1.0, size=4)
        else:
            action = action + self._rng.normal(0.0, self._noise_std, size=4)
        action = np.clip(action, 0.0, 1.0)
        self._last_action = action
        return self._action_to_policy(action)

    def ddpg_cost(self, observation: TestbedObservation) -> float:
        """The paper's constraint-aware cost target in [0, 1]."""
        feasible = self.constraints.satisfied(
            observation.delay_s, observation.map_score
        )
        if not feasible:
            return 1.0
        raw = self.cost_weights.cost(
            observation.server_power_w, observation.bs_power_w
        )
        return float(np.clip(raw / self.config.cost_scale, 0.0, 1.0))

    def observe(
        self,
        context: Context,
        policy: ControlPolicy,
        observation: TestbedObservation,
    ) -> float:
        """Store the transition and run gradient updates.

        Returns the raw (unnormalised) cost for logging parity with
        EdgeBOL.
        """
        c = self._context_array(context)
        # Recover the normalised action from the physical policy.
        action = (policy.to_array() - self._low) / (self._high - self._low)
        target = self.ddpg_cost(observation)
        self._buffer.push(c, np.clip(action, 0.0, 1.0), target)
        self._steps += 1
        self._noise_std = max(
            self.config.noise_std_min, self._noise_std * self.config.noise_decay
        )
        for _ in range(self.config.updates_per_step):
            self._train_step()
        return self.cost_weights.cost(
            observation.server_power_w, observation.bs_power_w
        )

    # -- learning -----------------------------------------------------------

    def _train_step(self) -> None:
        if len(self._buffer) < self.config.batch_size:
            return
        contexts, actions, costs = self._buffer.sample(
            self.config.batch_size, self._rng
        )
        # Critic regression onto the DDPG cost.
        critic_in = np.hstack([contexts, actions])
        predictions = self.critic(critic_in)
        _, grad = mse_loss(predictions, costs[:, None])
        self.critic.backward(grad)
        self._critic_optim.step(self.critic.gradients())

        # Actor: descend d(critic)/d(action) through the actor.
        actor_actions = self.actor(contexts)
        critic_in = np.hstack([contexts, actor_actions])
        q = self.critic(critic_in)
        # Minimise mean critic output: dL/dq = 1/n.
        grad_q = np.full_like(q, 1.0 / q.shape[0])
        grad_in = self.critic.backward(grad_q)
        grad_actions = grad_in[:, self.context_dim:]
        self.actor.backward(grad_actions)
        self._actor_optim.step(self.actor.gradients())

    # -- runtime reconfiguration ---------------------------------------------

    def set_constraints(self, constraints: ServiceConstraints) -> None:
        """Change thresholds; the critic must relearn feasibility.

        Old replay entries embed the previous constraint set, so the
        buffer is cleared — mirroring the re-learning cost the paper
        attributes to parametric models.
        """
        self.constraints = constraints
        self._buffer = _ReplayBuffer(
            self.config.buffer_size, self.context_dim, 4
        )
        self._noise_std = max(self._noise_std, self.config.noise_std_init / 2)
