"""Offline exhaustive-search oracle.

The paper benchmarks EdgeBOL against an oracle that "finds the best
possible combination of policies offline after an exhaustive search
where all the system dynamics are known".  Here that means evaluating
the *noise-free* environment at every grid control for the given
channel state and returning the cheapest feasible one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.testbed.config import ControlPolicy, CostWeights, ServiceConstraints
from repro.testbed.env import EdgeAIEnvironment


@dataclass(frozen=True)
class OracleResult:
    """Outcome of one exhaustive search.

    ``feasible`` is False when no grid control satisfies the
    constraints; in that case the returned policy minimises cost among
    all controls (matching EdgeBOL's S0 fallback semantics is up to the
    caller).
    """

    policy: ControlPolicy
    cost: float
    delay_s: float
    map_score: float
    feasible: bool


class ExhaustiveOracle:
    """Noise-free grid search over the control space.

    Parameters
    ----------
    env:
        Environment whose deterministic :meth:`evaluate` defines the
        ground truth.
    cost_weights:
        The delta weights of eq. (1).
    control_grid:
        ``(n, 4)`` grid to search; defaults to the environment's
        configured grid.
    """

    def __init__(
        self,
        env: EdgeAIEnvironment,
        cost_weights: CostWeights,
        control_grid: np.ndarray | None = None,
    ) -> None:
        self.env = env
        self.cost_weights = cost_weights
        grid = (
            env.config.control_grid() if control_grid is None else
            np.asarray(control_grid, dtype=float)
        )
        if grid.ndim != 2 or grid.shape[1] != 4:
            raise ValueError(f"control_grid must be (n, 4), got {grid.shape}")
        self.control_grid = grid
        self._cache: dict[tuple, OracleResult] = {}

    def best(
        self,
        constraints: ServiceConstraints,
        snrs_db=None,
    ) -> OracleResult:
        """Cheapest feasible control for the given channel state.

        Results are memoised on (constraints, rounded SNRs) since the
        search is expensive (|X| noise-free evaluations).
        """
        snrs = list(self.env.current_snrs_db if snrs_db is None else snrs_db)
        key = (
            round(constraints.d_max_s, 6),
            round(constraints.rho_min, 6),
            round(self.cost_weights.delta1, 9),
            round(self.cost_weights.delta2, 9),
            tuple(round(s, 2) for s in snrs),
        )
        if key in self._cache:
            return self._cache[key]

        best_feasible: OracleResult | None = None
        best_any: OracleResult | None = None
        for row in self.control_grid:
            policy = ControlPolicy.from_array(row)
            obs = self.env.evaluate(policy, snrs_db=snrs, noisy=False)
            cost = self.cost_weights.cost(obs.server_power_w, obs.bs_power_w)
            feasible = constraints.satisfied(obs.delay_s, obs.map_score)
            result = OracleResult(
                policy=policy,
                cost=cost,
                delay_s=obs.delay_s,
                map_score=obs.map_score,
                feasible=feasible,
            )
            if best_any is None or cost < best_any.cost:
                best_any = result
            if feasible and (best_feasible is None or cost < best_feasible.cost):
                best_feasible = result

        outcome = best_feasible if best_feasible is not None else best_any
        self._cache[key] = outcome
        return outcome
