"""Benchmark policies: DDPG, the offline oracle, and simple baselines.

These are the comparison points of the paper's evaluation:

* :class:`DDPGController` — the neural actor-critic benchmark adapted
  from vrAIn to the contextual-bandit setting, with the paper's "DDPG
  cost" constraint handling (Section 6.5 / Fig. 14);
* :class:`ExhaustiveOracle` — the offline exhaustive-search optimum
  used as the dashed lines of Fig. 10 and the optimality gap of
  Fig. 12;
* :class:`EpsilonGreedyBandit` and :class:`PenalizedGPBandit` —
  additional baselines used by the ablation benches.
"""

from repro.bandit.ddpg import DDPGConfig, DDPGController
from repro.bandit.epsilon_greedy import EpsilonGreedyBandit
from repro.bandit.gp_ucb import PenalizedGPBandit
from repro.bandit.linucb import LinUCBController
from repro.bandit.oracle import ExhaustiveOracle, OracleResult
from repro.bandit.safeopt import SafeOptController

__all__ = [
    "DDPGConfig",
    "DDPGController",
    "EpsilonGreedyBandit",
    "PenalizedGPBandit",
    "LinUCBController",
    "ExhaustiveOracle",
    "OracleResult",
    "SafeOptController",
]
