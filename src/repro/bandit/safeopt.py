"""Contextual SafeOpt baseline (Berkenkamp et al. 2016; Sui et al. 2015).

The paper evaluated SafeOpt's acquisition and found it converges too
slowly for this problem (Section 5, "Acquisition function"), motivating
EdgeBOL's safe-LCB.  This implementation reproduces that comparison:

* the same GP surrogates and safe set as EdgeBOL (eq. 8),
* the SafeOpt acquisition: among *potential minimisers* (safe points
  whose cost LCB beats the best safe UCB) and *expanders* (safe points
  whose optimistic constraint values could certify at least one
  currently-unsafe point), pick the one with the **largest predictive
  uncertainty** — uncertainty sampling rather than cost minimisation.

The expander computation follows the Lipschitz-free GP variant: a safe
point is an expander if, assuming its constraint values took their
optimistic bounds, adding that fictitious observation would certify an
unsafe neighbour.  For tractability on a 4-D grid we use the standard
one-step approximation restricted to the unsafe points within one grid
step of the safe boundary.
"""

from __future__ import annotations

import numpy as np

from repro.core.edgebol import EdgeBOL, EdgeBOLConfig, HEAD_NAMES
from repro.core.posterior import PosteriorBatch
from repro.testbed.config import ControlPolicy, CostWeights, ServiceConstraints
from repro.testbed.context import Context


class SafeOptController(EdgeBOL):
    """SafeOpt-style agent: same safety machinery, different acquisition.

    Inherits the surrogates, the safe set and the update path from
    :class:`EdgeBOL`; only :meth:`select` changes.
    """

    def __init__(
        self,
        control_grid: np.ndarray,
        constraints: ServiceConstraints,
        cost_weights: CostWeights,
        config: EdgeBOLConfig | None = None,
        context_dim: int = Context.dimension(),
        max_users: int = 8,
    ) -> None:
        super().__init__(
            control_grid, constraints, cost_weights, config=config,
            context_dim=context_dim, max_users=max_users,
        )
        self._neighbours = self._build_neighbour_lists(self.control_grid)

    @staticmethod
    def _build_neighbour_lists(grid: np.ndarray) -> list[np.ndarray]:
        """Indices within one grid step (L-inf) of each grid point.

        Exploits the row-major Cartesian-product structure of the
        control grid (index arithmetic, O(n * 3^d)); falls back to a
        pairwise scan for irregular grids.
        """
        n_points, n_dims = grid.shape
        axes = [np.unique(grid[:, d]) for d in range(n_dims)]
        sizes = [a.size for a in axes]
        if int(np.prod(sizes)) == n_points:
            # Verify the expected row-major layout before trusting it.
            strides = np.ones(n_dims, dtype=int)
            for d in range(n_dims - 2, -1, -1):
                strides[d] = strides[d + 1] * sizes[d + 1]
            coords = np.stack([
                np.searchsorted(axes[d], grid[:, d]) for d in range(n_dims)
            ], axis=1)
            if np.array_equal(coords @ strides, np.arange(n_points)):
                offsets = np.array(
                    np.meshgrid(*[[-1, 0, 1]] * n_dims, indexing="ij")
                ).reshape(n_dims, -1).T
                neighbours = []
                for k in range(n_points):
                    candidate = coords[k][None, :] + offsets
                    valid = np.all(
                        (candidate >= 0) & (candidate < np.array(sizes)), axis=1
                    )
                    neighbours.append(candidate[valid] @ strides)
                return neighbours
        # Irregular grid: pairwise distance scan.
        steps = np.array([
            float(np.median(np.diff(a))) if a.size > 1 else 1.0 for a in axes
        ])
        neighbours = []
        for row in grid:
            close = np.all(
                np.abs(grid - row[None, :]) <= steps[None, :] * 1.5, axis=1
            )
            neighbours.append(np.nonzero(close)[0])
        return neighbours

    def _minimizers(self, batch: PosteriorBatch, safe: np.ndarray) -> np.ndarray:
        """Safe points that could be the cost minimiser."""
        mean, std = batch.moments("cost")
        lcb = mean[safe] - self.config.beta * std[safe]
        ucb = mean[safe] + self.config.beta * std[safe]
        best_ucb = ucb.min()
        mask = np.zeros(batch.n_points, dtype=bool)
        mask[safe[lcb <= best_ucb]] = True
        return mask

    def _expanders(self, batch: PosteriorBatch,
                   safe_mask: np.ndarray) -> np.ndarray:
        """Safe points that might grow the safe set.

        A safe point qualifies if it has at least one unsafe neighbour
        and its own optimistic constraint bounds already satisfy the
        thresholds — i.e. the uncertainty, not the mean, is what keeps
        the neighbourhood unsafe.
        """
        d_mean, d_std = batch.moments("delay")
        q_mean, q_std = batch.moments("map")
        optimistic = (
            (d_mean - self.config.beta * d_std <= self.constraints.d_max_s)
            & (q_mean + self.config.beta * q_std >= self.constraints.rho_min)
        )
        mask = np.zeros(batch.n_points, dtype=bool)
        safe_indices = np.nonzero(safe_mask)[0]
        for idx in safe_indices:
            if not optimistic[idx]:
                continue
            neighbours = self._neighbours[idx]
            if np.any(~safe_mask[neighbours]):
                mask[idx] = True
        return mask

    def select(self, context: Context) -> ControlPolicy:
        """SafeOpt acquisition: max uncertainty over minimisers+expanders.

        A single engine sweep supplies every bound used below (safe
        set, minimisers, expanders and the width ranking).
        """
        batch = self._engine.posterior(self._context_array(context))
        safe_mask = self._safe_mask_from_batch(batch)
        self._last_safe_size = int(np.count_nonzero(safe_mask))
        safe_indices = np.nonzero(safe_mask)[0]

        candidates = self._minimizers(batch, safe_indices) | self._expanders(
            batch, safe_mask
        )
        candidates &= safe_mask
        if not np.any(candidates):
            candidates = safe_mask

        candidate_indices = np.nonzero(candidates)[0]
        # Width of the widest confidence interval across all surrogates.
        total_width = np.zeros(candidate_indices.size)
        for name, gp in zip(HEAD_NAMES, self._gps):
            std = batch.std(name)[candidate_indices]
            total_width = np.maximum(
                total_width, std / np.sqrt(gp.kernel.output_scale)
            )
        chosen = int(candidate_indices[int(np.argmax(total_width))])
        return ControlPolicy.from_array(self.control_grid[chosen])
