"""O1 interface: performance reporting toward the SMO / non-RT RIC."""

from __future__ import annotations

from collections.abc import Callable

from repro.oran.bus import post
from repro.oran.messages import O1Report


class O1Termination:
    """Both ends of the O1 reporting path.

    The near-RT RIC (or any managed element) forwards KPI reports
    upward; the non-RT RIC registers handlers that consume them.
    Works over either bus flavour; ``prefix`` namespaces the topic for
    multi-cell layouts (``cell003.o1.report``).
    """

    def __init__(self, bus, prefix: str = "") -> None:
        """Attach to ``bus`` under the ``prefix`` topic namespace."""
        self.bus = bus
        self.prefix = prefix
        self._handlers: list[Callable[[O1Report], None]] = []
        self._period = 0
        bus.subscribe(f"{prefix}o1.report", self._on_report)

    def forward(self, source: str, kpis: dict[str, float]):
        """Publish one performance report upward."""
        self._period += 1
        return post(
            self.bus,
            f"{self.prefix}o1.report",
            O1Report(source=source, kpis=dict(kpis), period=self._period),
        )

    def register_handler(self, handler: Callable[[O1Report], None]) -> None:
        """Add a consumer callback invoked per report."""
        self._handlers.append(handler)

    def _on_report(self, message: object) -> None:
        if not isinstance(message, O1Report):
            raise TypeError(f"unexpected message on o1.report: {message!r}")
        for handler in list(self._handlers):
            handler(message)
