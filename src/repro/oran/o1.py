"""O1 interface: performance reporting toward the SMO / non-RT RIC."""

from __future__ import annotations

from collections.abc import Callable

from repro.oran.bus import MessageBus
from repro.oran.messages import O1Report


class O1Termination:
    """Both ends of the O1 reporting path.

    The near-RT RIC (or any managed element) forwards KPI reports
    upward; the non-RT RIC registers handlers that consume them.
    """

    def __init__(self, bus: MessageBus) -> None:
        self.bus = bus
        self._handlers: list[Callable[[O1Report], None]] = []
        self._period = 0
        bus.subscribe("o1.report", self._on_report)

    def forward(self, source: str, kpis: dict[str, float]) -> None:
        """Publish one performance report upward."""
        self._period += 1
        self.bus.publish(
            "o1.report", O1Report(source=source, kpis=dict(kpis), period=self._period)
        )

    def register_handler(self, handler: Callable[[O1Report], None]) -> None:
        self._handlers.append(handler)

    def _on_report(self, message: object) -> None:
        if not isinstance(message, O1Report):
            raise TypeError(f"unexpected message on o1.report: {message!r}")
        for handler in list(self._handlers):
            handler(message)
