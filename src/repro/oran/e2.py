"""E2 interface: RIC services toward the base station.

The E2 node (the srsRAN-based O-eNB in the prototype) terminates two
RIC services used by EdgeBOL:

* **RIC Control** — the near-RT RIC pushes the airtime / max-MCS radio
  policies, which the node's MAC scheduler must respect;
* **RIC Subscription / Indication** — the node periodically reports
  KPIs (BS power consumption in the paper) to subscribed xApps.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.oran.bus import MessageBus
from repro.oran.messages import E2ControlRequest, E2Indication, E2Subscription
from repro.ran.mac import RadioPolicy
from repro.ran.phy import MAX_MCS


class E2Node:
    """Base-station side E2 termination.

    Holds the currently enforced radio policy and produces KPI
    indications when polled by the host environment loop.

    Parameters
    ----------
    node_id:
        E2 node identifier.
    bus:
        Transport used for indications (topic ``e2.indication``).
    """

    def __init__(self, node_id: str, bus: MessageBus) -> None:
        self.node_id = node_id
        self.bus = bus
        self._policy = RadioPolicy(airtime=1.0, max_mcs=MAX_MCS)
        self._subscriptions: list[E2Subscription] = []
        self._period = 0
        bus.subscribe("e2.control", self._on_control)
        bus.subscribe("e2.subscription", self._on_subscription)

    @property
    def radio_policy(self) -> RadioPolicy:
        """The policy currently enforced by the MAC scheduler."""
        return self._policy

    @property
    def subscriptions(self) -> list[E2Subscription]:
        return list(self._subscriptions)

    def _on_control(self, message: object) -> None:
        if not isinstance(message, E2ControlRequest):
            raise TypeError(f"unexpected message on e2.control: {message!r}")
        self._policy = RadioPolicy(
            airtime=message.airtime, max_mcs=message.max_mcs
        )

    def _on_subscription(self, message: object) -> None:
        if not isinstance(message, E2Subscription):
            raise TypeError(f"unexpected message on e2.subscription: {message!r}")
        self._subscriptions.append(message)

    def report_kpis(self, kpis: dict[str, float]) -> None:
        """Emit one RIC Indication carrying the measured KPIs.

        Only KPIs requested by at least one subscription are included;
        with no subscribers, nothing is sent.
        """
        if not self._subscriptions:
            return
        requested: set[str] = set()
        for sub in self._subscriptions:
            requested.update(sub.kpi_names)
        payload = {k: v for k, v in kpis.items() if k in requested}
        if not payload:
            return
        self._period += 1
        self.bus.publish(
            "e2.indication",
            E2Indication(node_id=self.node_id, kpis=payload, period=self._period),
        )


class E2Termination:
    """Near-RT RIC side of E2: sends control/subscriptions, fans out
    indications to registered xApp handlers."""

    def __init__(self, bus: MessageBus) -> None:
        self.bus = bus
        self._handlers: list[Callable[[E2Indication], None]] = []
        bus.subscribe("e2.indication", self._on_indication)

    def send_control(self, airtime: float, max_mcs: int) -> None:
        """Issue a RIC Control enforcing radio policies on the node."""
        self.bus.publish(
            "e2.control", E2ControlRequest(airtime=airtime, max_mcs=max_mcs)
        )

    def subscribe_kpis(
        self, subscriber: str, kpi_names: tuple[str, ...],
        report_period_s: float = 1.0,
    ) -> None:
        """Create a RIC Subscription on behalf of an xApp."""
        self.bus.publish(
            "e2.subscription",
            E2Subscription(
                subscriber=subscriber,
                kpi_names=tuple(kpi_names),
                report_period_s=report_period_s,
            ),
        )

    def register_indication_handler(
        self, handler: Callable[[E2Indication], None]
    ) -> None:
        self._handlers.append(handler)

    def _on_indication(self, message: object) -> None:
        if not isinstance(message, E2Indication):
            raise TypeError(f"unexpected message on e2.indication: {message!r}")
        for handler in list(self._handlers):
            handler(message)
