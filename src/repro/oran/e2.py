"""E2 interface: RIC services toward the base station.

The E2 node (the srsRAN-based O-eNB in the prototype) terminates two
RIC services used by EdgeBOL:

* **RIC Control** — the near-RT RIC pushes the airtime / max-MCS radio
  policies, which the node's MAC scheduler must respect;
* **RIC Subscription / Indication** — the node periodically reports
  KPIs (BS power consumption in the paper) to subscribed xApps.

Both ends work over either bus flavour (:func:`repro.oran.bus.post`
bridges synchronous call sites onto the async loop) and take a topic
``prefix`` so a multi-cell runtime can namespace each cell's E2 plane
(``cell003.e2.control``) on one shared bus.

Indications may be *batched*: with ``batch_size > 1`` the node buffers
reports and ships them as one
:class:`~repro.oran.messages.E2IndicationBatch`, which the RIC-side
termination unpacks in order.  ``batch_size=1`` (the default) publishes
plain :class:`~repro.oran.messages.E2Indication` messages exactly as
before — the configuration the sync≡async bit-identity contract is
stated for.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.oran.bus import post
from repro.oran.messages import (
    E2ControlRequest,
    E2Indication,
    E2IndicationBatch,
    E2Subscription,
)
from repro.ran.mac import RadioPolicy
from repro.ran.phy import MAX_MCS


class E2Node:
    """Base-station side E2 termination.

    Holds the currently enforced radio policy and produces KPI
    indications when polled by the host environment loop.

    Parameters
    ----------
    node_id:
        E2 node identifier.
    bus:
        Transport used for indications (topic ``{prefix}e2.indication``).
    prefix:
        Topic namespace (empty for the single-cell layout).
    batch_size:
        Indications buffered per :class:`E2IndicationBatch`; ``1``
        publishes unbatched indications.
    """

    def __init__(self, node_id: str, bus, prefix: str = "",
                 batch_size: int = 1) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.node_id = node_id
        self.bus = bus
        self.prefix = prefix
        self.batch_size = int(batch_size)
        self._policy = RadioPolicy(airtime=1.0, max_mcs=MAX_MCS)
        self._subscriptions: list[E2Subscription] = []
        self._period = 0
        self._pending: list[E2Indication] = []
        self._indication_topic = f"{prefix}e2.indication"
        bus.subscribe(f"{prefix}e2.control", self._on_control)
        bus.subscribe(f"{prefix}e2.subscription", self._on_subscription)

    @property
    def radio_policy(self) -> RadioPolicy:
        """The policy currently enforced by the MAC scheduler."""
        return self._policy

    @property
    def subscriptions(self) -> list[E2Subscription]:
        """Subscriptions received so far."""
        return list(self._subscriptions)

    @property
    def pending_indications(self) -> int:
        """Buffered indications awaiting a batch flush."""
        return len(self._pending)

    def _on_control(self, message: object) -> None:
        if not isinstance(message, E2ControlRequest):
            raise TypeError(f"unexpected message on e2.control: {message!r}")
        self._policy = RadioPolicy(
            airtime=message.airtime, max_mcs=message.max_mcs
        )

    def _on_subscription(self, message: object) -> None:
        if not isinstance(message, E2Subscription):
            raise TypeError(f"unexpected message on e2.subscription: {message!r}")
        self._subscriptions.append(message)

    def report_kpis(self, kpis: dict[str, float]):
        """Emit one RIC Indication carrying the measured KPIs.

        Only KPIs requested by at least one subscription are included;
        with no subscribers, nothing is sent.  With ``batch_size > 1``
        the indication is buffered and shipped by :meth:`flush` once
        the batch fills.  Returns whatever the underlying publish
        returned (a handler count on the sync bus, a task on the async
        bus, ``None`` when nothing was published).
        """
        if not self._subscriptions:
            return None
        requested: set[str] = set()
        for sub in self._subscriptions:
            requested.update(sub.kpi_names)
        payload = {k: v for k, v in kpis.items() if k in requested}
        if not payload:
            return None
        self._period += 1
        indication = E2Indication(
            node_id=self.node_id, kpis=payload, period=self._period
        )
        if self.batch_size <= 1:
            return post(self.bus, self._indication_topic, indication)
        self._pending.append(indication)
        if len(self._pending) >= self.batch_size:
            return self.flush()
        return None

    def flush(self):
        """Ship buffered indications as one batch (no-op when empty)."""
        if not self._pending:
            return None
        batch = E2IndicationBatch(
            node_id=self.node_id,
            indications=tuple(self._pending),
            period=self._period,
        )
        self._pending.clear()
        return post(self.bus, self._indication_topic, batch)


class E2Termination:
    """Near-RT RIC side of E2: sends control/subscriptions, fans out
    indications to registered xApp handlers (unpacking batches)."""

    def __init__(self, bus, prefix: str = "") -> None:
        """Attach to ``bus`` under the ``prefix`` topic namespace."""
        self.bus = bus
        self.prefix = prefix
        self._handlers: list[Callable[[E2Indication], None]] = []
        bus.subscribe(f"{prefix}e2.indication", self._on_indication)

    def send_control(self, airtime: float, max_mcs: int):
        """Issue a RIC Control enforcing radio policies on the node."""
        return post(
            self.bus,
            f"{self.prefix}e2.control",
            E2ControlRequest(airtime=airtime, max_mcs=max_mcs),
        )

    def subscribe_kpis(
        self, subscriber: str, kpi_names: tuple[str, ...],
        report_period_s: float = 1.0,
    ):
        """Create a RIC Subscription on behalf of an xApp."""
        return post(
            self.bus,
            f"{self.prefix}e2.subscription",
            E2Subscription(
                subscriber=subscriber,
                kpi_names=tuple(kpi_names),
                report_period_s=report_period_s,
            ),
        )

    def register_indication_handler(
        self, handler: Callable[[E2Indication], None]
    ) -> None:
        """Add an xApp callback invoked per (unbatched) indication."""
        self._handlers.append(handler)

    def _on_indication(self, message: object) -> None:
        if isinstance(message, E2Indication):
            indications: tuple[E2Indication, ...] = (message,)
        elif isinstance(message, E2IndicationBatch):
            indications = message.indications
        else:
            raise TypeError(f"unexpected message on e2.indication: {message!r}")
        for indication in indications:
            for handler in list(self._handlers):
                handler(indication)
