"""Event-loop control-plane runtimes: one cell or a whole fleet.

Two layers on top of :class:`~repro.oran.bus.AsyncMessageBus`:

* :class:`AsyncOranSystem` — the single-cell Fig. 7 loop running on
  the deterministic event loop.  It reuses the synchronous
  :class:`~repro.oran.smo.OranSystem` wiring verbatim and inserts a
  quiescence barrier (``bus.drain()``) at the two synchronisation
  points of a period, which is what makes an async run *bit-identical*
  to the synchronous run at the same seed (asserted in
  ``tests/test_fleet.py``).
* :class:`FleetRuntime` — tens of cells in one process sharing one
  SMO: one bus, one event loop, one A1 policy service (per-cell policy
  instances enforced by per-cell xApps), per-cell E2/O1 planes under
  topic prefixes (``cell003.e2.indication``), one EdgeBOL-style agent
  per cell, a per-period load harness (:mod:`repro.oran.load`) and a
  throttled alert router (:mod:`repro.oran.alerts`).

Determinism: cells are stepped in index order, every stage ends on a
``drain()`` barrier, and all randomness lives in the per-cell envs and
agents (seeded from one SeedSequence tree by the caller) — so fleet
results are reproducible and independent of ``--jobs``.  Wall-clock
timing is measured but kept out of result *rows*; it feeds the
control-plane benchmark (``benchmarks/test_perf_control_plane.py``).

Resilience: every fleet owns a
:class:`~repro.oran.supervisor.FleetSupervisor` (inert unless
``supervise=True``) providing snapshot checkpointing, crash/stall
detection with restart policies and a mailbox circuit breaker; a
supervised warm restore replays missed periods through
:meth:`FleetRuntime._cell_period` bit-identically to the uninterrupted
run.  See ``docs/ROBUSTNESS.md`` ("Fleet resilience").
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.oran.a1 import (
    A1Client,
    A1PolicyService,
    A1Termination,
    radio_policy_type,
)
from repro.oran.alerts import AlertRouter, default_rules
from repro.oran.apps import (
    DataCollectorRApp,
    KPIDatabaseXApp,
    PolicyServiceRApp,
    PolicyServiceXApp,
)
from repro.oran.bus import AsyncMessageBus
from repro.oran.e2 import E2Node, E2Termination
from repro.oran.loop import VirtualTimeLoop
from repro.oran.o1 import O1Termination
from repro.oran.smo import OranSystem, SMOFramework
from repro.oran.supervisor import FleetSupervisor, SupervisorPolicy
from repro.obs import runtime as obs
from repro.ran.phy import MAX_MCS
from repro.telemetry import runtime as telemetry
from repro.testbed.config import ControlPolicy, ServiceConstraints
from repro.testbed.env import TestbedObservation

__all__ = ["AsyncOranSystem", "FleetCell", "FleetResult", "FleetRuntime"]


class AsyncOranSystem(OranSystem):
    """The single-cell O-RAN loop on the deterministic event loop.

    Identical wiring and per-period call sequence as
    :class:`~repro.oran.smo.OranSystem`; the only difference is the
    transport (mailboxes + consumer tasks instead of inline calls) and
    the drain barriers at the period's two synchronisation points.
    With the default ``batch_size=1`` the published message sequence is
    identical too, so fault injection draws align and even faulted runs
    stay bit-identical to the synchronous bus.
    """

    def __init__(self, env, agent, loop: VirtualTimeLoop | None = None,
                 loop_seed=None, batch_size: int = 1,
                 capacity: int = 64, policy: str = "block") -> None:
        """Build the async plane and deliver the initial subscriptions."""
        loop = loop if loop is not None else VirtualTimeLoop(seed=loop_seed)
        bus = AsyncMessageBus(
            loop=loop, default_capacity=capacity, default_policy=policy
        )
        smo = SMOFramework(bus=bus, batch_size=batch_size)
        super().__init__(env, agent, smo=smo)
        self.loop = loop
        self.bus = bus
        # The constructor's KPI subscription is still in flight.
        self.bus.drain()

    def _sync_point(self) -> None:
        """Quiescence barrier: run the loop until the plane is idle."""
        self.bus.drain()


@dataclass
class FleetResult:
    """Everything one :meth:`FleetRuntime.run` produced.

    ``decisions_per_s`` is wall-clock derived — benchmark material,
    deliberately excluded from experiment rows to preserve sweep
    determinism.  ``partial_cells`` maps cells whose logs are short
    (unsupervised deaths, quarantines) to ``{rows, missed, reason}``;
    ``recovery`` is the supervisor's per-cell summary (restarts,
    snapshots, breaker trips); ``replayed`` counts suppressed
    crash-recovery replays of already-emitted periods (kept out of
    ``decisions`` so throughput numbers stay comparable).
    """

    n_cells: int
    n_periods: int
    logs: dict[str, RunLog]
    decisions: int
    wall_s: float
    alerts: list[dict]
    alert_counts: dict
    alert_counts_by_rule: dict
    mailbox_stats: dict
    loop_steps: int
    decision_summaries: dict = field(default_factory=dict)
    partial_cells: dict = field(default_factory=dict)
    recovery: dict = field(default_factory=dict)
    replayed: int = 0
    supervised: bool = False

    @property
    def decisions_per_s(self) -> float:
        """Sustained control decisions per wall-clock second."""
        return self.decisions / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def per_cell_decisions_per_s(self) -> float:
        """Aggregate throughput divided by fleet size."""
        return self.decisions_per_s / self.n_cells


class FleetCell:
    """One cell's endpoints on the shared control plane.

    Owns the cell's env + agent, its E2 node / termination, O1
    termination, KPI xApp, data-collector rApp, policy-enforcement
    xApp (filtered to this cell's policy instance against the *shared*
    A1 service) and policy rApp (deploying through the shared
    :class:`~repro.oran.a1.A1Client`).
    """

    def __init__(self, index: int, env, agent, bus: AsyncMessageBus,
                 a1_service: A1PolicyService, a1_client: A1Client,
                 batch_size: int = 1) -> None:
        """Wire the cell's O-RAN endpoints under its topic prefix."""
        # Deferred: repro.experiments eagerly imports the experiment
        # registry, which itself imports this module.
        from repro.experiments.recorder import RunLog

        self.index = index
        self.cell_id = f"cell{index:03d}"
        self.prefix = f"{self.cell_id}."
        self.env = env
        self.agent = agent
        self.constraints = getattr(agent, "constraints", ServiceConstraints())
        self.log = RunLog()
        self._service_policy = (1.0, 1.0)
        self._stage: tuple = ()
        #: Per-period load multipliers (index = period), maintained by
        #: the runtime so crash-recovery replay can re-apply them.
        self._load_trace: list[float] = []

        self.e2_term = E2Termination(bus, prefix=self.prefix)
        self.o1_term = O1Termination(bus, prefix=self.prefix)
        self.e2_node = E2Node(
            node_id=self.cell_id, bus=bus, prefix=self.prefix,
            batch_size=batch_size,
        )
        self.policy_xapp = PolicyServiceXApp(
            a1_service, self.e2_term, policy_id=f"edgebol-{self.cell_id}"
        )
        self.kpi_xapp = KPIDatabaseXApp(
            self.e2_term, self.o1_term, name=f"kpi-{self.cell_id}"
        )
        self.collector = DataCollectorRApp(self.o1_term)
        self.policy_rapp = PolicyServiceRApp(
            a1_client,
            policy_id=f"edgebol-{self.cell_id}",
            on_service_policy=self._set_service_policy,
        )
        self.e2_term.subscribe_kpis(
            subscriber=self.kpi_xapp.name, kpi_names=("bs_power_w",)
        )

    def _set_service_policy(self, resolution: float, gpu_speed: float) -> None:
        self._service_policy = (resolution, gpu_speed)

    @property
    def enforced_policy(self) -> ControlPolicy:
        """Joint control as enforced across this cell's plane."""
        radio = self.e2_node.radio_policy
        resolution, gpu_speed = self._service_policy
        return ControlPolicy(
            resolution=resolution,
            airtime=radio.airtime,
            gpu_speed=gpu_speed,
            mcs_fraction=radio.max_mcs / MAX_MCS,
        )


class FleetRuntime:
    """Tens of cells, one process, one shared SMO on one event loop.

    Parameters
    ----------
    cells:
        ``(env, agent)`` pairs, one per cell, already seeded by the
        caller (one SeedSequence spawn per cell keeps fleets sweep-
        deterministic).
    load_model:
        Optional :class:`~repro.oran.load.FleetLoadModel` driving each
        cell's offered-load multiplier per period.
    indication_policy, indication_capacity:
        Backpressure configuration of the per-cell ``e2.indication``
        topics (the highest-volume path).
    batch_size:
        E2 indication batch size per cell.
    alert_rules:
        Alert rule set (:func:`repro.oran.alerts.default_rules` by
        default).
    loop_seed:
        Seeds the event loop's tie-breaking; ``None`` (default) is the
        canonical FIFO order.
    supervise:
        Enable the fleet supervisor: periodic snapshots, crash/stall
        recovery with restart policies and the mailbox circuit
        breaker.  Requires ``batch_size == 1`` (replay determinism
        depends on the unbatched indication sequence).
    snapshot_every:
        Checkpoint cadence in periods (shorthand for the policy field;
        mutually exclusive with ``supervisor_policy``).
    supervisor_policy:
        Full :class:`~repro.oran.supervisor.SupervisorPolicy` override.
    metrics:
        Optional :class:`~repro.fleetobs.store.MetricStore`: every
        cell-period ingests one ``type: "kpi"`` record and raised
        alerts are mirrored into the store.  Ingestion is idempotent
        (crash-recovery replays dedupe) and touches no RNG, so rows
        stay bit-identical with or without a store.
    trace_rounds_every:
        Cadence (in periods) of per-cell ``fleet.round`` root spans
        while telemetry is recording; untraced periods skip span and
        envelope work entirely, bounding tracing overhead
        (``benchmarks/test_perf_observability.py``).
    """

    def __init__(self, cells, load_model=None,
                 indication_policy: str = "block",
                 indication_capacity: int = 64, batch_size: int = 1,
                 alert_rules=None, loop_seed=None, supervise: bool = False,
                 snapshot_every: int | None = None,
                 supervisor_policy: SupervisorPolicy | None = None,
                 metrics=None, trace_rounds_every: int = 1) -> None:
        """Wire the fleet: shared bus, shared A1, per-cell planes."""
        pairs = list(cells)
        if not pairs:
            raise ValueError("a fleet needs at least one (env, agent) cell")
        self.loop = VirtualTimeLoop(seed=loop_seed)
        self.bus = AsyncMessageBus(loop=self.loop)
        self.load_model = load_model
        if load_model is not None and load_model.n_cells != len(pairs):
            raise ValueError(
                f"load model covers {load_model.n_cells} cells but the "
                f"fleet has {len(pairs)}"
            )

        # Shared SMO side: one A1 policy service for the whole fleet,
        # served over the bus, plus the fleet-wide alert stream (kept
        # drop-oldest so a flapping cell cannot wedge the plane).
        self.a1_service = A1PolicyService()
        self.a1_service.register_type(radio_policy_type())
        self.a1_term = A1Termination(self.bus, self.a1_service)
        self.a1_client = A1Client(self.bus)
        self.bus.configure_topic(
            "smo.alerts", policy="drop-oldest", capacity=256
        )
        self.alert_router = AlertRouter(
            alert_rules if alert_rules is not None else default_rules(),
            bus=self.bus,
            topic="smo.alerts",
        )
        self.bus_alerts: list[dict] = []
        self.bus.subscribe("smo.alerts", self.bus_alerts.append)

        self.cells: list[FleetCell] = []
        for index, (env, agent) in enumerate(pairs):
            prefix = f"cell{index:03d}."
            self.bus.configure_topic(
                f"{prefix}e2.indication",
                policy=indication_policy,
                capacity=indication_capacity,
            )
            self.cells.append(FleetCell(
                index, env, agent, self.bus,
                self.a1_service, self.a1_client, batch_size=batch_size,
            ))
        self.decisions = 0
        self.replayed = 0
        self.metrics = metrics
        if trace_rounds_every < 1:
            raise ValueError(
                f"trace_rounds_every must be >= 1, got {trace_rounds_every}"
            )
        self.trace_rounds_every = int(trace_rounds_every)
        if metrics is not None:
            self.alert_router.add_sink(
                lambda alert: metrics.ingest(alert.to_record())
            )

        if supervisor_policy is not None and snapshot_every is not None:
            raise ValueError(
                "pass snapshot_every inside supervisor_policy, not both"
            )
        if supervise and batch_size != 1:
            raise ValueError(
                "supervised fleets require batch_size=1: warm-restore "
                "replay depends on the unbatched indication sequence"
            )
        if supervisor_policy is None:
            supervisor_policy = (
                SupervisorPolicy(snapshot_every=int(snapshot_every))
                if snapshot_every is not None else SupervisorPolicy()
            )
        self.supervisor = FleetSupervisor(
            self, policy=supervisor_policy, enabled=bool(supervise)
        )
        # Deliver subscriptions before the first period.
        self.bus.drain()

    @property
    def n_cells(self) -> int:
        """Fleet size."""
        return len(self.cells)

    @staticmethod
    def _merge_observation(observation, bs_power: float) -> TestbedObservation:
        """The stage-3 merge: testbed truth + control-plane BS power."""
        return TestbedObservation(
            delay_s=observation.delay_s,
            map_score=observation.map_score,
            server_power_w=observation.server_power_w,
            bs_power_w=bs_power,
            gpu_delay_s=observation.gpu_delay_s,
            gpu_utilization=observation.gpu_utilization,
            total_rate_hz=observation.total_rate_hz,
            mean_mcs=observation.mean_mcs,
            offered_load_bps=observation.offered_load_bps,
            per_user_delay_s=observation.per_user_delay_s,
            per_user_rate_hz=observation.per_user_rate_hz,
        )

    def _alert_sample(self, cell: FleetCell, t: int, merged,
                      cost: float) -> dict:
        """One per-cell-period KPI sample for the alert router."""
        return {
            "cell": cell.cell_id,
            "t": t,
            "delay_s": merged.delay_s,
            "map_score": merged.map_score,
            "d_max_s": cell.constraints.d_max_s,
            "rho_min": cell.constraints.rho_min,
            "cost": cost,
            "degraded": bool(getattr(cell.agent, "degraded", False)),
        }

    def _kpi_record(self, cell: FleetCell, t: int, merged,
                    cost: float) -> dict:
        """One ``type: "kpi"`` metrics record for a finished cell-period.

        The fixed-max-power baseline is derived once per cell from its
        testbed config (deterministic, no RNG) so the metric store's
        energy ledger can account savings without re-opening the env.
        """
        if not hasattr(cell, "_baseline_power_w"):
            config = getattr(cell.env, "config", None)
            if config is not None:
                from repro.fleetobs.ledger import fixed_max_baseline_w

                cell._baseline_power_w = fixed_max_baseline_w(config)
            else:
                cell._baseline_power_w = None
        baseline = cell._baseline_power_w
        return {
            "type": "kpi",
            "cell": cell.cell_id,
            "t": t,
            "cost": float(cost),
            "delay_s": float(merged.delay_s),
            "map_score": float(merged.map_score),
            "server_power_w": float(merged.server_power_w),
            "bs_power_w": float(merged.bs_power_w),
            "d_max_s": float(cell.constraints.d_max_s),
            "rho_min": float(cell.constraints.rho_min),
            "delay_violation": int(merged.delay_s > cell.constraints.d_max_s),
            "map_violation": int(merged.map_score < cell.constraints.rho_min),
            "baseline_power_w": baseline,
            "degraded": bool(getattr(cell.agent, "degraded", False)),
        }

    def _ingest_kpis(self, cell: FleetCell, t: int, merged,
                     cost: float) -> None:
        """Ingest the period's KPI record when a metric store is wired."""
        if self.metrics is not None:
            self.metrics.ingest(self._kpi_record(cell, t, merged, cost))

    def _set_cell_load(self, cell: FleetCell, t: int) -> None:
        """Re-apply the load multiplier period ``t`` ran under (replay)."""
        trace = cell._load_trace
        if trace:
            cell.env.set_load_multiplier(trace[min(t, len(trace) - 1)])

    def _cell_period(self, cell: FleetCell, t: int, fresh: bool = True) -> None:
        """One full period for a *single* cell (the replay path).

        Runs the same select → deploy → actuate → merge → learn
        sequence as :meth:`run_period`, with drain barriers at the same
        two synchronisation points — per-cell message flows are
        independent (per-cell topic prefixes, per-cell A1 policy
        instances, env-local RNGs), so replaying one cell alone is
        bit-identical to its slice of the batched fleet period.
        ``fresh=False`` marks a period the uninterrupted run already
        emitted: the agent/tracer/log all advance identically, but the
        alert router is skipped (its state survived the crash on the
        shared runtime) and the work is counted as ``replayed`` rather
        than ``decisions``.
        """
        snr = float(np.mean(cell.env.current_snrs_db))
        context = cell.env.observe_context()
        decision = cell.agent.select(context)
        cell.policy_rapp.deploy(decision)
        self.bus.drain()
        enforced = cell.enforced_policy
        observation = cell.env.step(enforced)
        self.supervisor.maybe_flood(cell, t)
        cell.e2_node.report_kpis({"bs_power_w": observation.bs_power_w})
        self.bus.drain()
        collected = cell.collector.latest_kpis
        bs_power = collected.get("bs_power_w", observation.bs_power_w)
        merged = self._merge_observation(observation, bs_power)
        cost = cell.agent.observe(context, enforced, merged)
        cell.log.append(
            cost=cost,
            policy=enforced,
            observation=merged,
            safe_set_size=getattr(cell.agent, "last_safe_set_size", None),
            snr_db=snr,
            d_max_s=cell.constraints.d_max_s,
            rho_min=cell.constraints.rho_min,
        )
        # Replays re-ingest the same (cell, t) record; the store's
        # dedupe key makes that a no-op rather than a double count.
        self._ingest_kpis(cell, t, merged, cost)
        if fresh:
            self.decisions += 1
            telemetry.inc("fleet.decisions")
            self.alert_router.process(self._alert_sample(cell, t, merged, cost))
        else:
            self.replayed += 1
        cell._stage = ()

    def _shed_period(self, cell: FleetCell, t: int) -> None:
        """One circuit-breaker-shed period: S0 degraded service, no bus.

        While the cell's mailbox breaker is open the cell keeps serving
        — on the paper's safe fallback S0 via the agent's degraded
        path — but stays off the control plane entirely: no A1 round
        trip, no KPI indications, direct env actuation.  Rows keep
        flowing (no loss), explicitly marked degraded for the alert
        router.
        """
        snr = float(np.mean(cell.env.current_snrs_db))
        context = cell.env.observe_context()
        policy = cell.agent._degraded_select(None, context)
        observation = cell.env.step(policy)
        cost = cell.agent.observe(context, policy, observation)
        cell.log.append(
            cost=cost,
            policy=policy,
            observation=observation,
            safe_set_size=getattr(cell.agent, "last_safe_set_size", None),
            snr_db=snr,
            d_max_s=cell.constraints.d_max_s,
            rho_min=cell.constraints.rho_min,
        )
        self._ingest_kpis(cell, t, observation, cost)
        self.decisions += 1
        telemetry.inc("fleet.decisions")
        sample = self._alert_sample(cell, t, observation, cost)
        sample["degraded"] = True
        self.alert_router.process(sample)

    def run_period(self, t: int) -> None:
        """One fleet-wide orchestration period (three drained stages).

        The supervisor opens the period (executing due restarts and
        drawing fault decisions) and hands back the cells that run the
        normal batched stages plus the breaker-shed cells served via
        :meth:`_shed_period`; it closes the period with breaker
        evaluation and due checkpoints.  Without supervision or a fault
        plan every cell is active and the stage sequence is exactly the
        legacy one.
        """
        active, shed = self.supervisor.begin_period(t)

        # Causal tracing: on this period's sampling cadence every cell
        # gets a `fleet.round` root span whose context each stage slice
        # runs under, so the round's bus hops stitch into one tree (see
        # repro.fleetobs.tracing).  A metrics store turns telemetry on
        # for sampled periods only — interior spans (env.step, solver)
        # and counters then cost nothing on the other periods, which is
        # what keeps the --metrics ingestion overhead inside its budget
        # (benchmarks/test_perf_observability.py).  An outer whole-run
        # --telemetry scope is respected and never toggled.
        sampled = t % self.trace_rounds_every == 0
        toggled = False
        if sampled and self.metrics is not None and not telemetry.enabled():
            telemetry.enable()
            toggled = True
        rounds = None
        if telemetry.enabled() and sampled:
            from repro.fleetobs.tracing import RoundTracer

            rounds = RoundTracer()
        try:
            self._run_period_stages(t, active, shed, rounds)
        finally:
            if toggled:
                telemetry.disable()

    def _run_period_stages(self, t: int, active, shed, rounds) -> None:
        """The four drained stages of one period (tracing already set up)."""

        def _scope(cell):
            return rounds.stage(cell.cell_id) if rounds else nullcontext()

        # Stage 1 — decide and deploy: every cell selects, its rApp
        # publishes the A1 request; control propagates A1 -> xApp ->
        # E2 control through the mailboxes at the drain barrier.
        for cell in active:
            if rounds:
                rounds.begin(cell.cell_id, t)
            with _scope(cell):
                snr = float(np.mean(cell.env.current_snrs_db))
                context = cell.env.observe_context()
                decision = cell.agent.select(context)
                cell._stage = (snr, context, decision)
                cell.policy_rapp.deploy(decision)
        self.bus.drain()

        # Stage 2 — actuate and measure: each cell's testbed runs one
        # period under its enforced policy; KPI indications flow
        # E2 -> O1 at the barrier.
        for cell in active:
            with _scope(cell):
                enforced = cell.enforced_policy
                observation = cell.env.step(enforced)
                self.supervisor.maybe_flood(cell, t)
                cell.e2_node.report_kpis(
                    {"bs_power_w": observation.bs_power_w}
                )
                cell._stage = cell._stage + (enforced, observation)
        self.bus.drain()

        # Stage 3 — learn, log and alert.
        for cell in active:
            with _scope(cell):
                snr, context, _decision, enforced, observation = cell._stage
                collected = cell.collector.latest_kpis
                bs_power = collected.get("bs_power_w", observation.bs_power_w)
                merged = self._merge_observation(observation, bs_power)
                cost = cell.agent.observe(context, enforced, merged)
                cell.log.append(
                    cost=cost,
                    policy=enforced,
                    observation=merged,
                    safe_set_size=getattr(
                        cell.agent, "last_safe_set_size", None
                    ),
                    snr_db=snr,
                    d_max_s=cell.constraints.d_max_s,
                    rho_min=cell.constraints.rho_min,
                )
                self._ingest_kpis(cell, t, merged, cost)
                self.decisions += 1
                telemetry.inc("fleet.decisions")
                self.alert_router.process(
                    self._alert_sample(cell, t, merged, cost)
                )
                cell._stage = ()
            if rounds:
                rounds.end(cell.cell_id)
            self.supervisor.heartbeat(cell, t)

        # Shed cells: S0 degraded service off the bus.
        for cell in shed:
            self._shed_period(cell, t)
            self.supervisor.heartbeat(cell, t)

        # Stage 4 — load harness: next period's offered load.  The load
        # model steps for the whole fleet (its RNG stream must not
        # depend on which cells are up) and the per-cell trace records
        # the multiplier so recovery replay can re-apply it.
        if self.load_model is not None:
            multipliers = self.load_model.step()
            for cell, multiplier in zip(self.cells, multipliers):
                multiplier = float(multiplier)
                cell._load_trace.append(multiplier)
                cell.env.set_load_multiplier(multiplier)
        self.bus.drain()
        self.supervisor.end_period(t)

    def run(self, n_periods: int) -> FleetResult:
        """Run the fleet for ``n_periods``; returns the fleet result.

        With a decision sink installed (:func:`repro.obs.use`), every
        cell's agent is traced for the run with the cell id as the
        record's ``agent`` label, so one sink collects the whole
        fleet's decision stream.
        """
        if n_periods < 0:
            raise ValueError(f"n_periods must be non-negative, got {n_periods}")
        tracers: list[tuple[FleetCell, object]] = []
        for cell in self.cells:
            tracer = obs.make_tracer(cell.agent, label=cell.cell_id)
            if tracer is not None:
                cell.agent.attach_tracer(tracer)
                tracers.append((cell, tracer))
            if not cell._load_trace:
                cell._load_trace.append(
                    float(cell.env.service_model.load_multiplier)
                )
        self.supervisor.start()
        started = time.perf_counter()
        try:
            for t in range(n_periods):
                self.run_period(t)
            self.supervisor.finish(n_periods)
        finally:
            for cell, _tracer in tracers:
                cell.agent.attach_tracer(None)
        wall_s = time.perf_counter() - started
        for cell in self.cells:
            # Ship any partially filled indication batches.
            cell.e2_node.flush()
        self.bus.drain()
        partial = self.supervisor.partial_cells(n_periods)
        for cell in self.cells:
            rows = len(cell.log)
            entry = partial.get(cell.cell_id)
            complete = entry is None and rows == n_periods
            accounted = (
                entry is not None
                and rows == entry["rows"]
                and rows + entry["missed"] == n_periods
            )
            if not (complete or accounted):
                raise RuntimeError(
                    f"fleet accounting broken for {cell.cell_id}: "
                    f"{rows} rows over {n_periods} periods, "
                    f"partial entry {entry!r}"
                )
        return FleetResult(
            n_cells=self.n_cells,
            n_periods=n_periods,
            logs={cell.cell_id: cell.log for cell in self.cells},
            decisions=self.decisions,
            wall_s=wall_s,
            alerts=[alert.to_record() for alert in self.alert_router.history],
            alert_counts=self.alert_router.counts(),
            alert_counts_by_rule=self.alert_router.counts_by_rule(),
            mailbox_stats=self.bus.mailbox_stats(),
            loop_steps=self.loop.steps,
            decision_summaries={
                cell.cell_id: tracer.summary() for cell, tracer in tracers
            },
            partial_cells=partial,
            recovery=self.supervisor.report(),
            replayed=self.replayed,
            supervised=self.supervisor.enabled,
        )
