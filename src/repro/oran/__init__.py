"""O-RAN compliant orchestration plane (Fig. 7 of the paper).

In-process implementations of the O-RAN components EdgeBOL plugs into:

* the **A1 interface** (Policy Management Service) between the non-RT
  RIC and the near-RT RIC,
* the **E2 interface** (subscription / indication / control) between
  the near-RT RIC and the O-eNB,
* the **O1 interface** reporting KPIs up to the SMO / non-RT RIC,
* **rApps** (policy service, data collector) hosted by the non-RT RIC
  and **xApps** (policy service, database/KPI) hosted by the near-RT
  RIC,
* the **SMO framework** that wires everything together and runs the
  orchestration loop.

Every control decision of the learning agent travels A1 -> E2 to the
base station, and every KPI sample travels E2 -> O1 back to the agent,
exactly as laid out in Section 4.1.
"""

from repro.oran.bus import MessageBus
from repro.oran.messages import (
    A1PolicyRequest,
    A1PolicyResponse,
    E2ControlRequest,
    E2Indication,
    E2Subscription,
    O1Report,
)
from repro.oran.a1 import A1PolicyService, PolicyType
from repro.oran.e2 import E2Node, E2Termination
from repro.oran.o1 import O1Termination
from repro.oran.ric import NearRTRIC, NonRTRIC
from repro.oran.apps import (
    DataCollectorRApp,
    KPIDatabaseXApp,
    PolicyServiceRApp,
    PolicyServiceXApp,
)
from repro.oran.smo import OranSystem, SMOFramework

__all__ = [
    "MessageBus",
    "A1PolicyRequest",
    "A1PolicyResponse",
    "E2ControlRequest",
    "E2Indication",
    "E2Subscription",
    "O1Report",
    "A1PolicyService",
    "PolicyType",
    "E2Node",
    "E2Termination",
    "O1Termination",
    "NearRTRIC",
    "NonRTRIC",
    "DataCollectorRApp",
    "KPIDatabaseXApp",
    "PolicyServiceRApp",
    "PolicyServiceXApp",
    "OranSystem",
    "SMOFramework",
]
