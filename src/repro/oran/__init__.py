"""O-RAN compliant orchestration plane (Fig. 7 of the paper).

In-process implementations of the O-RAN components EdgeBOL plugs into:

* the **A1 interface** (Policy Management Service) between the non-RT
  RIC and the near-RT RIC — callable inline or served over the bus
  (:class:`A1Termination` / :class:`A1Client`),
* the **E2 interface** (subscription / indication / control) between
  the near-RT RIC and the O-eNB, with optional indication batching,
* the **O1 interface** reporting KPIs up to the SMO / non-RT RIC,
* **rApps** (policy service, data collector) hosted by the non-RT RIC
  and **xApps** (policy service, database/KPI) hosted by the near-RT
  RIC,
* the **SMO framework** that wires everything together and runs the
  orchestration loop.

Every control decision of the learning agent travels A1 -> E2 to the
base station, and every KPI sample travels E2 -> O1 back to the agent,
exactly as laid out in Section 4.1.

Two transports implement the plane (``docs/CONTROL_PLANE.md``): the
synchronous call-stack :class:`MessageBus`, and the event-loop
:class:`AsyncMessageBus` — bounded per-xApp mailboxes with explicit
backpressure on a deterministic virtual-time scheduler
(:class:`VirtualTimeLoop`).  :class:`AsyncOranSystem` runs one cell's
loop bit-identically to the synchronous system; :class:`FleetRuntime`
runs tens of cells in one process with a shared SMO, a load harness
(:class:`FleetLoadModel`) and throttled alerting (:class:`AlertRouter`).
Each fleet carries a :class:`FleetSupervisor` (``docs/ROBUSTNESS.md``,
"Fleet resilience") for snapshot checkpointing, crash/stall recovery
with restart policies and a mailbox circuit breaker.
"""

from repro.oran.bus import (
    MAILBOX_POLICIES,
    AsyncMessageBus,
    Mailbox,
    MessageBus,
    post,
)
from repro.oran.loop import Future, Task, VirtualTimeLoop, sleep
from repro.oran.messages import (
    A1PolicyRequest,
    A1PolicyResponse,
    E2ControlRequest,
    E2Indication,
    E2IndicationBatch,
    E2Subscription,
    O1Report,
)
from repro.oran.a1 import (
    A1Client,
    A1PolicyService,
    A1Termination,
    PolicyType,
)
from repro.oran.e2 import E2Node, E2Termination
from repro.oran.o1 import O1Termination
from repro.oran.ric import NearRTRIC, NonRTRIC
from repro.oran.apps import (
    DataCollectorRApp,
    KPIDatabaseXApp,
    PolicyServiceRApp,
    PolicyServiceXApp,
)
from repro.oran.alerts import Alert, AlertRouter, AlertRule, default_rules
from repro.oran.load import LOAD_PROFILES, FleetLoadModel
from repro.oran.smo import OranSystem, SMOFramework
from repro.oran.runtime import (
    AsyncOranSystem,
    FleetCell,
    FleetResult,
    FleetRuntime,
)
from repro.oran.supervisor import FleetSupervisor, SupervisorPolicy

__all__ = [
    "MessageBus",
    "AsyncMessageBus",
    "Mailbox",
    "MAILBOX_POLICIES",
    "post",
    "Future",
    "Task",
    "VirtualTimeLoop",
    "sleep",
    "A1PolicyRequest",
    "A1PolicyResponse",
    "E2ControlRequest",
    "E2Indication",
    "E2IndicationBatch",
    "E2Subscription",
    "O1Report",
    "A1Client",
    "A1PolicyService",
    "A1Termination",
    "PolicyType",
    "E2Node",
    "E2Termination",
    "O1Termination",
    "NearRTRIC",
    "NonRTRIC",
    "DataCollectorRApp",
    "KPIDatabaseXApp",
    "PolicyServiceRApp",
    "PolicyServiceXApp",
    "Alert",
    "AlertRouter",
    "AlertRule",
    "default_rules",
    "FleetLoadModel",
    "LOAD_PROFILES",
    "OranSystem",
    "SMOFramework",
    "AsyncOranSystem",
    "FleetCell",
    "FleetResult",
    "FleetRuntime",
    "FleetSupervisor",
    "SupervisorPolicy",
]
