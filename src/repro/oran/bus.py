"""Topic-based synchronous message bus.

The O-RAN interfaces are transported over an in-process bus: components
publish to named topics ("a1", "e2.control", "o1", ...) and subscribers
are invoked synchronously in registration order.  A bounded history per
topic supports test assertions and debugging without unbounded memory
growth.

When a fault plan with ``bus`` specs is installed (see
``docs/ROBUSTNESS.md``), publishes may be dropped (mode ``loss``) or
held back and delivered before a later publish on the same topic (mode
``delay``) — modelling a lossy/reordering O-RAN transport.
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Callable

from repro.faults import runtime as faults
from repro.telemetry import runtime as telemetry


class MessageBus:
    """Minimal synchronous pub/sub transport.

    Parameters
    ----------
    history_limit:
        Messages retained per topic for inspection.
    """

    def __init__(self, history_limit: int = 1000) -> None:
        if history_limit < 1:
            raise ValueError(f"history_limit must be >= 1, got {history_limit}")
        self._subscribers: dict[str, list[Callable[[object], None]]] = defaultdict(list)
        self._history: dict[str, deque] = defaultdict(
            lambda: deque(maxlen=history_limit)
        )
        # Bus fault injection: None unless a fault plan with `bus`
        # specs is installed when the bus is constructed.
        self._bus_faults = faults.make_injector("bus")
        #: Held-back messages per topic: [publishes_remaining, message].
        self._delayed: dict[str, list[list]] = defaultdict(list)

    def subscribe(self, topic: str, handler: Callable[[object], None]) -> None:
        """Register ``handler`` for messages published on ``topic``."""
        if not topic:
            raise ValueError("topic must be non-empty")
        if not callable(handler):
            raise TypeError("handler must be callable")
        self._subscribers[topic].append(handler)

    def unsubscribe(self, topic: str, handler: Callable[[object], None]) -> None:
        """Remove a previously registered handler (no-op if absent)."""
        handlers = self._subscribers.get(topic, [])
        if handler in handlers:
            handlers.remove(handler)

    def publish(self, topic: str, message: object) -> int:
        """Deliver ``message`` to every subscriber of ``topic``.

        Returns the number of handlers invoked for *this* message.
        Handlers run synchronously; exceptions propagate to the
        publisher (fail fast — silent loss of a control message would
        be worse).  Counted as ``oran.bus.published`` (one per call)
        and ``oran.bus.delivered`` (one per handler invoked).

        Under an installed fault plan a publish may be dropped
        (``oran.bus.lost``, returns 0 and invokes no handlers) or held
        back for ``magnitude`` subsequent publishes on the topic
        (``oran.bus.delayed`` — delivered, late and out of order, ahead
        of the publish that releases it).
        """
        if not topic:
            raise ValueError("topic must be non-empty")
        if self._bus_faults is not None:
            spec = self._bus_faults.bus_decision(topic)
            if spec is not None and spec.mode == "loss":
                telemetry.inc("oran.bus.lost")
                return 0
            self._release_due(topic)
            if spec is not None and spec.mode == "delay":
                hold = max(1, int(spec.magnitude))
                self._delayed[topic].append([hold, message])
                telemetry.inc("oran.bus.delayed")
                return 0
        return self._deliver(topic, message)

    def _release_due(self, topic: str) -> None:
        """Age held-back messages by one publish; deliver any now due."""
        still_held = []
        for entry in self._delayed[topic]:
            entry[0] -= 1
            if entry[0] <= 0:
                self._deliver(topic, entry[1])
            else:
                still_held.append(entry)
        self._delayed[topic] = still_held

    def _deliver(self, topic: str, message: object) -> int:
        """Record ``message`` and invoke the topic's handlers."""
        self._history[topic].append(message)
        handlers = list(self._subscribers.get(topic, []))
        telemetry.inc("oran.bus.published")
        for handler in handlers:
            handler(message)
        telemetry.inc("oran.bus.delivered", len(handlers))
        return len(handlers)

    def history(self, topic: str) -> list:
        """Messages published on ``topic`` (oldest first, bounded)."""
        return list(self._history.get(topic, []))

    def topics(self) -> list[str]:
        """Topics that have seen at least one subscriber or message."""
        return sorted(set(self._subscribers) | set(self._history))
