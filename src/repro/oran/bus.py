"""Topic-based synchronous message bus.

The O-RAN interfaces are transported over an in-process bus: components
publish to named topics ("a1", "e2.control", "o1", ...) and subscribers
are invoked synchronously in registration order.  A bounded history per
topic supports test assertions and debugging without unbounded memory
growth.
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Callable

from repro.telemetry import runtime as telemetry


class MessageBus:
    """Minimal synchronous pub/sub transport.

    Parameters
    ----------
    history_limit:
        Messages retained per topic for inspection.
    """

    def __init__(self, history_limit: int = 1000) -> None:
        if history_limit < 1:
            raise ValueError(f"history_limit must be >= 1, got {history_limit}")
        self._subscribers: dict[str, list[Callable[[object], None]]] = defaultdict(list)
        self._history: dict[str, deque] = defaultdict(
            lambda: deque(maxlen=history_limit)
        )

    def subscribe(self, topic: str, handler: Callable[[object], None]) -> None:
        """Register ``handler`` for messages published on ``topic``."""
        if not topic:
            raise ValueError("topic must be non-empty")
        if not callable(handler):
            raise TypeError("handler must be callable")
        self._subscribers[topic].append(handler)

    def unsubscribe(self, topic: str, handler: Callable[[object], None]) -> None:
        """Remove a previously registered handler (no-op if absent)."""
        handlers = self._subscribers.get(topic, [])
        if handler in handlers:
            handlers.remove(handler)

    def publish(self, topic: str, message: object) -> int:
        """Deliver ``message`` to every subscriber of ``topic``.

        Returns the number of handlers invoked.  Handlers run
        synchronously; exceptions propagate to the publisher (fail
        fast — silent loss of a control message would be worse).
        Counted as ``oran.bus.published`` (one per call) and
        ``oran.bus.delivered`` (one per handler invoked).
        """
        if not topic:
            raise ValueError("topic must be non-empty")
        self._history[topic].append(message)
        handlers = list(self._subscribers.get(topic, []))
        telemetry.inc("oran.bus.published")
        for handler in handlers:
            handler(message)
        telemetry.inc("oran.bus.delivered", len(handlers))
        return len(handlers)

    def history(self, topic: str) -> list:
        """Messages published on ``topic`` (oldest first, bounded)."""
        return list(self._history.get(topic, []))

    def topics(self) -> list[str]:
        """Topics that have seen at least one subscriber or message."""
        return sorted(set(self._subscribers) | set(self._history))
