"""Topic-based message transports: synchronous and event-loop flavours.

The O-RAN interfaces are transported over an in-process bus: components
publish to named topics ("a1.request", "e2.control", "o1.report", ...)
and subscribers consume them.  Two transports share one topic/history
surface:

* :class:`MessageBus` — the original synchronous bus: ``publish``
  invokes subscribers inline on the caller's stack.  One agent, one
  cell, simplest possible semantics.
* :class:`AsyncMessageBus` — the event-loop bus: each subscriber owns a
  bounded :class:`Mailbox` drained by a consumer task on a
  :class:`~repro.oran.loop.VirtualTimeLoop`.  Publishing enqueues;
  delivery happens when the loop runs.  Backpressure is explicit and
  per-subscriber: ``block`` (publisher waits for space), ``drop-oldest``
  (evict the oldest queued message) or ``coalesce`` (keep only the
  newest).  See ``docs/CONTROL_PLANE.md`` for the policy table and the
  determinism contract.

:func:`post` bridges synchronous call sites onto either transport.

When a fault plan with ``bus`` specs is installed (see
``docs/ROBUSTNESS.md``), publishes may be dropped (mode ``loss``) or
held back and delivered before a later publish on the same topic (mode
``delay``) — modelling a lossy/reordering O-RAN transport.  Both
transports apply the same per-publish fault discipline, which is what
keeps a faulted async run aligned with its synchronous twin.
"""

from __future__ import annotations

import inspect
from collections import defaultdict, deque
from collections.abc import Callable

from repro.faults import runtime as faults
from repro.oran.loop import Future, VirtualTimeLoop
from repro.telemetry import runtime as telemetry
from repro.telemetry import spans

__all__ = [
    "MessageBus",
    "AsyncMessageBus",
    "Mailbox",
    "MAILBOX_POLICIES",
    "post",
]


class MessageBus:
    """Minimal synchronous pub/sub transport.

    Parameters
    ----------
    history_limit:
        Messages retained per topic for inspection.
    """

    def __init__(self, history_limit: int = 1000) -> None:
        if history_limit < 1:
            raise ValueError(f"history_limit must be >= 1, got {history_limit}")
        self._subscribers: dict[str, list[Callable[[object], None]]] = defaultdict(list)
        self._history: dict[str, deque] = defaultdict(
            lambda: deque(maxlen=history_limit)
        )
        # Bus fault injection: None unless a fault plan with `bus`
        # specs is installed when the bus is constructed.
        self._bus_faults = faults.make_injector("bus")
        #: Held-back messages per topic: [publishes_remaining, message].
        self._delayed: dict[str, list[list]] = defaultdict(list)

    def subscribe(self, topic: str, handler: Callable[[object], None]) -> None:
        """Register ``handler`` for messages published on ``topic``."""
        if not topic:
            raise ValueError("topic must be non-empty")
        if not callable(handler):
            raise TypeError("handler must be callable")
        self._subscribers[topic].append(handler)

    def unsubscribe(self, topic: str, handler: Callable[[object], None]) -> None:
        """Remove a previously registered handler (no-op if absent)."""
        handlers = self._subscribers.get(topic, [])
        if handler in handlers:
            handlers.remove(handler)

    def publish(self, topic: str, message: object) -> int:
        """Deliver ``message`` to every subscriber of ``topic``.

        Returns the number of handlers invoked for *this* message.
        Handlers run synchronously; exceptions propagate to the
        publisher (fail fast — silent loss of a control message would
        be worse).  Counted as ``oran.bus.published`` (one per call)
        and ``oran.bus.delivered`` (one per handler invoked).

        Under an installed fault plan a publish may be dropped
        (``oran.bus.lost``, returns 0 and invokes no handlers) or held
        back for ``magnitude`` subsequent publishes on the topic
        (``oran.bus.delayed`` — delivered, late and out of order, ahead
        of the publish that releases it).
        """
        if not topic:
            raise ValueError("topic must be non-empty")
        if self._bus_faults is not None:
            spec = self._bus_faults.bus_decision(topic)
            if spec is not None and spec.mode == "loss":
                telemetry.inc("oran.bus.lost")
                return 0
            self._release_due(topic)
            if spec is not None and spec.mode == "delay":
                hold = max(1, int(spec.magnitude))
                self._delayed[topic].append([hold, message])
                telemetry.inc("oran.bus.delayed")
                return 0
        return self._deliver(topic, message)

    def _release_due(self, topic: str) -> None:
        """Age held-back messages by one publish; deliver any now due.

        Due entries are removed from the held queue and the new held
        state committed *before* any handler runs: a handler that
        publishes on the same topic re-enters this method, and must
        observe the post-release state — the old in-place variant aged
        the same list twice, delivering duplicates out of order
        relative to :meth:`history`.
        """
        held = self._delayed[topic]
        if not held:
            return
        due: list[list] = []
        still_held: list[list] = []
        for entry in held:
            entry[0] -= 1
            (due if entry[0] <= 0 else still_held).append(entry)
        self._delayed[topic] = still_held
        for entry in due:
            self._deliver(topic, entry[1])

    def _deliver(self, topic: str, message: object) -> int:
        """Record ``message`` and invoke the topic's handlers."""
        self._history[topic].append(message)
        handlers = list(self._subscribers.get(topic, []))
        telemetry.inc("oran.bus.published")
        for handler in handlers:
            handler(message)
        telemetry.inc("oran.bus.delivered", len(handlers))
        return len(handlers)

    def history(self, topic: str) -> list:
        """Messages delivered on ``topic`` (delivery order, bounded)."""
        return list(self._history.get(topic, []))

    def topics(self) -> list[str]:
        """Topics that have seen at least one subscriber or message."""
        return sorted(set(self._subscribers) | set(self._history))


#: Backpressure policies a :class:`Mailbox` supports when full.
MAILBOX_POLICIES = ("block", "drop-oldest", "coalesce")

#: Sentinel closing a subscriber's consumer task.
_CLOSE = object()


class Mailbox:
    """Bounded per-subscriber queue with an explicit overflow policy.

    Policies when a ``put`` finds the queue at capacity:

    ``block``
        The publisher task parks until the consumer frees a slot —
        lossless, propagates backpressure upstream.
    ``drop-oldest``
        The oldest queued message is evicted to admit the new one —
        bounded loss, keeps the freshest window.
    ``coalesce``
        The whole queue is replaced by the new message — for topics
        where only the latest value matters (KPI gauges, alerts).

    Every policy preserves the *newest* message (property-tested in
    ``tests/test_async_bus.py``).  Counters reconcile as::

        puts == delivered + dropped + coalesced + queued + blocked_waiting

    once the loop is idle.
    """

    def __init__(self, loop: VirtualTimeLoop, capacity: int = 64,
                 policy: str = "block", name: str = "mailbox") -> None:
        """Create an empty mailbox on ``loop`` with the given policy."""
        if capacity < 1:
            raise ValueError(f"mailbox capacity must be >= 1, got {capacity}")
        if policy not in MAILBOX_POLICIES:
            raise ValueError(
                f"unknown mailbox policy {policy!r} "
                f"(expected one of {MAILBOX_POLICIES})"
            )
        self._loop = loop
        self.capacity = int(capacity)
        self.policy = policy
        self.name = name
        self._queue: deque = deque()
        self._getters: deque[Future] = deque()
        self._putters: deque[tuple[Future, object]] = deque()
        #: Counters (see class docstring for the reconciliation law).
        self.puts = 0
        self.delivered = 0
        self.dropped = 0
        self.coalesced = 0
        self.blocked = 0

    def __len__(self) -> int:
        """Messages currently queued (excludes blocked publishers)."""
        return len(self._queue)

    @property
    def blocked_waiting(self) -> int:
        """Publishers currently parked by the ``block`` policy."""
        return len(self._putters)

    async def put(self, message: object) -> None:
        """Enqueue ``message``, applying the overflow policy when full."""
        self.puts += 1
        if self._getters:
            # A consumer is parked on an empty queue: hand off directly.
            self._getters.popleft().set_result(message)
            return
        if len(self._queue) < self.capacity:
            self._queue.append(message)
            return
        if self.policy == "drop-oldest":
            self._queue.popleft()
            self.dropped += 1
            telemetry.inc("oran.mailbox.dropped")
            self._queue.append(message)
            return
        if self.policy == "coalesce":
            self.coalesced += len(self._queue)
            telemetry.inc("oran.mailbox.coalesced", len(self._queue))
            self._queue.clear()
            self._queue.append(message)
            return
        # block: park this publisher until the consumer makes room.
        self.blocked += 1
        telemetry.inc("oran.mailbox.blocked")
        gate = Future(self._loop)
        self._putters.append((gate, message))
        await gate

    async def get(self) -> object:
        """Dequeue the next message, parking while the queue is empty."""
        if self._queue:
            message = self._queue.popleft()
            if self._putters:
                gate, held = self._putters.popleft()
                self._queue.append(held)
                gate.set_result(None)
            self.delivered += 1
            return message
        gate = Future(self._loop)
        self._getters.append(gate)
        message = await gate
        self.delivered += 1
        return message

    def stats(self) -> dict:
        """Counter snapshot (plus live queue/blocked occupancy)."""
        return {
            "name": self.name,
            "capacity": self.capacity,
            "policy": self.policy,
            "puts": self.puts,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "coalesced": self.coalesced,
            "blocked": self.blocked,
            "queued": len(self._queue),
            "blocked_waiting": len(self._putters),
        }


class _TracedMessage:
    """Envelope carrying the publisher's span context with a message.

    Created by :meth:`AsyncMessageBus._fan_out` only while telemetry is
    recording *and* the publishing task has a span open; the consumer
    unwraps it before the handler runs, so handlers never see the
    envelope.  This is what stitches one fleet round into a single span
    tree across bus hops (see :mod:`repro.fleetobs.tracing`).
    """

    __slots__ = ("message", "context")

    def __init__(self, message: object, context: list) -> None:
        self.message = message
        self.context = context


class _Subscriber:
    """One subscription: handler + mailbox + its consumer task."""

    __slots__ = ("handler", "mailbox", "task", "closed", "topic")

    def __init__(self, handler, mailbox: Mailbox, topic: str = "") -> None:
        self.handler = handler
        self.mailbox = mailbox
        self.task = None
        self.closed = False
        self.topic = topic


class AsyncMessageBus:
    """Event-loop pub/sub transport with per-subscriber mailboxes.

    Publishing appends to every subscriber's mailbox (awaiting space
    under the ``block`` policy); each subscriber's consumer task drains
    its mailbox in order and invokes the handler (sync handlers are
    called, coroutine-returning handlers are awaited).  Nothing is
    delivered until the loop runs — :meth:`drain` is the quiescence
    barrier callers synchronise on.

    History records messages in *fan-out* order (the moment a message
    is accepted and enqueued to subscribers), which for delayed-fault
    messages is their release point — i.e. history order is delivery
    order, matching the synchronous bus contract.

    Parameters
    ----------
    loop:
        The scheduler to run on (a fresh FIFO loop by default).
    history_limit:
        Messages retained per topic for inspection.
    default_capacity, default_policy:
        Mailbox bounds for topics without explicit configuration
        (:meth:`configure_topic` / per-``subscribe`` overrides).
    seed:
        Convenience: seeds a newly created loop's tie-breaking (ignored
        when ``loop`` is given).
    """

    def __init__(self, loop: VirtualTimeLoop | None = None,
                 history_limit: int = 1000, default_capacity: int = 64,
                 default_policy: str = "block", seed=None) -> None:
        if history_limit < 1:
            raise ValueError(f"history_limit must be >= 1, got {history_limit}")
        if default_capacity < 1:
            raise ValueError(
                f"default_capacity must be >= 1, got {default_capacity}"
            )
        if default_policy not in MAILBOX_POLICIES:
            raise ValueError(
                f"unknown mailbox policy {default_policy!r} "
                f"(expected one of {MAILBOX_POLICIES})"
            )
        self.loop = loop if loop is not None else VirtualTimeLoop(seed=seed)
        self.default_capacity = int(default_capacity)
        self.default_policy = default_policy
        self._topic_config: dict[str, tuple[int | None, str | None]] = {}
        self._subscribers: dict[str, list[_Subscriber]] = defaultdict(list)
        self._history: dict[str, deque] = defaultdict(
            lambda: deque(maxlen=history_limit)
        )
        self._bus_faults = faults.make_injector("bus")
        self._delayed: dict[str, list[list]] = defaultdict(list)

    # -- configuration ---------------------------------------------------

    def configure_topic(self, topic: str, capacity: int | None = None,
                        policy: str | None = None) -> None:
        """Set mailbox bounds for *future* subscriptions on ``topic``."""
        if not topic:
            raise ValueError("topic must be non-empty")
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy is not None and policy not in MAILBOX_POLICIES:
            raise ValueError(
                f"unknown mailbox policy {policy!r} "
                f"(expected one of {MAILBOX_POLICIES})"
            )
        self._topic_config[topic] = (capacity, policy)

    def subscribe(self, topic: str, handler, capacity: int | None = None,
                  policy: str | None = None) -> None:
        """Register ``handler`` with its own mailbox and consumer task.

        Mailbox bounds resolve: explicit arguments, then
        :meth:`configure_topic`, then the bus defaults.
        """
        if not topic:
            raise ValueError("topic must be non-empty")
        if not callable(handler):
            raise TypeError("handler must be callable")
        topic_capacity, topic_policy = self._topic_config.get(topic, (None, None))
        capacity = capacity if capacity is not None else topic_capacity
        policy = policy if policy is not None else topic_policy
        mailbox = Mailbox(
            self.loop,
            capacity=capacity if capacity is not None else self.default_capacity,
            policy=policy if policy is not None else self.default_policy,
            name=f"{topic}#{len(self._subscribers[topic])}",
        )
        subscriber = _Subscriber(handler, mailbox, topic=topic)
        subscriber.task = self.loop.create_task(
            self._consume(subscriber), name=f"consume:{mailbox.name}"
        )
        self._subscribers[topic].append(subscriber)

    def unsubscribe(self, topic: str, handler) -> None:
        """Remove a subscription; its consumer exits at the next drain."""
        for subscriber in list(self._subscribers.get(topic, [])):
            # Equality, not identity: bound methods (``seen.append``)
            # are fresh objects per access yet compare equal.
            if subscriber.handler == handler and not subscriber.closed:
                subscriber.closed = True
                self._subscribers[topic].remove(subscriber)
                self.loop.create_task(
                    subscriber.mailbox.put(_CLOSE),
                    name=f"close:{subscriber.mailbox.name}",
                )
                return

    # -- publish path ----------------------------------------------------

    async def publish(self, topic: str, message: object) -> int:
        """Enqueue ``message`` to every subscriber of ``topic``.

        Returns the number of subscribers the message was enqueued to
        (delivery to handlers completes when the loop drains).  Applies
        the same per-publish fault discipline as the synchronous bus:
        ``loss`` drops, ``delay`` holds for ``magnitude`` subsequent
        publishes on the topic.
        """
        if not topic:
            raise ValueError("topic must be non-empty")
        if self._bus_faults is not None:
            spec = self._bus_faults.bus_decision(topic)
            if spec is not None and spec.mode == "loss":
                telemetry.inc("oran.bus.lost")
                return 0
            await self._release_due(topic)
            if spec is not None and spec.mode == "delay":
                hold = max(1, int(spec.magnitude))
                self._delayed[topic].append([hold, message])
                telemetry.inc("oran.bus.delayed")
                return 0
        return await self._fan_out(topic, message)

    async def _release_due(self, topic: str) -> None:
        """Age held-back messages by one publish; fan out any now due.

        Same commit-before-deliver discipline as
        :meth:`MessageBus._release_due`.
        """
        held = self._delayed[topic]
        if not held:
            return
        due: list[list] = []
        still_held: list[list] = []
        for entry in held:
            entry[0] -= 1
            (due if entry[0] <= 0 else still_held).append(entry)
        self._delayed[topic] = still_held
        for entry in due:
            await self._fan_out(topic, entry[1])

    async def _fan_out(self, topic: str, message: object) -> int:
        """Record ``message`` and enqueue it to every subscriber.

        While telemetry is recording and the publishing task has a span
        open, the mailboxes receive a :class:`_TracedMessage` envelope
        carrying the publisher's span context (history keeps the bare
        message either way) — causal tracing adds no messages, tasks or
        counter increments, so traced runs stay bit-identical.
        """
        self._history[topic].append(message)
        telemetry.inc("oran.bus.published")
        subscribers = [
            s for s in self._subscribers.get(topic, []) if not s.closed
        ]
        payload = message
        if telemetry.enabled():
            context = spans.get_context()
            if context:
                payload = _TracedMessage(message, list(context))
        for subscriber in subscribers:
            await subscriber.mailbox.put(payload)
        return len(subscribers)

    async def _consume(self, subscriber: _Subscriber):
        """Consumer task: drain the mailbox, invoking the handler.

        A traced envelope restores the publisher's span context around
        the handler under a ``bus.deliver`` span, so spans opened by
        the handler (and messages it publishes in turn) parent under
        the span that published this message.
        """
        while True:
            message = await subscriber.mailbox.get()
            if message is _CLOSE:
                return
            telemetry.inc("oran.bus.delivered")
            if type(message) is _TracedMessage:
                saved = spans.set_context(list(message.context))
                try:
                    with telemetry.span(
                        "bus.deliver", topic=subscriber.topic
                    ):
                        result = subscriber.handler(message.message)
                        if inspect.iscoroutine(result):
                            await result
                finally:
                    spans.set_context(saved)
                continue
            result = subscriber.handler(message)
            if inspect.iscoroutine(result):
                await result

    # -- synchronisation & inspection ------------------------------------

    def drain(self) -> int:
        """Run the loop until quiescent; returns task steps executed.

        After ``drain`` every accepted publish has been handled (or is
        held back by a delay fault) and every consumer is parked on an
        empty mailbox — the state in which an async period is
        comparable to a synchronous one.
        """
        return self.loop.run_until_idle()

    def history(self, topic: str) -> list:
        """Messages fanned out on ``topic`` (delivery order, bounded)."""
        return list(self._history.get(topic, []))

    def topics(self) -> list[str]:
        """Topics that have seen at least one subscriber or message."""
        return sorted(set(self._subscribers) | set(self._history))

    def mailbox_stats(self) -> dict[str, list[dict]]:
        """Per-topic list of subscriber mailbox counter snapshots."""
        return {
            topic: [s.mailbox.stats() for s in subs]
            for topic, subs in self._subscribers.items()
            if subs
        }


def post(bus, topic: str, message: object):
    """Publish on either bus flavour from synchronous code.

    On :class:`MessageBus` the publish delivers inline and the handler
    count is returned.  On :class:`AsyncMessageBus` the publish is
    scheduled as a loop task (so backpressure applies inside the task)
    and the :class:`~repro.oran.loop.Task` handle is returned; delivery
    completes at the next :meth:`AsyncMessageBus.drain`.
    """
    result = bus.publish(topic, message)
    if inspect.iscoroutine(result):
        return bus.loop.create_task(result, name=f"post:{topic}")
    return result
