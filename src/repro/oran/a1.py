"""A1 Policy Management Service.

Implements the policy-type / policy-instance model of the A1-P service
(O-RAN.WG2.A1AP): the near-RT RIC side registers policy *types* with a
lightweight schema; the non-RT RIC side creates, replaces, queries and
deletes policy *instances*.  Instance changes are announced to
registered enforcement callbacks (the policy xApp).

Two transports exist for A1-P requests:

* the direct call path — ``A1PolicyService.handle(request)`` — used by
  the single-cell SMO wiring;
* the bus path — :class:`A1Termination` (provider side) and
  :class:`A1Client` (consumer side) moving
  :class:`~repro.oran.messages.A1PolicyRequest` /
  :class:`~repro.oran.messages.A1PolicyResponse` over the
  ``a1.request`` / ``a1.response`` topics — used by the multi-cell
  event-loop runtime, where many cells share one policy service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from repro.oran.bus import post
from repro.oran.messages import A1PolicyRequest, A1PolicyResponse

#: Policy type id used for the EdgeBOL radio policies (airtime + MCS).
RADIO_POLICY_TYPE_ID = 20008


@dataclass(frozen=True)
class PolicyType:
    """A registered A1 policy type.

    ``schema`` maps field names to ``(min, max)`` numeric bounds — a
    deliberately small subset of JSON Schema sufficient for the radio
    policies of the paper.
    """

    type_id: int
    name: str
    schema: dict[str, tuple[float, float]] = field(default_factory=dict)

    def validate(self, body: dict[str, Any]) -> list[str]:
        """Return a list of validation errors (empty when valid)."""
        errors = []
        for key, (low, high) in self.schema.items():
            if key not in body:
                errors.append(f"missing field {key!r}")
                continue
            value = body[key]
            if not isinstance(value, (int, float)):
                errors.append(f"field {key!r} must be numeric")
            elif not low <= float(value) <= high:
                errors.append(f"field {key!r}={value} outside [{low}, {high}]")
        for key in body:
            if key not in self.schema:
                errors.append(f"unknown field {key!r}")
        return errors


class A1PolicyService:
    """The near-RT RIC's A1-P termination.

    Enforcement callbacks receive ``(policy_type_id, policy_id, body)``
    whenever an instance is created or replaced, and
    ``(policy_type_id, policy_id, None)`` on deletion.
    """

    def __init__(self) -> None:
        self._types: dict[int, PolicyType] = {}
        self._instances: dict[tuple[int, str], dict[str, Any]] = {}
        self._enforcers: list[Callable[[int, str, dict | None], None]] = []

    def register_type(self, policy_type: PolicyType) -> None:
        """Declare a policy type (idempotent by type id)."""
        self._types[policy_type.type_id] = policy_type

    def register_enforcer(
        self, callback: Callable[[int, str, dict | None], None]
    ) -> None:
        """Attach an enforcement hook (e.g. the policy xApp)."""
        self._enforcers.append(callback)

    def policy_types(self) -> list[int]:
        """Registered policy type ids, sorted."""
        return sorted(self._types)

    def instances(self, policy_type_id: int) -> list[str]:
        """Instance ids deployed under ``policy_type_id``, sorted."""
        return sorted(
            pid for (tid, pid) in self._instances if tid == policy_type_id
        )

    def handle(self, request: A1PolicyRequest) -> A1PolicyResponse:
        """Process one A1-P request and return the HTTP-like response."""
        policy_type = self._types.get(request.policy_type_id)
        if policy_type is None:
            return A1PolicyResponse(
                request_id=request.message_id,
                status=404,
                body={"error": f"unknown policy type {request.policy_type_id}"},
            )
        key = (request.policy_type_id, request.policy_id)

        if request.operation == "GET":
            if key not in self._instances:
                return A1PolicyResponse(
                    request_id=request.message_id, status=404,
                    body={"error": "no such policy instance"},
                )
            return A1PolicyResponse(
                request_id=request.message_id, status=200,
                body=dict(self._instances[key]),
            )

        if request.operation == "DELETE":
            if key not in self._instances:
                return A1PolicyResponse(
                    request_id=request.message_id, status=404,
                    body={"error": "no such policy instance"},
                )
            del self._instances[key]
            for enforcer in self._enforcers:
                enforcer(request.policy_type_id, request.policy_id, None)
            return A1PolicyResponse(request_id=request.message_id, status=204)

        # PUT: create or replace.
        errors = policy_type.validate(request.body)
        if errors:
            return A1PolicyResponse(
                request_id=request.message_id, status=400,
                body={"errors": errors},
            )
        created = key not in self._instances
        self._instances[key] = dict(request.body)
        for enforcer in self._enforcers:
            enforcer(request.policy_type_id, request.policy_id, dict(request.body))
        return A1PolicyResponse(
            request_id=request.message_id,
            status=201 if created else 200,
        )


class A1Termination:
    """Provider side of A1-P over the bus.

    Subscribes to ``{prefix}a1.request``, lets the wrapped
    :class:`A1PolicyService` process each request (enforcement
    callbacks fire inside the consumer task) and publishes the
    response on ``{prefix}a1.response``.  The handler returns the
    response publish, so on the async bus the consumer awaits it —
    responses are on the wire before the next request is consumed.
    """

    def __init__(self, bus, service: A1PolicyService, prefix: str = "") -> None:
        """Serve ``service`` over ``bus`` under the topic ``prefix``."""
        self.bus = bus
        self.service = service
        self.request_topic = f"{prefix}a1.request"
        self.response_topic = f"{prefix}a1.response"
        self.handled = 0
        bus.subscribe(self.request_topic, self._on_request)

    def _on_request(self, message: object):
        if not isinstance(message, A1PolicyRequest):
            raise TypeError(
                f"unexpected message on {self.request_topic}: {message!r}"
            )
        response = self.service.handle(message)
        self.handled += 1
        return self.bus.publish(self.response_topic, response)


class A1Client:
    """Consumer (non-RT RIC) side of A1-P over the bus.

    Publishes requests and indexes responses by request id.  A
    non-2xx response raises inside the response consumer — the bus'
    fail-fast contract: a rejected policy surfaces at the next drain
    instead of being silently ignored.
    """

    def __init__(self, bus, prefix: str = "") -> None:
        """Attach to ``bus`` under the ``prefix`` topic namespace."""
        self.bus = bus
        self.request_topic = f"{prefix}a1.request"
        self._responses: dict[int, A1PolicyResponse] = {}
        bus.subscribe(f"{prefix}a1.response", self._on_response)

    def send(self, request: A1PolicyRequest):
        """Publish one request (delivery completes at the next drain)."""
        return post(self.bus, self.request_topic, request)

    def response_for(self, request_id: int) -> A1PolicyResponse | None:
        """The response received for ``request_id``, if any yet."""
        return self._responses.get(request_id)

    def _on_response(self, message: object) -> None:
        if not isinstance(message, A1PolicyResponse):
            raise TypeError(f"unexpected message on a1.response: {message!r}")
        self._responses[message.request_id] = message
        while len(self._responses) > 10_000:
            self._responses.pop(next(iter(self._responses)))
        if not message.ok:
            raise RuntimeError(
                f"A1 policy request {message.request_id} rejected: "
                f"status {message.status} {message.body}"
            )


def radio_policy_type(max_mcs: int = 28) -> PolicyType:
    """The EdgeBOL radio policy type: airtime share + MCS cap."""
    return PolicyType(
        type_id=RADIO_POLICY_TYPE_ID,
        name="edgebol-radio-policy",
        schema={
            "airtime": (0.0, 1.0),
            "max_mcs": (0, max_mcs),
        },
    )
