"""Fleet load harness: per-cell offered-load multipliers over time.

The multi-cell runtime emulates realistic cell-load dynamics by
driving every cell's :meth:`EdgeAIEnvironment.set_load_multiplier`
once per orchestration period from one :class:`FleetLoadModel`:

``flat``
    Constant unit load — the control case.
``diurnal``
    One day-shaped :class:`~repro.ran.traffic.DiurnalTraffic` profile
    per cell, phase-staggered across the fleet so peaks roll through
    the cells like a commuting wave.
``flash``
    Baseline load plus seeded *flash crowds*: a random cell spikes by
    a sampled magnitude that decays linearly over a few periods, with
    half the surge spilling onto the neighbouring cells.
``correlated``
    A shared AR(1) log-load factor (weather, events, regional demand)
    multiplied by per-cell idiosyncratic log-normal noise — cells rise
    and fall together but never identically.

All randomness derives from one ``SeedSequence`` node, so fleet runs
inherit the repo-wide ``--jobs 1 ≡ --jobs N`` determinism.
"""

from __future__ import annotations

import numpy as np

from repro.ran.traffic import DiurnalTraffic
from repro.utils.rng import seed_tree

__all__ = ["FleetLoadModel", "LOAD_PROFILES"]

#: Supported load profile names.
LOAD_PROFILES = ("flat", "diurnal", "flash", "correlated")


class FleetLoadModel:
    """Per-period load multipliers for every cell of a fleet.

    Parameters
    ----------
    n_cells:
        Fleet size.
    profile:
        One of :data:`LOAD_PROFILES`.
    seed:
        Int / ``SeedSequence`` / generator; all profile randomness
        derives from it.
    base:
        Baseline multiplier every profile centres on.
    periods_per_day:
        Day length for the diurnal shape.
    peak:
        Diurnal peak multiplier (must be ``>= base``).
    flash_rate:
        Per-period probability that a new flash crowd starts.
    flash_magnitude:
        Mean extra load at a flash's onset.
    flash_duration:
        Periods over which a flash decays back to baseline.
    rho, sigma:
        AR(1) persistence and innovation scale of the correlated
        profile's shared log-factor.
    cell_sigma:
        Per-cell idiosyncratic log-noise scale (correlated profile).
    """

    def __init__(self, n_cells: int, profile: str = "flat", seed=None,
                 base: float = 1.0, periods_per_day: int = 48,
                 peak: float = 3.0, flash_rate: float = 0.05,
                 flash_magnitude: float = 2.0, flash_duration: int = 5,
                 rho: float = 0.9, sigma: float = 0.15,
                 cell_sigma: float = 0.05) -> None:
        if n_cells < 1:
            raise ValueError(f"n_cells must be >= 1, got {n_cells}")
        if profile not in LOAD_PROFILES:
            raise ValueError(
                f"unknown load profile {profile!r} "
                f"(expected one of {LOAD_PROFILES})"
            )
        if base <= 0:
            raise ValueError(f"base multiplier must be positive, got {base}")
        if peak < base:
            raise ValueError(f"peak ({peak}) must be >= base ({base})")
        if not 0.0 <= flash_rate <= 1.0:
            raise ValueError(f"flash_rate must be in [0, 1], got {flash_rate}")
        if flash_duration < 1:
            raise ValueError(
                f"flash_duration must be >= 1, got {flash_duration}"
            )
        self.n_cells = int(n_cells)
        self.profile = profile
        self.base = float(base)
        self.flash_rate = float(flash_rate)
        self.flash_magnitude = float(flash_magnitude)
        self.flash_duration = int(flash_duration)
        self.rho = float(rho)
        self.sigma = float(sigma)
        self.cell_sigma = float(cell_sigma)
        self._t = 0

        rngs = seed_tree(seed, self.n_cells + 1)
        self._global_rng = rngs[0]
        cell_rngs = rngs[1:]
        self._diurnal: list[DiurnalTraffic] = []
        if profile == "diurnal":
            self._diurnal = [
                DiurnalTraffic(
                    base_multiplier=self.base,
                    peak_multiplier=float(peak),
                    periods_per_day=int(periods_per_day),
                    noise_rel=0.05,
                    rng=cell_rngs[i],
                    phase=(i * periods_per_day) // max(1, self.n_cells),
                )
                for i in range(self.n_cells)
            ]
        #: Active flash crowds: [cell, remaining_periods, magnitude].
        self._flashes: list[list] = []
        #: Shared AR(1) log-load state (correlated profile).
        self._g = 0.0
        self._cell_rngs = cell_rngs

    def step(self) -> np.ndarray:
        """Multipliers for the next period, one per cell (all > 0)."""
        if self.profile == "flat":
            values = np.full(self.n_cells, self.base)
        elif self.profile == "diurnal":
            values = np.array([traffic.step() for traffic in self._diurnal])
        elif self.profile == "flash":
            values = self._step_flash()
        else:
            values = self._step_correlated()
        self._t += 1
        return np.maximum(values, 1e-6)

    def _step_flash(self) -> np.ndarray:
        """Baseline plus decaying flash-crowd surges."""
        rng = self._global_rng
        if rng.random() < self.flash_rate:
            cell = int(rng.integers(self.n_cells))
            magnitude = float(
                self.flash_magnitude * (0.5 + rng.random())
            )
            self._flashes.append([cell, self.flash_duration, magnitude])
        values = np.full(self.n_cells, self.base)
        surviving = []
        for flash in self._flashes:
            cell, remaining, magnitude = flash
            surge = magnitude * remaining / self.flash_duration
            values[cell] += surge
            # Correlated crowd: neighbours absorb half the surge.
            for neighbour in (cell - 1, cell + 1):
                if 0 <= neighbour < self.n_cells:
                    values[neighbour] += 0.5 * surge
            flash[1] -= 1
            if flash[1] > 0:
                surviving.append(flash)
        self._flashes = surviving
        return values

    def _step_correlated(self) -> np.ndarray:
        """Shared AR(1) log-factor times per-cell log-normal noise."""
        self._g = (
            self.rho * self._g
            + self.sigma * float(self._global_rng.standard_normal())
        )
        eps = np.array([
            float(rng.normal(-0.5 * self.cell_sigma ** 2, self.cell_sigma))
            for rng in self._cell_rngs
        ])
        return self.base * np.exp(self._g + eps)

    @property
    def active_flashes(self) -> int:
        """Flash crowds currently decaying (flash profile only)."""
        return len(self._flashes)
