"""Per-cell fleet supervision: checkpoints, restarts, circuit breaking.

:class:`FleetSupervisor` sits beside :class:`~repro.oran.runtime.FleetRuntime`
and gives the fleet crash-recovery semantics on the shared event loop:

* **Periodic checkpoints** — every ``snapshot_every`` periods each live
  cell's agent, environment, decision tracer and run log are serialised
  through :mod:`repro.core.state` into a checksum-framed blob; a small
  ring of recent snapshots (plus the ``t = 0`` anchor) is retained.
* **Failure detection** — cell-task crashes are observed directly
  (the ``cell``/``crash`` fault kind); *stalls* (``loop``/``stall``)
  are silent, so the supervisor watches per-cell heartbeats and
  declares a cell failed once it has made no progress for
  ``stall_timeout`` periods.
* **Restart policy** — the first restart of a failure burst is
  immediate; subsequent restarts within ``restart_window`` back off
  exponentially (``backoff_base * backoff_factor**k``, capped at
  ``max_backoff`` periods).  More than ``max_restarts`` restarts inside
  the window escalates the cell to *quarantine*: it is taken out of
  service permanently and reported as a partial cell.
* **Warm restore + replay** — recovery restores the newest intact
  snapshot (corrupt ones are detected by checksum and skipped, falling
  back to older checkpoints) and replays the missed periods through the
  normal per-cell control path.  Periods the uninterrupted run already
  emitted are replayed under :func:`repro.obs.runtime.suppress` so the
  decision trace gains no duplicates; the replay itself is
  **bit-identical** to the uninterrupted run at the same seed because
  every RNG stream position was snapshotted (``tests/test_supervisor.py``
  asserts RunLog-row and decision-trace equality per recovered cell).
* **Mailbox circuit breaker** — per-cell overload counters (dropped +
  coalesced + blocked on the cell's ``e2.indication`` topic) are
  sampled each period; a delta of at least ``breaker_threshold``
  opens the breaker for ``breaker_cooldown`` periods, during which the
  cell is *shed* to the S0 degraded-service path (no bus traffic, no
  A1 round trip) instead of blocking the loop.

Fault injection (the ``cell``/``loop``/``snapshot``/``mailbox`` kinds of
:mod:`repro.faults`) is consulted whether or not supervision is enabled
— faults are environmental, supervision is the response — so an
unsupervised fleet under the same plan shows the cost of *not* having
the subsystem (dead cells, partial logs).  All firing decisions are
seeded, so fleet chaos runs replay bit-identically.

Tuning notes live in ``docs/ROBUSTNESS.md`` ("Fleet resilience").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import state as snapshots
from repro.faults import runtime as faults
from repro.obs import runtime as obs
from repro.telemetry import runtime as telemetry

__all__ = ["FleetSupervisor", "SupervisorPolicy"]


@dataclass(frozen=True)
class SupervisorPolicy:
    """Tunables of the fleet supervisor (see module docstring).

    Attributes
    ----------
    snapshot_every:
        Periods between checkpoints of each live cell (the ``t = 0``
        anchor snapshot is always taken).
    snapshot_ring:
        Recent checkpoints retained per cell, in addition to the
        anchor — older snapshots give the corruption fallback depth.
    backoff_base, backoff_factor, max_backoff:
        Restart backoff in *periods*: the first restart of a burst is
        immediate, the k-th subsequent one waits
        ``min(backoff_base * backoff_factor**(k-1), max_backoff)``.
    max_restarts, restart_window:
        More than ``max_restarts`` completed restarts within the last
        ``restart_window`` periods escalates the cell to quarantine.
    stall_timeout:
        Heartbeat tolerance: a cell that has made no progress for more
        than this many periods is declared failed.
    breaker_threshold:
        Per-period overload delta (dropped + coalesced + blocked
        indications) that opens the mailbox circuit breaker.
    breaker_cooldown:
        Periods the breaker stays open (the cell runs S0 degraded
        service off the bus) before normal service resumes.
    """

    snapshot_every: int = 10
    snapshot_ring: int = 3
    backoff_base: int = 1
    backoff_factor: float = 2.0
    max_backoff: int = 8
    max_restarts: int = 3
    restart_window: int = 50
    stall_timeout: int = 2
    breaker_threshold: int = 16
    breaker_cooldown: int = 5

    def __post_init__(self) -> None:
        """Validate every tunable."""
        for name in ("snapshot_every", "snapshot_ring", "backoff_base",
                     "max_backoff", "max_restarts", "restart_window",
                     "stall_timeout", "breaker_threshold",
                     "breaker_cooldown"):
            value = getattr(self, name)
            if int(value) != value or value < 1:
                raise ValueError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )


@dataclass
class _CellBooks:
    """Supervision bookkeeping for one cell (internal)."""

    snapshots: list = field(default_factory=list)  # [(t, blob)], oldest first
    snapshots_taken: int = 0
    corrupt_detected: int = 0
    restart_t: list = field(default_factory=list)  # periods restarts completed
    crashes: int = 0
    stalls: int = 0
    down_reason: str | None = None
    down_since: int | None = None  # first period with no row yet
    restart_at: int | None = None
    stalled_since: int | None = None  # hung but not yet detected
    last_progress: int = -1
    quarantined: str | None = None
    breaker_open: bool = False
    breaker_open_until: int = -1
    breaker_trips: int = 0
    shed_periods: int = 0
    overload_total: int = 0


class FleetSupervisor:
    """Supervises the cells of one :class:`~repro.oran.runtime.FleetRuntime`.

    Parameters
    ----------
    runtime:
        The fleet runtime whose cells are supervised.  The runtime
        constructs its supervisor unconditionally; with
        ``enabled=False`` faults still fire (dead cells stay dead) but
        no snapshots are taken and no restarts happen.
    policy:
        :class:`SupervisorPolicy` tunables (defaults when ``None``).
    enabled:
        Whether checkpointing, restarts and the circuit breaker are
        active.
    """

    def __init__(self, runtime, policy: SupervisorPolicy | None = None,
                 enabled: bool = False) -> None:
        """Bind to ``runtime`` and draw the fleet fault injectors."""
        self._runtime = runtime
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.enabled = bool(enabled)
        self._books = [_CellBooks() for _ in runtime.cells]
        self._cell_faults = faults.make_injector("cell")
        self._loop_faults = faults.make_injector("loop")
        self._snapshot_faults = faults.make_injector("snapshot")
        self._mailbox_faults = faults.make_injector("mailbox")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Baseline the overload counters; take the ``t = 0`` anchors."""
        for cell, books in zip(self._runtime.cells, self._books):
            books.overload_total = self._overload_total(cell)
            if self.enabled:
                self._checkpoint(cell, books, 0)

    def begin_period(self, t: int) -> tuple[list, list]:
        """Open period ``t``: returns ``(active, shed)`` cell lists.

        In cell-index order: due restarts are executed (restore +
        replay happens *here*, before the fleet's batched stages, so
        recovered cells rejoin the normal stage order), silent stalls
        whose heartbeat is older than ``stall_timeout`` are declared
        failed, fresh ``cell``/``crash`` and ``loop``/``stall`` fault
        decisions are drawn for healthy cells, and open circuit
        breakers route their cells to the shed list.
        """
        active: list = []
        shed: list = []
        for cell, books in zip(self._runtime.cells, self._books):
            if books.quarantined is not None:
                continue
            if books.stalled_since is not None and books.down_reason is None:
                if t - books.last_progress > self.policy.stall_timeout:
                    self._emit("cell_stall", t, cell,
                               stalled_since=books.stalled_since)
                    self._fail(cell, books, t, reason="stall",
                               down_since=books.stalled_since)
                else:
                    continue  # still silently hung
            if books.down_reason is not None:
                due = (self.enabled and books.restart_at is not None
                       and t >= books.restart_at)
                if not (due and self._recover(cell, books, t)):
                    continue
            if self._cell_faults is not None:
                spec = self._cell_faults.supervisor_decision(
                    cell.cell_id, opportunity=t
                )
                if spec is not None:
                    books.crashes += 1
                    self._emit("cell_crash", t, cell)
                    self._fail(cell, books, t, reason="crash", down_since=t)
                    warm = (self.enabled and books.quarantined is None
                            and books.restart_at == t)
                    if not (warm and self._recover(cell, books, t)):
                        continue
            if self._loop_faults is not None:
                spec = self._loop_faults.supervisor_decision(
                    cell.cell_id, opportunity=t
                )
                if spec is not None:
                    books.stalled_since = t
                    books.stalls += 1
                    continue  # hung: no progress this period
            if books.breaker_open:
                if t < books.breaker_open_until:
                    books.shed_periods += 1
                    shed.append(cell)
                    continue
                books.breaker_open = False
                books.overload_total = self._overload_total(cell)
                self._emit("breaker_close", t, cell)
            active.append(cell)
        return active, shed

    def heartbeat(self, cell, t: int) -> None:
        """Record that ``cell`` completed period ``t`` (stall detector)."""
        self._books[cell.index].last_progress = t

    def maybe_flood(self, cell, t: int) -> None:
        """Fire any ``mailbox``/``overflow`` fault due for ``cell`` at ``t``.

        A firing posts ``magnitude`` junk KPI indications ahead of the
        cell's real report — with the default ``block`` policy the
        excess parks publisher tasks (counted as overload) and delivery
        order keeps the real report last, so the flood costs loop work
        and trips the breaker without corrupting the measured KPI.
        """
        if self._mailbox_faults is None:
            return
        spec = self._mailbox_faults.supervisor_decision(
            cell.cell_id, opportunity=t
        )
        if spec is None:
            return
        for _ in range(max(1, int(spec.magnitude))):
            cell.e2_node.report_kpis({"bs_power_w": 0.0})

    def end_period(self, t: int) -> None:
        """Close period ``t``: breaker evaluation and due checkpoints."""
        if not self.enabled:
            return
        for cell, books in zip(self._runtime.cells, self._books):
            if (books.quarantined is not None
                    or books.down_reason is not None
                    or books.stalled_since is not None):
                continue
            if not books.breaker_open:
                total = self._overload_total(cell)
                delta = total - books.overload_total
                books.overload_total = total
                if delta >= self.policy.breaker_threshold:
                    books.breaker_open = True
                    books.breaker_open_until = t + 1 + self.policy.breaker_cooldown
                    books.breaker_trips += 1
                    self._emit("breaker_open", t, cell, overload=int(delta))
                    telemetry.inc("fleet.breaker_trips")
            if (t + 1) % self.policy.snapshot_every == 0:
                self._checkpoint(cell, books, t + 1)

    def finish(self, n_periods: int) -> None:
        """Drain the backlog at end of run: recover every down cell.

        Undetected stalls are declared failed, and (when supervision is
        enabled) every non-quarantined down cell is restored and
        replayed through period ``n_periods - 1`` regardless of its
        backoff deadline — this is what makes "zero lost rows" hold for
        crashes near the horizon.  Unsupervised fleets leave the cells
        down; they surface as partial cells instead.
        """
        for cell, books in zip(self._runtime.cells, self._books):
            if books.quarantined is not None:
                continue
            if books.stalled_since is not None and books.down_reason is None:
                # Even inside the heartbeat tolerance: the run is over,
                # so an undetected hang is declared now.
                self._emit("cell_stall", n_periods, cell,
                           stalled_since=books.stalled_since)
                self._fail(cell, books, n_periods, reason="stall",
                           down_since=books.stalled_since)
            if books.down_reason is not None and self.enabled \
                    and books.quarantined is None:
                self._recover(cell, books, n_periods)

    # -- results -----------------------------------------------------------

    def partial_cells(self, n_periods: int) -> dict:
        """Cells whose logs are short: ``{cell_id: {rows, missed, reason}}``.

        Only cells with a *known* failure (quarantined, or down without
        recovery) are listed — a healthy cell with a short log is an
        accounting bug, which :meth:`FleetRuntime.run` turns into a
        ``RuntimeError`` rather than a silently partial result.
        """
        partial: dict = {}
        for cell, books in zip(self._runtime.cells, self._books):
            reason = books.quarantined or books.down_reason
            if reason is None:
                continue
            rows = len(cell.log)
            partial[cell.cell_id] = {
                "rows": rows,
                "missed": n_periods - rows,
                "reason": reason,
            }
        return partial

    def report(self) -> dict:
        """Per-cell supervision summary for :class:`FleetResult.recovery`."""
        out: dict = {}
        for cell, books in zip(self._runtime.cells, self._books):
            out[cell.cell_id] = {
                "restarts": len(books.restart_t),
                "recovered": bool(books.restart_t),
                "crashes": int(books.crashes),
                "stalls": int(books.stalls),
                "snapshots": int(books.snapshots_taken),
                "snapshot_corrupt": int(books.corrupt_detected),
                "breaker_trips": int(books.breaker_trips),
                "shed_periods": int(books.shed_periods),
                "quarantined": books.quarantined,
            }
        return out

    # -- internals ---------------------------------------------------------

    def _fail(self, cell, books, t: int, reason: str,
              down_since: int) -> None:
        """Mark ``cell`` failed at ``t``; schedule or escalate."""
        books.down_reason = reason
        books.down_since = down_since
        books.stalled_since = None
        telemetry.inc(f"fleet.cell_{reason}")
        if not self.enabled:
            books.restart_at = None
            return
        recent = [r for r in books.restart_t
                  if t - r < self.policy.restart_window]
        if len(recent) >= self.policy.max_restarts:
            self._quarantine(
                cell, books, t,
                f"{len(recent)} restarts within the last "
                f"{self.policy.restart_window} periods",
            )
            return
        if recent:
            delay = min(
                int(self.policy.backoff_base
                    * self.policy.backoff_factor ** (len(recent) - 1)),
                self.policy.max_backoff,
            )
        else:
            delay = 0
        books.restart_at = t + delay

    def _quarantine(self, cell, books, t: int, reason: str) -> None:
        """Escalate ``cell`` out of service permanently."""
        books.quarantined = reason
        books.restart_at = None
        self._emit("quarantine", t, cell, reason=reason)
        telemetry.inc("fleet.quarantined_cells")

    def _recover(self, cell, books, t: int) -> bool:
        """Warm-restore ``cell`` at period ``t`` and replay the gap.

        Restores the newest intact snapshot (checksum failures fall
        back to older checkpoints; none intact quarantines the cell),
        then replays every period from the snapshot horizon to ``t``
        through :meth:`FleetRuntime._cell_period` — suppressed for
        periods the run already emitted, fresh for missed ones.
        Returns True when the cell is back in service.
        """
        payload = None
        for snap_t, blob in reversed(books.snapshots):
            try:
                payload = snapshots.decode_snapshot(blob)
            except snapshots.SnapshotCorruptionError:
                books.corrupt_detected += 1
                self._emit("snapshot_corrupt", t, cell, snapshot_t=snap_t)
                continue
            break
        if payload is None:
            self._quarantine(cell, books, t, "no intact snapshot")
            return False
        snap_t = int(payload["t"])
        snapshots.restore_agent_state(cell.agent, payload["agent"])
        snapshots.restore_env_state(cell.env, payload["env"])
        tracer = cell.agent._tracer
        if tracer is not None and payload["tracer"] is not None:
            snapshots.restore_tracer_state(tracer, payload["tracer"])
        snapshots.restore_runlog_state(cell.log, payload["log"])
        runtime = self._runtime
        down_since = books.down_since if books.down_since is not None else t
        replayed = caught_up = 0
        for p in range(snap_t, t):
            runtime._set_cell_load(cell, p)
            if p < down_since:
                with obs.suppress():
                    runtime._cell_period(cell, p, fresh=False)
                replayed += 1
            else:
                runtime._cell_period(cell, p, fresh=True)
                caught_up += 1
        runtime._set_cell_load(cell, t)
        books.down_reason = None
        books.down_since = None
        books.restart_at = None
        books.restart_t.append(t)
        books.last_progress = t - 1
        books.overload_total = self._overload_total(cell)
        self._emit("recovery", t, cell, snapshot_t=snap_t,
                   replayed=replayed, caught_up=caught_up,
                   restarts=len(books.restart_t))
        telemetry.inc("fleet.recoveries")
        return True

    def _checkpoint(self, cell, books, horizon: int) -> None:
        """Snapshot ``cell`` as of period boundary ``horizon``.

        A firing ``snapshot``/``corrupt`` fault flips one byte of the
        stored blob *silently* — detection is the restore path's job.
        The ring keeps the ``t = 0`` anchor plus the newest
        ``snapshot_ring`` checkpoints.
        """
        tracer = cell.agent._tracer
        payload = {
            "format": snapshots.SNAPSHOT_FORMAT,
            "cell": cell.cell_id,
            "t": int(horizon),
            "agent": snapshots.agent_state(cell.agent),
            "env": snapshots.env_state(cell.env),
            "tracer": None if tracer is None else snapshots.tracer_state(tracer),
            "log": snapshots.runlog_state(cell.log),
        }
        blob = snapshots.encode_snapshot(payload)
        if self._snapshot_faults is not None:
            spec = self._snapshot_faults.supervisor_decision(cell.cell_id)
            if spec is not None:
                blob = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        books.snapshots.append((int(horizon), blob))
        books.snapshots_taken += 1
        telemetry.inc("fleet.snapshots")
        while len(books.snapshots) > 1 + self.policy.snapshot_ring:
            del books.snapshots[1]  # keep the anchor as the last resort

    def _overload_total(self, cell) -> int:
        """Cumulative overload count on ``cell``'s indication topic."""
        stats = self._runtime.bus.mailbox_stats().get(
            f"{cell.prefix}e2.indication", ()
        )
        return sum(
            int(s.get("dropped", 0)) + int(s.get("coalesced", 0))
            + int(s.get("blocked", 0))
            for s in stats
        )

    def _emit(self, event: str, t: int, cell, **extra) -> None:
        """Emit one supervision event record through the decision sink."""
        record = {"event": event, "t": int(t), "agent": cell.cell_id}
        record.update(extra)
        obs.emit(record)
