"""SMO framework: end-to-end O-RAN wiring of the EdgeBOL loop.

Builds the complete Fig. 7 deployment — message bus, near-RT and
non-RT RICs, policy/KPI xApps, policy/data rApps, an E2 node attached
to the simulated vBS — and runs the orchestration loop with every
control decision travelling A1 -> E2 and every KPI sample travelling
E2 -> O1.  Used by the O-RAN integration example and tests; the
experiment harness drives the environment directly for speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.oran.apps import (
    DataCollectorRApp,
    KPIDatabaseXApp,
    PolicyServiceRApp,
    PolicyServiceXApp,
)
from repro.oran.bus import MessageBus
from repro.oran.e2 import E2Node
from repro.oran.ric import NearRTRIC, NonRTRIC
from repro.ran.phy import MAX_MCS
from repro.testbed.config import ControlPolicy
from repro.testbed.env import EdgeAIEnvironment, TestbedObservation


class SMOFramework:
    """Service Management and Orchestration: owns and wires components.

    Parameters
    ----------
    bus:
        Transport for the whole plane.  Defaults to the synchronous
        :class:`MessageBus`; pass an
        :class:`~repro.oran.bus.AsyncMessageBus` to run the identical
        wiring on the event loop (the caller then drains the loop at
        the synchronisation points — see
        :class:`~repro.oran.runtime.AsyncOranSystem`).
    node_id, prefix:
        E2 node identity and topic namespace (multi-cell layouts give
        every cell its own prefix on one shared bus).
    batch_size:
        E2 indication batch size (see :class:`~repro.oran.e2.E2Node`).
    """

    def __init__(self, bus=None, node_id: str = "o-enb-0",
                 prefix: str = "", batch_size: int = 1) -> None:
        self.bus = bus if bus is not None else MessageBus()
        self.prefix = prefix
        self.near_rt_ric = NearRTRIC(self.bus, prefix=prefix)
        self.non_rt_ric = NonRTRIC(self.near_rt_ric)
        self.e2_node = E2Node(
            node_id=node_id, bus=self.bus, prefix=prefix,
            batch_size=batch_size,
        )

        # xApps on the near-RT RIC.
        self.policy_xapp = PolicyServiceXApp(
            self.near_rt_ric.a1_service, self.near_rt_ric.e2
        )
        self.kpi_xapp = KPIDatabaseXApp(self.near_rt_ric.e2, self.near_rt_ric.o1)
        self.near_rt_ric.host_xapp(self.policy_xapp)
        self.near_rt_ric.host_xapp(self.kpi_xapp)

        # rApps on the non-RT RIC.
        self._service_policy: tuple[float, float] = (1.0, 1.0)
        self.policy_rapp = PolicyServiceRApp(
            self.non_rt_ric.a1_service,
            on_service_policy=self._set_service_policy,
        )
        self.data_rapp = DataCollectorRApp(self.near_rt_ric.o1)
        self.non_rt_ric.host_rapp(self.policy_rapp)
        self.non_rt_ric.host_rapp(self.data_rapp)

        # The KPI xApp subscribes for the vBS power metric (Section 4.1).
        self.near_rt_ric.e2.subscribe_kpis(
            subscriber=self.kpi_xapp.name, kpi_names=("bs_power_w",)
        )

    def _set_service_policy(self, resolution: float, gpu_speed: float) -> None:
        self._service_policy = (resolution, gpu_speed)

    @property
    def enforced_policy(self) -> ControlPolicy:
        """Joint control as actually enforced across the system.

        Radio knobs come from the E2 node's MAC state (having traversed
        A1 -> xApp -> E2 control), service knobs from the edge
        orchestrator.
        """
        radio = self.e2_node.radio_policy
        resolution, gpu_speed = self._service_policy
        return ControlPolicy(
            resolution=resolution,
            airtime=radio.airtime,
            gpu_speed=gpu_speed,
            mcs_fraction=radio.max_mcs / MAX_MCS,
        )


@dataclass(frozen=True)
class OrchestrationRecord:
    """One period of the O-RAN-mediated loop (for inspection)."""

    period: int
    policy: ControlPolicy
    observation: TestbedObservation
    cost: float


class OranSystem:
    """The full closed loop: agent -> O-RAN plane -> testbed -> agent.

    Parameters
    ----------
    env:
        The simulated prototype.
    agent:
        Anything exposing ``select(context)``, ``observe(context,
        policy, observation)`` — EdgeBOL or any benchmark controller.
    smo:
        Pre-wired :class:`SMOFramework` to drive (a fresh synchronous
        one by default).  :class:`~repro.oran.runtime.AsyncOranSystem`
        passes an event-loop-backed SMO and overrides
        :meth:`_sync_point` to drain it.
    """

    def __init__(self, env: EdgeAIEnvironment, agent,
                 smo: SMOFramework | None = None) -> None:
        self.env = env
        self.agent = agent
        self.smo = smo if smo is not None else SMOFramework()
        self._period = 0
        self.records: list[OrchestrationRecord] = []

    def _sync_point(self) -> None:
        """Barrier between plane stages — a no-op on the inline bus."""

    def run_period(self) -> OrchestrationRecord:
        """Execute one orchestration period through the O-RAN plane."""
        context = self.env.observe_context()
        decision = self.agent.select(context)

        # Control path: rApp -> A1 -> xApp -> E2 control -> O-eNB MAC,
        # plus the custom interface for service knobs.
        self.smo.policy_rapp.deploy(decision)
        self._sync_point()
        enforced = self.smo.enforced_policy

        # Data plane: the testbed runs one period under the *enforced*
        # policy (which must equal the decision if the plane is sound).
        observation = self.env.step(enforced)

        # KPI path: the E2 node reports BS power; the KPI xApp stores it
        # and forwards it over O1 to the data-collector rApp.
        self.smo.e2_node.report_kpis({"bs_power_w": observation.bs_power_w})
        self._sync_point()

        # The service controller reports service KPIs to the agent
        # directly (the "custom interface" of Fig. 7); BS power arrives
        # through the collector rApp.
        collected = self.smo.data_rapp.latest_kpis
        bs_power = collected.get("bs_power_w", observation.bs_power_w)
        merged = TestbedObservation(
            delay_s=observation.delay_s,
            map_score=observation.map_score,
            server_power_w=observation.server_power_w,
            bs_power_w=bs_power,
            gpu_delay_s=observation.gpu_delay_s,
            gpu_utilization=observation.gpu_utilization,
            total_rate_hz=observation.total_rate_hz,
            mean_mcs=observation.mean_mcs,
            offered_load_bps=observation.offered_load_bps,
            per_user_delay_s=observation.per_user_delay_s,
            per_user_rate_hz=observation.per_user_rate_hz,
        )
        cost = self.agent.observe(context, enforced, merged)
        self._period += 1
        record = OrchestrationRecord(
            period=self._period, policy=enforced, observation=merged, cost=cost
        )
        self.records.append(record)
        return record

    def run(self, n_periods: int) -> list[OrchestrationRecord]:
        """Run several periods; returns the new records."""
        if n_periods < 0:
            raise ValueError(f"n_periods must be non-negative, got {n_periods}")
        return [self.run_period() for _ in range(n_periods)]
