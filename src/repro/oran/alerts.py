"""Alerting for the control plane: rules, throttling and routing.

The fleet runtime evaluates a small rule set against every cell's
per-period sample (KPIs, constraint margins and the PR-5 anomaly
signals such as degraded-mode service) and routes the resulting
:class:`Alert` records to sinks — in-memory logs, callables, or a bus
topic (typically configured with a ``coalesce``/``drop-oldest``
mailbox so a flapping cell cannot wedge the plane).

Rules are *throttled* per ``(rule, cell)``: once raised, a rule stays
silent for ``min_gap`` periods on that cell (suppressions are counted,
not dropped silently), and ``sustain`` requires the condition to hold
for N consecutive periods before the first alert — a degraded-mode
*stretch* rather than a single degraded period.

Everything here is deterministic given the sample stream, so alert
counts are reproducible fleet outputs (they appear in the ``fleet``
experiment's rows).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.oran.bus import post
from repro.telemetry import runtime as telemetry

__all__ = ["Alert", "AlertRule", "AlertRouter", "default_rules"]


@dataclass(frozen=True)
class Alert:
    """One routed alert occurrence."""

    rule: str
    severity: str
    cell: str
    t: int
    message: str
    value: float | None = None

    def to_record(self) -> dict:
        """JSON-serialisable rendering (for sinks and history)."""
        return {
            "type": "alert",
            "rule": self.rule,
            "severity": self.severity,
            "cell": self.cell,
            "t": self.t,
            "message": self.message,
            "value": self.value,
        }


@dataclass(frozen=True)
class AlertRule:
    """One alert condition over per-period cell samples.

    Attributes
    ----------
    name:
        Stable rule identifier (becomes :attr:`Alert.rule`).
    predicate:
        ``sample -> bool`` — whether the condition holds this period.
    message:
        ``sample -> str`` — human-readable alert text.
    severity:
        Routing hint (``"warning"`` / ``"critical"``).
    sustain:
        Consecutive true periods required before raising (stretches,
        not blips).
    min_gap:
        Minimum periods between raises per cell (throttling); further
        occurrences inside the gap are counted as suppressed.
    value:
        Optional ``sample -> float`` extracting the quantity that
        triggered (for dashboards).
    """

    name: str
    predicate: Callable[[dict], bool]
    message: Callable[[dict], str]
    severity: str = "warning"
    sustain: int = 1
    min_gap: int = 10
    value: Callable[[dict], float] | None = None

    def __post_init__(self) -> None:
        """Validate the throttle parameters."""
        if self.sustain < 1:
            raise ValueError(f"sustain must be >= 1, got {self.sustain}")
        if self.min_gap < 1:
            raise ValueError(f"min_gap must be >= 1, got {self.min_gap}")


@dataclass
class _RuleState:
    """Per-(rule, cell) throttle state."""

    streak: int = 0
    last_raised: int | None = None
    raised: int = 0
    suppressed: int = 0


class AlertRouter:
    """Evaluates rules against samples and routes surviving alerts.

    Sinks are callables receiving the :class:`Alert`; ``bus`` +
    ``topic`` additionally publishes each alert's record on the bus
    (EdgeWatch-style: the alert stream is itself a topic other xApps
    can subscribe to).  All raised alerts are retained in
    :attr:`history` (bounded).
    """

    def __init__(self, rules, bus=None, topic: str = "smo.alerts",
                 history_limit: int = 1000) -> None:
        """Create a router over ``rules`` with optional bus routing."""
        if history_limit < 1:
            raise ValueError(f"history_limit must be >= 1, got {history_limit}")
        self.rules = tuple(rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        self.bus = bus
        self.topic = topic
        self.history_limit = int(history_limit)
        self.history: list[Alert] = []
        self._sinks: list[Callable[[Alert], None]] = []
        self._state: dict[tuple[str, str], _RuleState] = {}

    def add_sink(self, sink: Callable[[Alert], None]) -> None:
        """Register a callable receiving every raised alert."""
        if not callable(sink):
            raise TypeError("alert sink must be callable")
        self._sinks.append(sink)

    def process(self, sample: dict) -> list[Alert]:
        """Evaluate every rule against ``sample``; route what survives.

        ``sample`` must carry ``cell`` (str) and ``t`` (int) plus
        whatever fields the rules read.  Returns the alerts raised
        (after sustain and throttle filtering) this call.
        """
        cell = str(sample.get("cell", "?"))
        t = int(sample.get("t", 0))
        raised: list[Alert] = []
        for rule in self.rules:
            state = self._state.setdefault((rule.name, cell), _RuleState())
            if not rule.predicate(sample):
                state.streak = 0
                continue
            state.streak += 1
            if state.streak < rule.sustain:
                continue
            if (state.last_raised is not None
                    and t - state.last_raised < rule.min_gap):
                state.suppressed += 1
                telemetry.inc("oran.alerts.suppressed")
                continue
            state.last_raised = t
            state.raised += 1
            alert = Alert(
                rule=rule.name,
                severity=rule.severity,
                cell=cell,
                t=t,
                message=rule.message(sample),
                value=(None if rule.value is None
                       else float(rule.value(sample))),
            )
            raised.append(alert)
            self._route(alert)
        return raised

    def _route(self, alert: Alert) -> None:
        """Deliver one alert to history, sinks and the bus topic."""
        telemetry.inc("oran.alerts.raised")
        self.history.append(alert)
        if len(self.history) > self.history_limit:
            del self.history[: len(self.history) - self.history_limit]
        for sink in self._sinks:
            sink(alert)
        if self.bus is not None:
            post(self.bus, self.topic, alert.to_record())

    def counts(self) -> dict:
        """Aggregate ``{"raised": n, "suppressed": m}`` across rules."""
        return {
            "raised": sum(s.raised for s in self._state.values()),
            "suppressed": sum(s.suppressed for s in self._state.values()),
        }

    def counts_by_rule(self) -> dict[str, dict]:
        """Per-rule raised/suppressed totals (summed over cells)."""
        totals: dict[str, dict] = {
            rule.name: {"raised": 0, "suppressed": 0} for rule in self.rules
        }
        for (rule_name, _cell), state in self._state.items():
            totals[rule_name]["raised"] += state.raised
            totals[rule_name]["suppressed"] += state.suppressed
        return totals


def default_rules(min_gap: int = 10, degraded_sustain: int = 5,
                  margin_sustain: int = 3) -> tuple[AlertRule, ...]:
    """The control plane's standard rule set.

    * ``delay_violation`` — the period's delay exceeded ``d_max_s``;
    * ``quality_violation`` — mAP fell below ``rho_min``;
    * ``negative_margin`` — the delay margin stayed negative for
      ``margin_sustain`` consecutive periods (persistent breach, the
      PR-5 ``persistent_negative_margin`` anomaly as an alert);
    * ``degraded_stretch`` — the agent served ``degraded_sustain``
      consecutive periods from its degraded/fallback mode.
    """
    return (
        AlertRule(
            name="delay_violation",
            predicate=lambda s: s.get("delay_s", 0.0) > s.get("d_max_s", float("inf")),
            message=lambda s: (
                f"delay {s.get('delay_s', 0.0):.3f}s exceeds "
                f"d_max {s.get('d_max_s', 0.0):.3f}s"
            ),
            severity="warning",
            min_gap=min_gap,
            value=lambda s: s.get("delay_s", 0.0),
        ),
        AlertRule(
            name="quality_violation",
            predicate=lambda s: s.get("map_score", 1.0) < s.get("rho_min", 0.0),
            message=lambda s: (
                f"mAP {s.get('map_score', 0.0):.3f} below "
                f"rho_min {s.get('rho_min', 0.0):.3f}"
            ),
            severity="warning",
            min_gap=min_gap,
            value=lambda s: s.get("map_score", 0.0),
        ),
        AlertRule(
            name="negative_margin",
            predicate=lambda s: (
                s.get("d_max_s", float("inf")) - s.get("delay_s", 0.0) < 0.0
            ),
            message=lambda s: (
                f"delay margin negative for {margin_sustain}+ periods "
                f"(margin {s.get('d_max_s', 0.0) - s.get('delay_s', 0.0):.3f}s)"
            ),
            severity="critical",
            sustain=margin_sustain,
            min_gap=min_gap,
            value=lambda s: s.get("d_max_s", 0.0) - s.get("delay_s", 0.0),
        ),
        AlertRule(
            name="degraded_stretch",
            predicate=lambda s: bool(s.get("degraded", False)),
            message=lambda s: (
                f"agent degraded mode sustained {degraded_sustain}+ periods"
            ),
            severity="critical",
            sustain=degraded_sustain,
            min_gap=min_gap,
        ),
    )
