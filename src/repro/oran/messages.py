"""Message types exchanged over the O-RAN interfaces.

Simplified but structurally faithful renderings of the O-RAN WG2/WG3
protocol objects: A1 policy management (O-RAN.WG2.A1AP), E2 RIC
services (O-RAN.WG3.E2GAP) and O1 performance reporting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_message_counter = itertools.count(1)


def next_message_id() -> int:
    """Monotonically increasing id shared by all message types."""
    return next(_message_counter)


@dataclass(frozen=True)
class A1PolicyRequest:
    """A1-P policy create/update/delete request (non-RT RIC -> near-RT RIC).

    Attributes
    ----------
    operation:
        ``"PUT"`` creates or replaces a policy instance, ``"DELETE"``
        removes it, ``"GET"`` queries it.
    policy_type_id:
        Registered policy type the instance conforms to.
    policy_id:
        Instance identifier, unique per type.
    body:
        Policy payload (JSON-like dict) validated against the type's
        schema.
    """

    operation: str
    policy_type_id: int
    policy_id: str
    body: dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=next_message_id)

    def __post_init__(self) -> None:
        if self.operation not in ("PUT", "DELETE", "GET"):
            raise ValueError(f"unsupported A1 operation {self.operation!r}")


@dataclass(frozen=True)
class A1PolicyResponse:
    """A1-P response carrying status and optional payload."""

    request_id: int
    status: int
    body: dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=next_message_id)

    @property
    def ok(self) -> bool:
        """Whether the status code is in the 2xx success range."""
        return 200 <= self.status < 300


@dataclass(frozen=True)
class E2Subscription:
    """RIC Subscription: ask an E2 node to report KPIs periodically."""

    subscriber: str
    kpi_names: tuple[str, ...]
    report_period_s: float = 1.0
    message_id: int = field(default_factory=next_message_id)

    def __post_init__(self) -> None:
        if not self.kpi_names:
            raise ValueError("subscription must request at least one KPI")
        if self.report_period_s <= 0:
            raise ValueError("report_period_s must be positive")


@dataclass(frozen=True)
class E2ControlRequest:
    """RIC Control: enforce radio policies on the E2 node."""

    airtime: float
    max_mcs: int
    message_id: int = field(default_factory=next_message_id)


@dataclass(frozen=True)
class E2Indication:
    """RIC Indication: one KPI report from an E2 node."""

    node_id: str
    kpis: dict[str, float]
    period: int
    message_id: int = field(default_factory=next_message_id)


@dataclass(frozen=True)
class E2IndicationBatch:
    """Several RIC Indications from one node, shipped as one message.

    The E2 node buffers indications when its ``batch_size`` exceeds one
    and flushes them in report order — batching amortises per-message
    transport cost on the async bus without reordering KPIs.  ``period``
    is the node-local period of the *last* batched indication.
    """

    node_id: str
    indications: tuple[E2Indication, ...]
    period: int
    message_id: int = field(default_factory=next_message_id)

    def __post_init__(self) -> None:
        if not self.indications:
            raise ValueError("indication batch must not be empty")


@dataclass(frozen=True)
class O1Report:
    """O1 performance-management report forwarded to the SMO/non-RT RIC."""

    source: str
    kpis: dict[str, float]
    period: int
    message_id: int = field(default_factory=next_message_id)
