"""Deterministic seeded virtual-time event loop for the O-RAN runtime.

The async control plane must preserve two invariants the synchronous
bus gives for free:

* **bit-identity** — a single-cell run through the async bus must
  produce the same RunLog rows and decision-trace records as the
  synchronous bus at the same seed;
* **``--jobs 1 ≡ --jobs N``** — sweep determinism must survive, so no
  wall-clock time or OS scheduling may leak into results.

``asyncio``'s default loop satisfies neither (its ready queue order
depends on timers and I/O readiness, and ``loop.time()`` is the
monotonic clock), so this module implements a minimal cooperative
scheduler over plain coroutines instead:

* time is *virtual* — :attr:`VirtualTimeLoop.now` only advances when
  the ready queue empties and the earliest timer fires;
* the ready queue is FIFO by default, giving one canonical execution
  order; passing ``seed=`` enables *deterministic adversarial
  interleaving* — ready tasks are picked by a seeded RNG, so tests can
  explore schedules reproducibly (same seed, same schedule);
* :meth:`VirtualTimeLoop.run_until_idle` is the quiescence barrier the
  control plane synchronises on: it steps tasks until none is runnable
  and no timer is pending (tasks parked on a :class:`Future` count as
  idle), which is what makes a drained async period equal a
  synchronous one.

Telemetry spans propagate across tasks: each task carries its own span
stack (:func:`repro.telemetry.spans.get_context` /
``set_context``), seeded from the stack open at ``create_task`` time,
so a span opened inside a task nests under the spawning span rather
than under whichever span is open when the scheduler resumes it.

Coroutines may only await :class:`Future`, :func:`sleep` results and
other tasks (a :class:`Task` is awaitable through its completion
future).  Exceptions raised inside a task propagate out of the loop's
run methods — the control plane fails fast, exactly like the
synchronous bus where a handler exception reaches the publisher.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque

from repro.telemetry import spans
from repro.utils.rng import ensure_rng

__all__ = ["Future", "Task", "VirtualTimeLoop", "sleep"]


class Future:
    """A one-shot result container tasks can await.

    Created against a loop; :meth:`set_result` marks it done and
    reschedules every awaiting task with the value.  Awaiting an
    already-done future resumes immediately (well-defined order: the
    awaiting task re-enters the ready queue).
    """

    __slots__ = ("_loop", "_value", "_done", "_waiters")

    def __init__(self, loop: "VirtualTimeLoop") -> None:
        """Bind the future to ``loop`` (which resumes its waiters)."""
        self._loop = loop
        self._value = None
        self._done = False
        self._waiters: list[Task] = []

    def done(self) -> bool:
        """Whether :meth:`set_result` has been called."""
        return self._done

    def result(self):
        """The value set, raising if the future is not done yet."""
        if not self._done:
            raise RuntimeError("future result is not set yet")
        return self._value

    def set_result(self, value=None) -> None:
        """Resolve with ``value`` and reschedule all awaiting tasks."""
        if self._done:
            raise RuntimeError("future result already set")
        self._done = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for task in waiters:
            self._loop._resume(task, value)

    def __await__(self):
        """Suspend the awaiting task until resolved; yields the value."""
        if not self._done:
            yield self
        if not self._done:
            raise RuntimeError("future-parked task resumed without a result")
        return self._value


class _Sleep:
    """Awaitable marker scheduling a virtual-time timer."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        self.delay = float(delay)

    def __await__(self):
        """Park the task on the loop's timer heap for ``delay``."""
        yield self
        return None


def sleep(delay: float) -> _Sleep:
    """Awaitable advancing the task by ``delay`` units of virtual time.

    ``sleep(0)`` yields the scheduler once (the task re-queues at the
    current virtual time, behind already-ready tasks).
    """
    if delay < 0:
        raise ValueError(f"sleep delay must be non-negative, got {delay}")
    return _Sleep(delay)


class Task:
    """One coroutine driven by the loop.

    ``result`` holds the coroutine's return value once ``done``;
    awaiting a task awaits its completion future.
    """

    __slots__ = ("coro", "name", "done", "result", "_context", "_completion")

    def __init__(self, coro, name: str, loop: "VirtualTimeLoop") -> None:
        """Wrap ``coro``; the spawning span context is captured here."""
        self.coro = coro
        self.name = name
        self.done = False
        self.result = None
        # Tasks inherit a *copy* of the creator's span stack: pops
        # inside the task must not disturb the creator's open spans.
        self._context: list = list(spans.get_context())
        self._completion = Future(loop)

    def __await__(self):
        """Await the task's completion; yields its return value."""
        return self._completion.__await__()

    def __del__(self):
        """Close an unfinished coroutine quietly at collection time.

        Long-lived service tasks (bus consumers parked on empty
        mailboxes) never complete; without the close, dropping the loop
        emits "coroutine was never awaited" warnings from the GC.
        """
        if not self.done:
            try:
                self.coro.close()
            except Exception:
                pass

    def __repr__(self) -> str:
        """Debug rendering with name and completion state."""
        state = "done" if self.done else "pending"
        return f"Task({self.name!r}, {state})"


class VirtualTimeLoop:
    """Single-threaded deterministic coroutine scheduler (see module doc).

    Parameters
    ----------
    seed:
        ``None`` (default) runs the ready queue strictly FIFO — the
        canonical order the bit-identity contract is stated for.  Any
        seed enables reproducible pseudo-random selection among ready
        tasks, for schedule-robustness tests.
    """

    #: Step budget guarding :meth:`run_until_idle` against livelock.
    MAX_STEPS = 1_000_000

    def __init__(self, seed=None) -> None:
        """Create an empty loop at virtual time zero."""
        self.now = 0.0
        self.steps = 0
        self._ready: deque[tuple[Task, object]] = deque()
        self._timers: list[tuple[float, int, Task]] = []
        self._seq = itertools.count()
        self._rng = None if seed is None else ensure_rng(seed)
        self._current: Task | None = None

    # -- task management -------------------------------------------------

    def create_task(self, coro, name: str | None = None) -> Task:
        """Schedule ``coro`` to run; returns its :class:`Task` handle."""
        if not hasattr(coro, "send"):
            raise TypeError(f"create_task needs a coroutine, got {coro!r}")
        task = Task(coro, name or getattr(coro, "__name__", "task"), self)
        self._ready.append((task, None))
        return task

    def future(self) -> Future:
        """A fresh unresolved :class:`Future` bound to this loop."""
        return Future(self)

    def _resume(self, task: Task, value) -> None:
        """Put a parked task back on the ready queue with ``value``."""
        self._ready.append((task, value))

    # -- scheduling ------------------------------------------------------

    def _pop_ready(self) -> tuple[Task, object]:
        """Next ready entry: FIFO, or seeded choice when jittered."""
        if self._rng is not None and len(self._ready) > 1:
            index = int(self._rng.integers(len(self._ready)))
            self._ready.rotate(-index)
            entry = self._ready.popleft()
            self._ready.rotate(index)
            return entry
        return self._ready.popleft()

    def _step(self, task: Task, value) -> None:
        """Advance one task by one suspension point."""
        self.steps += 1
        saved = spans.set_context(task._context)
        self._current = task
        try:
            try:
                yielded = task.coro.send(value)
            except StopIteration as stop:
                task.done = True
                task.result = stop.value
                task._completion.set_result(stop.value)
                return
        finally:
            task._context = spans.set_context(saved)
            self._current = None
        if isinstance(yielded, Future):
            if yielded.done():
                self._ready.append((task, yielded.result()))
            else:
                yielded._waiters.append(task)
        elif isinstance(yielded, _Sleep):
            heapq.heappush(
                self._timers, (self.now + yielded.delay, next(self._seq), task)
            )
        else:
            raise RuntimeError(
                f"task {task.name!r} awaited unsupported {yielded!r} "
                "(only Future, sleep() and Task are awaitable on this loop)"
            )

    def run_until_idle(self, max_steps: int | None = None) -> int:
        """Run until no task is runnable and no timer pending.

        Tasks parked on unresolved futures (e.g. bus consumers waiting
        on empty mailboxes) count as idle.  Virtual time advances to
        each timer deadline as the ready queue empties.  Returns the
        number of task steps executed; raises ``RuntimeError`` if the
        step budget is exhausted (livelock guard).
        """
        budget = self.MAX_STEPS if max_steps is None else int(max_steps)
        executed = 0
        while self._ready or self._timers:
            if not self._ready:
                deadline, _, task = heapq.heappop(self._timers)
                if deadline > self.now:
                    self.now = deadline
                self._ready.append((task, None))
            task, value = self._pop_ready()
            self._step(task, value)
            executed += 1
            if executed > budget:
                raise RuntimeError(
                    f"event loop exceeded {budget} steps without going idle "
                    "(livelock? raise max_steps if the workload is real)"
                )
        return executed

    def run_until_complete(self, coro):
        """Drive ``coro`` (plus anything it spawns) to completion."""
        task = self.create_task(coro, name="run_until_complete")
        self.run_until_idle()
        if not task.done:
            raise RuntimeError(
                f"task {task.name!r} did not complete: it is parked on a "
                "future no remaining task can resolve (deadlock)"
            )
        return task.result

    # -- introspection ---------------------------------------------------

    @property
    def pending_timers(self) -> int:
        """Number of timers not yet fired."""
        return len(self._timers)

    @property
    def ready_count(self) -> int:
        """Number of tasks currently runnable."""
        return len(self._ready)
