"""rApps and xApps (the application layer of Fig. 7).

* :class:`PolicyServiceRApp` (non-RT RIC): translates the learning
  agent's joint decisions into A1 policy instances for the radio knobs
  and direct edge-orchestrator calls for the service knobs.
* :class:`PolicyServiceXApp` (near-RT RIC): enforces A1 policies onto
  the E2 node through RIC Control.
* :class:`KPIDatabaseXApp` (near-RT RIC): subscribes to E2 KPI
  indications, stores them, and forwards them over O1.
* :class:`DataCollectorRApp` (non-RT RIC): receives O1 reports and
  hands consolidated KPI feedback to the learning agent.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.oran.a1 import RADIO_POLICY_TYPE_ID, A1PolicyService
from repro.oran.e2 import E2Termination
from repro.oran.messages import A1PolicyRequest, E2Indication, O1Report
from repro.oran.o1 import O1Termination
from repro.testbed.config import ControlPolicy


class PolicyServiceRApp:
    """Deploys radio policies through A1 (non-RT RIC side).

    The image-resolution and GPU-speed knobs do not traverse A1 (they
    go to the service application and the edge orchestrator, per
    Section 4.2); callbacks allow the SMO wiring to route them.
    """

    def __init__(
        self,
        a1_service,
        policy_id: str = "edgebol-slice-0",
        on_service_policy: Callable[[float, float], None] | None = None,
    ) -> None:
        self.a1_service = a1_service
        self.policy_id = policy_id
        self.on_service_policy = on_service_policy
        self.deployed_policies = 0

    def deploy(self, policy: ControlPolicy) -> None:
        """Push one joint control decision into the system.

        ``a1_service`` may be the in-process
        :class:`~repro.oran.a1.A1PolicyService` (direct call, rejection
        raises here) or a bus-side :class:`~repro.oran.a1.A1Client`
        (the request is published; a rejection raises from the client's
        response handler at the next drain).
        """
        radio = policy.radio_policy()
        request = A1PolicyRequest(
            operation="PUT",
            policy_type_id=RADIO_POLICY_TYPE_ID,
            policy_id=self.policy_id,
            body={"airtime": radio.airtime, "max_mcs": radio.max_mcs},
        )
        handle = getattr(self.a1_service, "handle", None)
        if handle is not None:
            response = handle(request)
            if not response.ok:
                raise RuntimeError(f"A1 policy rejected: {response.body}")
        else:
            self.a1_service.send(request)
        if self.on_service_policy is not None:
            self.on_service_policy(policy.resolution, policy.gpu_speed)
        self.deployed_policies += 1


class PolicyServiceXApp:
    """Enforces A1 policy instances on the E2 node (near-RT RIC side).

    ``policy_id`` scopes the xApp to one policy instance: in the
    multi-cell runtime every cell hosts its own enforcement xApp
    against the *shared* A1 service, and the filter keeps cell A's
    policies off cell B's E2 node.  ``None`` (the single-cell default)
    enforces every instance of the radio policy type.
    """

    def __init__(self, a1_service: A1PolicyService, e2: E2Termination,
                 policy_id: str | None = None) -> None:
        self.e2 = e2
        self.policy_id = policy_id
        self.enforced = 0
        a1_service.register_enforcer(self._on_policy)

    def _on_policy(
        self, policy_type_id: int, policy_id: str, body: dict | None
    ) -> None:
        if policy_type_id != RADIO_POLICY_TYPE_ID or body is None:
            return
        if self.policy_id is not None and policy_id != self.policy_id:
            return
        self.e2.send_control(
            airtime=float(body["airtime"]), max_mcs=int(body["max_mcs"])
        )
        self.enforced += 1


class KPIDatabaseXApp:
    """Stores E2 KPI indications and forwards them over O1."""

    def __init__(
        self, e2: E2Termination, o1: O1Termination, name: str = "kpi-database",
        history_limit: int = 10_000,
    ) -> None:
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self.name = name
        self.o1 = o1
        self.history_limit = history_limit
        self._records: list[E2Indication] = []
        e2.register_indication_handler(self._on_indication)

    @property
    def records(self) -> list[E2Indication]:
        """All KPI indications stored so far (insertion order)."""
        return list(self._records)

    def _on_indication(self, indication: E2Indication) -> None:
        self._records.append(indication)
        if len(self._records) > self.history_limit:
            self._records = self._records[-self.history_limit:]
        self.o1.forward(source=self.name, kpis=indication.kpis)


class DataCollectorRApp:
    """Aggregates O1 KPI reports for the learning agent (non-RT RIC)."""

    def __init__(self, o1: O1Termination) -> None:
        self._latest: dict[str, float] = {}
        self._report_count = 0
        o1.register_handler(self._on_report)

    @property
    def latest_kpis(self) -> dict[str, float]:
        """Most recent value per KPI name."""
        return dict(self._latest)

    @property
    def report_count(self) -> int:
        """Number of O1 reports received."""
        return self._report_count

    def _on_report(self, report: O1Report) -> None:
        self._latest.update(report.kpis)
        self._report_count += 1
