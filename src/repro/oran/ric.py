"""RAN Intelligent Controllers.

Thin composition layers: the near-RT RIC terminates A1 (provider side)
and E2 (consumer side) and hosts xApps; the non-RT RIC hosts rApps and
consumes O1 reports.  The classes mostly wire interfaces together —
the behaviour lives in :mod:`repro.oran.apps`.
"""

from __future__ import annotations

from repro.oran.a1 import A1PolicyService, radio_policy_type
from repro.oran.e2 import E2Termination
from repro.oran.o1 import O1Termination


class NearRTRIC:
    """Near-real-time RIC: A1 provider, E2 consumer, xApp host.

    Works over either bus flavour; ``prefix`` namespaces the RIC's E2
    and O1 topics so several near-RT RICs (one per cell) can share one
    bus.  An existing ``a1_service`` may be injected — the multi-cell
    runtime shares one policy service across every cell's RIC.
    """

    def __init__(self, bus, prefix: str = "",
                 a1_service: A1PolicyService | None = None) -> None:
        self.bus = bus
        self.prefix = prefix
        if a1_service is None:
            a1_service = A1PolicyService()
            a1_service.register_type(radio_policy_type())
        self.a1_service = a1_service
        self.e2 = E2Termination(bus, prefix=prefix)
        self.o1 = O1Termination(bus, prefix=prefix)
        self.xapps: list[object] = []

    def host_xapp(self, xapp: object) -> None:
        """Register a running xApp (already wired to the terminations)."""
        self.xapps.append(xapp)


class NonRTRIC:
    """Non-real-time RIC: rApp host, A1 consumer, O1 consumer."""

    def __init__(self, near_rt: NearRTRIC) -> None:
        self.near_rt = near_rt
        self.o1 = near_rt.o1
        self.rapps: list[object] = []

    def host_rapp(self, rapp: object) -> None:
        """Register a running rApp."""
        self.rapps.append(rapp)

    @property
    def a1_service(self) -> A1PolicyService:
        """The A1-P service exposed by the near-RT RIC."""
        return self.near_rt.a1_service
