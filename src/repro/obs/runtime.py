"""Process-local decision-trace state: sink install, scoping and emit.

Mirrors the :mod:`repro.faults.runtime` / :mod:`repro.telemetry.runtime`
pattern: a *decision sink* is installed process-wide, instrumented code
emits records through :func:`emit`, and with nothing installed every
entry point returns after one attribute check — traced and untraced
runs are bit-identical because tracing never touches an RNG or the
selection path (asserted by ``tests/test_obs.py``).

Typical use::

    from repro.obs import runtime as obs

    with obs.use("results/decisions.jsonl"):
        tracer = obs.make_tracer(agent, oracle_cost=oracle.cost)
        agent.attach_tracer(tracer)
        run_agent(env, agent, n_periods)

Every record carries ``type: "decision"``; when telemetry is also
recording, the same record is fanned to the telemetry sinks via
:func:`repro.telemetry.runtime.emit_record`, so decision lines
interleave with span/metrics lines in one trace file.  Sweep workers
wrap each cell in :func:`scope` so merged traces keep a ``cell`` label.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path

from repro.telemetry import runtime as telemetry
from repro.telemetry.export import JsonlSink

__all__ = [
    "enabled", "install", "uninstall", "use", "scope", "suppress", "emit",
    "current_sink", "make_tracer", "ListSink",
]


class ListSink:
    """Buffer decision records in a plain list (tests, sweep workers)."""

    def __init__(self) -> None:
        """Create an empty sink."""
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        """Append one record."""
        self.records.append(record)

    def close(self) -> None:
        """No-op (memory needs no flushing)."""


class _State:
    """Mutable process-local decision-trace state (one per process)."""

    __slots__ = ("sink", "label", "suppressed")

    def __init__(self) -> None:
        """Start with no sink installed, no scope label, not suppressed."""
        self.sink = None
        self.label: str | None = None
        self.suppressed = False


_STATE = _State()


def enabled() -> bool:
    """Whether a decision sink is currently installed."""
    return _STATE.sink is not None


def install(sink) -> None:
    """Install ``sink`` process-wide (``None`` clears it)."""
    if sink is not None and not hasattr(sink, "emit"):
        raise TypeError(f"sink must expose emit(record), got {sink!r}")
    _STATE.sink = sink


def uninstall() -> None:
    """Clear any installed sink (no-op when none is active)."""
    install(None)


def current_sink():
    """The installed decision sink, or ``None``.

    Lets callers that add their own sink (e.g. the fleet spec's
    ``--metrics`` store) tee records to whatever sink an outer scope
    installed instead of shadowing it.
    """
    return _STATE.sink


@contextmanager
def use(sink_or_path):
    """Install a decision sink for the duration of the block.

    ``sink_or_path`` may be a path (a :class:`JsonlSink` is created and
    closed on exit) or any object with ``emit(record)``.  The previous
    sink is reinstated on exit so nested scopes compose; the sink is
    the yielded value.
    """
    if isinstance(sink_or_path, (str, Path)):
        sink = JsonlSink(sink_or_path)
        owned = True
    else:
        sink = sink_or_path
        owned = False
    previous = _STATE.sink
    install(sink)
    try:
        yield sink
    finally:
        _STATE.sink = previous
        if owned:
            sink.close()


@contextmanager
def scope(label: str):
    """Attach ``label`` as the ``cell`` field of records in the block.

    Sweep workers wrap each cell's run so the parent can merge per-cell
    traces into one file without losing provenance.
    """
    previous = _STATE.label
    _STATE.label = str(label)
    try:
        yield
    finally:
        _STATE.label = previous


@contextmanager
def suppress():
    """Drop records emitted inside the block (sink stays installed).

    The fleet supervisor wraps crash-recovery *replay* of periods that
    were already emitted before the crash: the tracer still runs (its
    streaming state must advance identically to the uninterrupted run)
    but re-emitting would duplicate those periods in the trace.
    """
    previous = _STATE.suppressed
    _STATE.suppressed = True
    try:
        yield
    finally:
        _STATE.suppressed = previous


def emit(record: dict) -> None:
    """Emit one decision record — no-op while no sink is installed.

    The record gains ``type: "decision"`` (and the active :func:`scope`
    label as ``cell``), goes to the installed sink, and is mirrored to
    any recording telemetry sinks so one JSONL can interleave decisions
    with spans and metrics.  Inside a :func:`suppress` block the record
    is dropped.
    """
    sink = _STATE.sink
    if sink is None or _STATE.suppressed:
        return
    full = {"type": "decision"}
    if _STATE.label is not None:
        full["cell"] = _STATE.label
    full.update(record)
    sink.emit(full)
    telemetry.emit_record(full)


def make_tracer(agent, oracle_cost: float | None = None,
                label: str | None = None):
    """A :class:`~repro.obs.decision.DecisionTracer` for ``agent``, or None.

    Returns ``None`` when no sink is installed (the untraced hot path:
    the agent keeps its ``tracer is None`` fast checks) or when the
    agent does not support tracing (no ``attach_tracer``).  ``label``
    stamps an ``agent`` field on every record, for callers tracing
    several agents into one sink.  The import is deferred so this
    module stays cheap for untraced callers.
    """
    if not enabled() or not hasattr(agent, "attach_tracer"):
        return None
    from repro.obs.decision import DecisionTracer

    return DecisionTracer(agent, oracle_cost=oracle_cost, label=label)
