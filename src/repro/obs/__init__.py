"""Decision-trace observability for EdgeBOL runs.

The safe-BO loop makes one irreversible choice per orchestration period;
this package records *why*.  A :class:`~repro.obs.decision.DecisionTracer`
attached to an agent emits one ``type: "decision"`` JSONL record per
round — safe-set size, constraint margins, price of safety, running GP
calibration, context drift, quarantine/degraded state and regret —
through the process-local sink of :mod:`repro.obs.runtime`, reusing the
posteriors the agent already computed (no extra ``predict`` calls, no
RNG draws: traced runs are bit-identical to untraced ones).

``repro diagnose trace.jsonl`` (:mod:`repro.obs.diagnose`) renders the
trace as an ASCII dashboard and derives machine-readable anomaly flags.
See ``docs/OBSERVABILITY.md`` ("Decision traces").
"""

from repro.obs.decision import DecisionTracer
from repro.obs.diagnose import (
    detect_anomalies,
    diagnose_path,
    load_decisions,
    render_dashboard,
    split_events,
)
from repro.obs.drift import DriftMonitor
from repro.obs.runtime import (
    ListSink,
    emit,
    enabled,
    install,
    make_tracer,
    scope,
    suppress,
    uninstall,
    use,
)

__all__ = [
    "DecisionTracer",
    "DriftMonitor",
    "ListSink",
    "detect_anomalies",
    "diagnose_path",
    "emit",
    "enabled",
    "install",
    "load_decisions",
    "make_tracer",
    "render_dashboard",
    "scope",
    "split_events",
    "suppress",
    "uninstall",
    "use",
]
