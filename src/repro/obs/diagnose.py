"""Offline analysis of decision traces: anomaly flags and a dashboard.

``repro diagnose trace.jsonl`` loads the ``type: "decision"`` lines a
traced run emitted (:mod:`repro.obs.decision`) and renders an ASCII
dashboard — safe-set growth, running calibration coverage against its
nominal level, constraint-margin histograms, a per-period event
timeline and the regret curve — plus machine-readable anomaly flags:

* ``coverage_below_nominal`` — a head's running z-score coverage ended
  materially below the calibrated level (the "GP certifies unsafe
  controls" alarm);
* ``persistent_negative_margin`` — the chosen control carried negative
  certified slack on a constraint for several consecutive periods;
* ``drift_episode`` — the context-drift monitor flagged a run of
  out-of-distribution contexts;
* ``degraded_stretch`` — consecutive periods served by the S0 fallback;
* ``recovery_storm`` — one cell was warm-restarted by the fleet
  supervisor more than ``storm_threshold`` times within
  ``storm_window`` periods (a crash-looping cell that the quarantine
  escalation has not yet caught).

Supervised fleet runs interleave *supervision events* (records with an
``event`` field: ``cell_crash``, ``cell_stall``, ``recovery``,
``quarantine``, ``breaker_open``/``breaker_close``,
``snapshot_corrupt`` — :mod:`repro.oran.supervisor`) with the
per-period decision records; the analysis partitions them, overlays
``R`` (restart/recovery) and ``C`` (circuit breaker) markers on the
timeline and summarises the event counts in the dashboard.

Flags are plain dicts (``kind`` plus location fields) so CI can gate
on them; the dashboard embeds the same list in human form.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.utils.ascii import render_chart, render_histogram, render_table

#: Tolerated gap between running and nominal coverage before flagging.
DEFAULT_COVERAGE_SLACK = 0.10
#: Calibration sample size below which coverage is not judged.
DEFAULT_MIN_CALIBRATION_N = 20
#: Consecutive negative-margin periods before flagging.
DEFAULT_MARGIN_RUN = 5
#: Sliding window (periods) for the recovery-storm detector.
DEFAULT_STORM_WINDOW = 20
#: Restarts within the window above which a storm is flagged.
DEFAULT_STORM_THRESHOLD = 3


def split_events(records: list[dict]) -> tuple[list[dict], list[dict]]:
    """Partition a trace into ``(periods, events)``.

    Supervision events (:mod:`repro.oran.supervisor`) carry an
    ``event`` field; everything else is a per-period decision record.
    """
    periods = [r for r in records if "event" not in r]
    events = [r for r in records if "event" in r]
    return periods, events


def load_decisions(path: "str | Path") -> list[dict]:
    """The ``type: "decision"`` records of a JSONL trace, in order.

    Blank lines and other record types (spans, metrics) are skipped, so
    a combined telemetry+decision trace loads the same as a pure one;
    a malformed JSON line raises ``ValueError`` naming the line number.
    """
    records: list[dict] = []
    with Path(path).open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: invalid JSON in trace ({exc})"
                ) from exc
            if isinstance(record, dict) and record.get("type") == "decision":
                records.append(record)
    return records


def _runs(flags: "list[bool]") -> list[tuple[int, int]]:
    """Half-open ``(start, end)`` index ranges of consecutive True."""
    runs: list[tuple[int, int]] = []
    start = None
    for i, flag in enumerate(flags):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            runs.append((start, i))
            start = None
    if start is not None:
        runs.append((start, len(flags)))
    return runs


def _margin(record: dict, key: str) -> "float | None":
    margins = record.get("margins") or {}
    value = margins.get(key)
    return float(value) if isinstance(value, (int, float)) else None


def _recovery_storms(events: list[dict], storm_window: int,
                     storm_threshold: int) -> list[dict]:
    """``recovery_storm`` flags: per cell, densest restart window."""
    by_agent: dict[str, list[int]] = {}
    for event in events:
        if event.get("event") == "recovery":
            agent = str(event.get("agent", "?"))
            by_agent.setdefault(agent, []).append(int(event.get("t", 0)))
    flags = []
    for agent, ts in sorted(by_agent.items()):
        ts.sort()
        best = None
        for i in range(len(ts)):
            j = i
            while j + 1 < len(ts) and ts[j + 1] - ts[i] < storm_window:
                j += 1
            count = j - i + 1
            if count > storm_threshold and (best is None or count > best[0]):
                best = (count, ts[i], ts[j])
        if best is not None:
            flags.append({
                "kind": "recovery_storm",
                "agent": agent,
                "restarts": best[0],
                "window": int(storm_window),
                "start_t": best[1],
                "end_t": best[2],
            })
    return flags


def detect_anomalies(
    records: list[dict],
    coverage_slack: float = DEFAULT_COVERAGE_SLACK,
    min_calibration_n: int = DEFAULT_MIN_CALIBRATION_N,
    margin_run: int = DEFAULT_MARGIN_RUN,
    storm_window: int = DEFAULT_STORM_WINDOW,
    storm_threshold: int = DEFAULT_STORM_THRESHOLD,
) -> list[dict]:
    """Machine-readable anomaly flags over one trace (see module doc).

    Every flag carries the run's ``numerics_mode`` (when the trace
    recorded one) so sparse-approximation artefacts are attributable:
    a flag appearing only under ``"sparse"`` and not under ``"dense"``
    for the same seed points at the observation budget, not the
    learner.
    """
    flags: list[dict] = []
    if not records:
        return flags
    records, events = split_events(records)
    flags.extend(_recovery_storms(events, storm_window, storm_threshold))
    if not records:
        return flags
    final = records[-1]
    numerics_mode = final.get("numerics_mode")

    def _flag(payload: dict) -> dict:
        if numerics_mode is not None:
            payload["numerics_mode"] = numerics_mode
        return payload

    for head, snap in sorted((final.get("calibration") or {}).items()):
        coverage, expected = snap.get("coverage"), snap.get("expected")
        if (
            isinstance(coverage, (int, float))
            and isinstance(expected, (int, float))
            and snap.get("n", 0) >= min_calibration_n
            and coverage < expected - coverage_slack
        ):
            flags.append(_flag({
                "kind": "coverage_below_nominal",
                "head": head,
                "coverage": float(coverage),
                "expected": float(expected),
                "n": int(snap["n"]),
            }))

    for key, constraint in (("delay_slack_s", "delay"), ("map_slack", "map")):
        negative = [
            (m := _margin(record, key)) is not None and m < 0.0
            for record in records
        ]
        for start, end in _runs(negative):
            if end - start >= margin_run:
                flags.append(_flag({
                    "kind": "persistent_negative_margin",
                    "constraint": constraint,
                    "start_t": int(records[start].get("t", start)),
                    "end_t": int(records[end - 1].get("t", end - 1)),
                    "length": end - start,
                }))

    drifting = [
        bool((record.get("drift") or {}).get("flag")) for record in records
    ]
    for start, end in _runs(drifting):
        scores = [
            s for record in records[start:end]
            if isinstance(s := (record.get("drift") or {}).get("score"),
                          (int, float))
        ]
        flags.append(_flag({
            "kind": "drift_episode",
            "start_t": int(records[start].get("t", start)),
            "end_t": int(records[end - 1].get("t", end - 1)),
            "length": end - start,
            "peak_score": float(max(scores)) if scores else None,
        }))

    degraded = [bool(record.get("degraded")) for record in records]
    for start, end in _runs(degraded):
        flags.append(_flag({
            "kind": "degraded_stretch",
            "start_t": int(records[start].get("t", start)),
            "end_t": int(records[end - 1].get("t", end - 1)),
            "length": end - start,
        }))
    return flags


def _timeline(records: list[dict], width: int = 72,
              events: "list[dict] | None" = None) -> str:
    """One character per period: the worst event that round.

    ``R`` supervisor restart/recovery, ``C`` circuit breaker
    opened/closed, ``D`` degraded, ``Q`` quarantined, ``V`` constraint
    violation, ``!`` drift flag, ``.`` clean — wrapped at ``width``
    columns with period offsets on the left.  Supervision markers are
    matched to period records by ``(agent, t)``.
    """
    recovered = set()
    breaker = set()
    for event in events or ():
        key = (event.get("agent"), event.get("t"))
        if event.get("event") in ("recovery", "cell_crash", "cell_stall"):
            recovered.add(key)
        elif event.get("event") in ("breaker_open", "breaker_close"):
            breaker.add(key)
    chars = []
    for record in records:
        outcome = record.get("outcome") or {}
        key = (record.get("agent"), record.get("t"))
        if key in recovered:
            chars.append("R")
        elif key in breaker:
            chars.append("C")
        elif record.get("degraded"):
            chars.append("D")
        elif record.get("quarantined"):
            chars.append("Q")
        elif outcome.get("delay_violation") or outcome.get("map_violation"):
            chars.append("V")
        elif (record.get("drift") or {}).get("flag"):
            chars.append("!")
        else:
            chars.append(".")
    label_w = len(str(len(chars)))
    lines = []
    for start in range(0, len(chars), width):
        lines.append(
            f"t={str(start).rjust(label_w)}  "
            + "".join(chars[start:start + width])
        )
    lines.append("legend: R restart  C breaker  D degraded  "
                 "Q quarantined  V violation  ! drift  . clean")
    return "\n".join(lines)


def _series(records: list[dict], getter) -> list[float]:
    values = []
    for record in records:
        value = getter(record)
        values.append(
            float(value) if isinstance(value, (int, float)) else float("nan")
        )
    return values


def render_dashboard(records: list[dict],
                     anomalies: "list[dict] | None" = None) -> str:
    """The full ASCII dashboard over one trace (string, print-ready)."""
    if not records:
        return "decision trace is empty — nothing to diagnose"
    if anomalies is None:
        anomalies = detect_anomalies(records)
    records, events = split_events(records)
    if not records:
        lines = ["trace holds supervision events only (no decision records):"]
        lines += [f"  - {json.dumps(e, sort_keys=True)}" for e in events]
        return "\n".join(lines)
    final = records[-1]
    outcome_costs = _series(
        records, lambda r: (r.get("outcome") or {}).get("cost")
    )
    sections = []

    robustness = final.get("robustness") or {}
    grid = (final.get("safe_set") or {}).get("grid")
    sections.append(render_table(
        ["periods", "numerics", "grid", "violations", "quarantined",
         "degraded", "drift episodes", "mean cost"],
        [[
            len(records),
            final.get("numerics_mode") or "?",
            grid if grid is not None else "?",
            sum(
                1 for r in records
                if (r.get("outcome") or {}).get("delay_violation")
                or (r.get("outcome") or {}).get("map_violation")
            ),
            robustness.get("quarantined", 0),
            robustness.get("degraded_periods", 0),
            sum(1 for a in anomalies if a["kind"] == "drift_episode"),
            float(np.nanmean(outcome_costs)),
        ]],
    ))

    # Records replayed from the content-addressed experiment store are
    # stamped `store_hit` by the sweep engine — surface the split so a
    # reader knows which periods were recomputed vs served from cache.
    n_store = sum(1 for r in records if r.get("store_hit"))
    if n_store:
        sections.append(
            f"{n_store}/{len(records)} records replayed from the "
            f"experiment store (store_hit; see docs/STORE.md)"
        )

    if events:
        counts: dict[str, int] = {}
        for event in events:
            name = str(event.get("event"))
            counts[name] = counts.get(name, 0) + 1
        summary = "  ".join(
            f"{name}={n}" for name, n in sorted(counts.items())
        )
        sections.append(
            f"Supervision events ({len(events)}): {summary} "
            f"(see docs/ROBUSTNESS.md, \"Fleet resilience\")"
        )

    sections.append(render_chart(
        {"safe fraction": _series(
            records, lambda r: (r.get("safe_set") or {}).get("fraction")
        )},
        title="Safe-set fraction of the control grid per period",
        height=10,
    ))

    coverage_series = {}
    for head in sorted(final.get("calibration") or {}):
        coverage_series[head] = _series(
            records,
            lambda r, h=head: (r.get("calibration") or {})
            .get(h, {}).get("coverage"),
        )
    if coverage_series:
        expected = (final["calibration"][next(iter(coverage_series))]
                    .get("expected"))
        if isinstance(expected, (int, float)):
            coverage_series["nominal"] = [float(expected)] * len(records)
        sections.append(render_chart(
            coverage_series,
            title="Running z-score coverage per head (vs nominal)",
            height=10,
        ))

    for key, title in (
        ("delay_slack_s", "Certified delay slack of chosen control (s)"),
        ("map_slack", "Certified mAP slack of chosen control"),
    ):
        values = [m for r in records if (m := _margin(r, key)) is not None]
        if values:
            sections.append(render_histogram(values, title=title))

    sections.append(
        "Event timeline (one char per period)\n"
        + _timeline(records, events=events)
    )

    regret = _series(
        records, lambda r: (r.get("regret") or {}).get("cumulative")
    )
    if np.isfinite(regret).any():
        sections.append(render_chart(
            {"cumulative regret": regret},
            title="Cumulative regret vs oracle (cost units)",
            height=10,
        ))

    if anomalies:
        lines = ["Anomaly flags:"]
        lines += [f"  - {json.dumps(flag, sort_keys=True)}"
                  for flag in anomalies]
        sections.append("\n".join(lines))
    else:
        sections.append("Anomaly flags: none")

    return "\n\n".join(sections)


def diagnose_path(path: "str | Path") -> tuple[str, list[dict]]:
    """Load, flag and render one trace: ``(dashboard_text, anomalies)``."""
    records = load_decisions(path)
    anomalies = detect_anomalies(records)
    return render_dashboard(records, anomalies=anomalies), anomalies


def diagnose_directory(path: "str | Path") -> tuple[str, list[dict]]:
    """Aggregate a directory of per-cell traces: ``(summary, flags)``.

    Fleet runs and sweep workers leave one trace per cell; pointing
    ``repro diagnose`` at the directory loads every ``*.jsonl`` inside
    (sorted, non-recursive), flags each independently, and stamps every
    flag with its ``source`` file so a reader can jump to the cell's
    own dashboard.  Raises ``ValueError`` when the directory holds no
    ``*.jsonl`` files.
    """
    directory = Path(path)
    files = sorted(directory.glob("*.jsonl"))
    if not files:
        raise ValueError(f"{directory}: no *.jsonl traces found")
    rows = []
    all_flags: list[dict] = []
    for file in files:
        records = load_decisions(file)
        periods, events = split_events(records)
        flags = detect_anomalies(records)
        for flag in flags:
            flag["source"] = file.name
        all_flags.extend(flags)
        kinds: dict[str, int] = {}
        for flag in flags:
            kinds[flag["kind"]] = kinds.get(flag["kind"], 0) + 1
        rows.append([
            file.name, len(periods), len(events), len(flags),
            ", ".join(f"{k}={n}" for k, n in sorted(kinds.items())) or "-",
        ])
    sections = [
        f"diagnosed {len(files)} trace(s) in {directory}",
        render_table(["trace", "periods", "events", "flags", "kinds"], rows),
    ]
    if all_flags:
        lines = [f"Anomaly flags ({len(all_flags)}):"]
        lines += [f"  - {json.dumps(flag, sort_keys=True)}"
                  for flag in all_flags]
        sections.append("\n".join(lines))
    else:
        sections.append("Anomaly flags: none")
    sections.append(
        "run 'repro diagnose <trace>' on one file for its full dashboard"
    )
    return "\n\n".join(sections), all_flags
