"""Per-round decision records for EdgeBOL runs.

A :class:`DecisionTracer` attaches to an :class:`~repro.core.edgebol.EdgeBOL`
agent (``agent.attach_tracer(tracer)``) and assembles one structured
record per orchestration period, answering *why* the learner picked the
control it picked:

* how large the certified safe set was (count and grid fraction);
* how much eq.-8 slack the chosen control had on each constraint
  (delay/mAP LCB-UCB margins, via
  :meth:`~repro.core.safeset.SafeSetEstimator.margins_from_batch`);
* what safety cost the acquisition paid — the gap between the chosen
  safe LCB and the unconstrained LCB minimiser ("price of safety");
* whether the surrogates' confidence intervals are holding up —
  streaming one-step-ahead z-score coverage per head
  (:class:`~repro.core.diagnostics.RunningCalibration`);
* whether the context distribution drifted
  (:class:`~repro.obs.drift.DriftMonitor`);
* the robustness state inherited from the fault layer (quarantine and
  degraded-mode counters), and regret against an oracle cost when one
  is known.

Everything is computed from the :class:`~repro.core.posterior.PosteriorBatch`
the agent *already evaluated* to make its decision — tracing issues no
extra ``predict`` calls and never touches an RNG, so a traced run's
KPIs are bit-identical to an untraced same-seed run.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.diagnostics import RunningCalibration, standardised_errors
from repro.obs import runtime as obs_runtime
from repro.obs.drift import DriftMonitor


def _finite(value: float) -> "float | None":
    """``float(value)`` or ``None`` when non-finite (JSON-friendly)."""
    value = float(value)
    return value if math.isfinite(value) else None


class DecisionTracer:
    """Assemble and emit one decision record per orchestration period.

    Parameters
    ----------
    agent:
        The :class:`~repro.core.edgebol.EdgeBOL` instance being traced
        (the tracer reads its safe-set estimator, surrogates and
        constraints; it never mutates the agent).
    oracle_cost:
        Per-period cost of a clairvoyant constant oracle, when known;
        enables the ``regret`` block of each record.
    calibration_z:
        Interval half-width monitored by the per-head running
        calibration (2.0 matches ``core.diagnostics`` defaults).
    drift:
        Optional preconfigured :class:`DriftMonitor` (a default one is
        created otherwise).
    label:
        Optional ``agent`` field stamped on every record —
        distinguishes co-traced agents (e.g. the per-slice agents of
        the multiservice experiment) sharing one sink.
    """

    def __init__(
        self,
        agent,
        oracle_cost: float | None = None,
        calibration_z: float = 2.0,
        drift: DriftMonitor | None = None,
        label: str | None = None,
    ) -> None:
        """Bind to ``agent`` with fresh calibration/drift state."""
        self.agent = agent
        self.oracle_cost = None if oracle_cost is None else float(oracle_cost)
        self.label = None if label is None else str(label)
        self.drift = drift if drift is not None else DriftMonitor()
        self.calibration = {
            head: RunningCalibration(z=calibration_z)
            for head in agent.head_surrogates()
        }
        self._t = 0
        self._pending: dict | None = None
        self._cumulative_regret = 0.0
        self._emitted = 0
        self._violations = 0
        self._quarantined_rounds = 0
        self._degraded_rounds = 0

    # -- hooks called by EdgeBOL ------------------------------------------

    def on_select(self, context, batch, mask, index: int) -> None:
        """Capture the decision-time evidence of one healthy period.

        Called by :meth:`EdgeBOL.select` after the safe set and the
        acquisition have run, with the period's engine sweep ``batch``,
        the eq.-8 ``mask`` and the chosen grid ``index``.
        """
        agent = self.agent
        mask = np.asarray(mask, dtype=bool)
        safe_size = int(np.count_nonzero(mask))
        grid_size = int(mask.size)
        delay_slack, map_slack = agent._safe_estimator.margins_from_batch(
            batch,
            d_max_s=agent.constraints.d_max_s,
            rho_min=agent.constraints.rho_min,
        )
        lcb = agent.cost_lcb_values(batch)
        best_index = int(np.argmin(lcb))
        chosen_lcb = float(lcb[index])
        best_lcb = float(lcb[best_index])
        context_array = agent._context_array(context)
        predicted = {
            head: (float(batch.mean(head)[index]),
                   float(batch.variance(head)[index]))
            for head in batch.heads
        }
        self._pending = {
            "degraded": False,
            "context": [float(v) for v in context_array],
            "chosen_index": int(index),
            "control": [float(v) for v in batch.joint_grid[index][-4:]],
            "joint_row": np.array(batch.joint_grid[index], dtype=float),
            "safe_set": {
                "size": safe_size,
                "grid": grid_size,
                "fraction": safe_size / grid_size,
            },
            "margins": {
                "delay_slack_s": _finite(delay_slack[index]),
                "map_slack": _finite(map_slack[index]),
            },
            "acquisition": {
                "chosen_lcb": _finite(chosen_lcb),
                "best_lcb": _finite(best_lcb),
                "best_index": best_index,
                "price_of_safety": _finite(chosen_lcb - best_lcb),
            },
            "predicted": predicted,
            "drift": self._drift_record(context_array),
        }

    def on_degraded(self, context) -> None:
        """Capture one degraded (S0-fallback) period.

        No engine sweep exists, so the record carries only the context,
        the forced S0 choice and the drift state.
        """
        agent = self.agent
        context_array = agent._context_array(context)
        self._pending = {
            "degraded": True,
            "context": [float(v) for v in context_array],
            "chosen_index": int(agent.s0_index),
            "control": [
                float(v) for v in agent.control_grid[agent.s0_index]
            ],
            "joint_row": None,
            "safe_set": {
                "size": 1,
                "grid": int(agent.control_grid.shape[0]),
                "fraction": 1.0 / agent.control_grid.shape[0],
            },
            "margins": {"delay_slack_s": None, "map_slack": None},
            "acquisition": None,
            "predicted": {},
            "drift": self._drift_record(context_array),
        }

    def on_observe(self, context, policy, observation, cost: float,
                   quarantine_reason: str | None) -> None:
        """Complete and emit the period's record after feedback arrives."""
        agent = self.agent
        pending = self._pending if self._pending is not None else {
            # select() was bypassed (direct observe in a test): emit a
            # minimal record rather than dropping the period.
            "degraded": False,
            "context": [float(v) for v in agent._context_array(context)],
            "chosen_index": None,
            "control": [float(v) for v in policy.to_array()],
            "joint_row": None,
            "safe_set": None,
            "margins": {"delay_slack_s": None, "map_slack": None},
            "acquisition": None,
            "predicted": {},
            "drift": self._drift_record(agent._context_array(context)),
        }
        self._pending = None
        joint_row = pending.pop("joint_row")
        predicted = pending.pop("predicted")

        delay_s = float(observation.delay_s)
        map_score = float(observation.map_score)
        d_max = float(agent.constraints.d_max_s)
        rho_min = float(agent.constraints.rho_min)
        delay_violation = bool(not (delay_s <= d_max))
        map_violation = bool(not (map_score >= rho_min))
        if delay_violation or map_violation:
            self._violations += 1
        if quarantine_reason is not None:
            self._quarantined_rounds += 1
        if pending["degraded"]:
            self._degraded_rounds += 1

        clean = quarantine_reason is None and not pending["degraded"]
        if clean and joint_row is not None:
            self._update_calibration(
                joint_row, predicted, observation, cost, agent
            )

        regret = None
        if self.oracle_cost is not None:
            instant = _finite(cost)
            if instant is not None:
                instant = max(instant - self.oracle_cost, 0.0)
                self._cumulative_regret += instant
            regret = {
                "instant": instant,
                "cumulative": self._cumulative_regret,
            }

        record = {
            "t": self._t,
            **({"agent": self.label} if self.label is not None else {}),
            # Active numerics mode (dense/batched/sparse...): lets
            # `repro diagnose` attribute anomalies to sparse
            # approximation error rather than the learner itself.
            "numerics_mode": getattr(agent, "numerics_mode", None),
            **pending,
            "predicted": {
                head: {"mean": _finite(mu), "std": _finite(math.sqrt(var))}
                for head, (mu, var) in predicted.items()
            },
            "calibration": {
                head: self._clean_snapshot(cal)
                for head, cal in self.calibration.items()
            },
            "gp": {
                head: {
                    "n": int(gp.n_observations),
                    "noise_variance": float(gp.noise_variance),
                    "output_scale": float(gp.kernel.output_scale),
                }
                for head, gp in agent.head_surrogates().items()
            },
            "quarantined": quarantine_reason,
            "outcome": {
                "cost": _finite(cost),
                "delay_s": _finite(delay_s),
                "map_score": _finite(map_score),
                "d_max_s": d_max,
                "rho_min": rho_min,
                "delay_violation": delay_violation,
                "map_violation": map_violation,
            },
            "regret": regret,
            "robustness": agent.robustness_stats(),
        }
        obs_runtime.emit(record)
        self._emitted += 1
        self._t += 1

    # -- internals ---------------------------------------------------------

    def _drift_record(self, context_array: np.ndarray) -> dict:
        result = self.drift.update(context_array)
        return {
            "flag": bool(result["flag"]),
            "score": _finite(result["score"]),
            "dim": result["dim"],
        }

    def _update_calibration(self, joint_row, predicted, observation,
                            cost, agent) -> None:
        """Fold one period's one-step-ahead z-scores into the tallies.

        The posterior moments are the ones captured at select time
        (before the GP update that follows this observation), so the
        score is genuinely predictive; the helper delegates to
        :func:`~repro.core.diagnostics.standardised_errors` with the
        precomputed posterior — no ``predict`` call.
        """
        targets = {
            "cost": float(cost),
            "delay": float(np.clip(observation.delay_s, 0.0,
                                   agent._delay_clip)),
            "map": float(np.clip(observation.map_score, 0.0, 1.0)),
            "server_power": float(observation.server_power_w),
            "bs_power": float(observation.bs_power_w),
        }
        surrogates = agent.head_surrogates()
        for head, (mu, var) in predicted.items():
            target = targets.get(head)
            cal = self.calibration.get(head)
            if target is None or cal is None or not math.isfinite(target):
                continue
            error = standardised_errors(
                surrogates[head],
                joint_row,
                np.array([target]),
                posterior=(np.array([mu]), np.array([var])),
            )[0]
            if math.isfinite(error):
                cal.update(float(error))

    @staticmethod
    def _clean_snapshot(cal: RunningCalibration) -> dict:
        snap = cal.snapshot()
        for key in ("coverage", "error_mean", "error_std"):
            snap[key] = _finite(snap[key])
        return snap

    # -- run-level summary -------------------------------------------------

    def summary(self) -> dict:
        """JSON-ready run-level roll-up for the run log.

        Mirrors what the per-record stream already says, collapsed to
        one dict: period/violation/quarantine/degraded counts, drift
        episodes, final per-head coverage and the cumulative regret
        (``None`` when no oracle cost was supplied).
        """
        return {
            "periods": self._t,
            "records": self._emitted,
            "violations": self._violations,
            "quarantined_rounds": self._quarantined_rounds,
            "degraded_rounds": self._degraded_rounds,
            "drift_episodes": self.drift.episodes,
            "coverage": {
                head: _finite(cal.coverage)
                for head, cal in self.calibration.items()
            },
            "cumulative_regret": (
                self._cumulative_regret
                if self.oracle_cost is not None else None
            ),
        }
