"""Context-drift detection for the decision-trace layer.

EdgeBOL's surrogates condition on the observed context ``c_t``; a
sudden shift of the context distribution (a flash crowd, a channel
collapse) invalidates the locality assumptions behind the kernel
lengthscales long before the safe set reacts.  :class:`DriftMonitor`
watches the *stream* of normalised context vectors and flags periods
whose context is a statistical outlier against a rolling window — a
cheap, dependency-free mean/variance shift detector in the spirit of
the self-adaptation monitors of Tundo et al.

The monitor is deliberately side-effect free (it never touches an RNG
and never feeds back into the agent): it only annotates decision
records, so traced and untraced runs stay bit-identical.
"""

from __future__ import annotations

from collections import deque

import numpy as np

#: Absolute floor on the rolling std, in normalised context units.
#: Contexts are CQI-quantised, so a window can be exactly constant; the
#: floor keeps the z-score finite and calibrated to "a visible jump on
#: a [0, 1] axis" rather than to numerical dust.
_STD_FLOOR = 1e-2


class DriftMonitor:
    """Rolling mean/variance shift detector over the context stream.

    Each period, the incoming context vector is z-scored against the
    mean and standard deviation of the trailing ``window`` contexts
    (per dimension, *before* the new vector enters the window).  A
    period is flagged as drift when the largest per-dimension |z|
    exceeds ``z_threshold``.  The first ``min_periods`` contexts only
    warm the window and are never flagged.

    Parameters
    ----------
    window:
        Trailing contexts retained as the reference distribution.
    z_threshold:
        Flagging threshold on the max per-dimension |z-score|.
    min_periods:
        Contexts required before the detector arms.
    """

    def __init__(self, window: int = 30, z_threshold: float = 4.0,
                 min_periods: int = 8) -> None:
        """Create an armed-after-warmup monitor with an empty window."""
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if z_threshold <= 0:
            raise ValueError(f"z_threshold must be positive, got {z_threshold}")
        if min_periods < 2:
            raise ValueError(f"min_periods must be >= 2, got {min_periods}")
        self.window = int(window)
        self.z_threshold = float(z_threshold)
        self.min_periods = int(min_periods)
        self._contexts: deque[np.ndarray] = deque(maxlen=self.window)
        self._episodes = 0
        self._in_episode = False

    @property
    def episodes(self) -> int:
        """Completed-or-ongoing runs of consecutive flagged periods."""
        return self._episodes

    def update(self, context: np.ndarray) -> dict:
        """Score one context vector and absorb it into the window.

        Returns a JSON-ready dict: ``flag`` (drift detected), ``score``
        (max per-dimension |z|, NaN while warming up) and ``dim`` (the
        offending dimension index, or None).
        """
        arr = np.asarray(context, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("context must be non-empty")
        if self._contexts and self._contexts[0].size != arr.size:
            raise ValueError(
                f"context dimension changed from {self._contexts[0].size} "
                f"to {arr.size}"
            )
        if len(self._contexts) < self.min_periods:
            self._contexts.append(arr)
            self._in_episode = False
            return {"flag": False, "score": float("nan"), "dim": None}
        history = np.stack(self._contexts)
        mean = history.mean(axis=0)
        std = np.maximum(history.std(axis=0), _STD_FLOOR)
        z = np.abs(arr - mean) / std
        dim = int(np.argmax(z))
        score = float(z[dim])
        flag = score > self.z_threshold
        if flag and not self._in_episode:
            self._episodes += 1
        self._in_episode = flag
        self._contexts.append(arr)
        return {"flag": flag, "score": score, "dim": dim if flag else None}
