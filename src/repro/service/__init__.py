"""Mobile video analytics (MVA) service substrate.

Replaces the Detectron2-on-COCO object-recognition service of the paper
with (i) a synthetic COCO-like image/ground-truth generator, (ii) a
resolution-sensitive synthetic detector, and (iii) a *real* mAP
evaluator (greedy IoU matching, PR-curve average precision, mean over
classes) identical in definition to the paper's Performance Indicator 2.
"""

from repro.service.detection import (
    Detection,
    GroundTruthObject,
    SyntheticDetector,
    average_precision,
    evaluate_map,
    iou,
)
from repro.service.dataset_io import (
    load_profiling_dataset,
    save_profiling_dataset,
)
from repro.service.images import ImageSpec, SyntheticCocoDataset, encoded_bits
from repro.service.profiles import expected_map, map_observation_std
from repro.service.pipeline import ServiceModel, UserEquipment

__all__ = [
    "Detection",
    "GroundTruthObject",
    "SyntheticDetector",
    "average_precision",
    "evaluate_map",
    "iou",
    "load_profiling_dataset",
    "save_profiling_dataset",
    "ImageSpec",
    "SyntheticCocoDataset",
    "encoded_bits",
    "expected_map",
    "map_observation_std",
    "ServiceModel",
    "UserEquipment",
]
