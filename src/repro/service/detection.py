"""Object detection: synthetic detector and a real mAP evaluator.

The evaluator implements Performance Indicator 2 of the paper exactly as
defined there: a detection is a true positive when its IoU with an
unmatched ground-truth box of the same class is at least the threshold
(0.5); per-class Average Precision is the area under the
precision-recall curve (all-points interpolation, as in PASCAL VOC
2010+ / COCO); mAP is the mean over classes.

Only the *detector output* is synthetic: detection probability degrades
with lower resolution and smaller objects, localisation noise grows as
resolution drops, and false positives appear at a resolution-dependent
rate — the qualitative behaviour of Faster R-CNN on downscaled input.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction

Box = tuple[float, float, float, float]


@dataclass(frozen=True)
class GroundTruthObject:
    """An annotated object: category, box (x, y, w, h) and size bucket."""

    class_id: int
    bbox: Box
    size_bucket: str = "medium"

    def __post_init__(self) -> None:
        x, y, w, h = self.bbox
        if w <= 0 or h <= 0:
            raise ValueError(f"bbox must have positive extent, got {self.bbox}")


@dataclass(frozen=True)
class Detection:
    """A detector output: category, box (x, y, w, h) and confidence."""

    class_id: int
    bbox: Box
    score: float

    def __post_init__(self) -> None:
        x, y, w, h = self.bbox
        if w <= 0 or h <= 0:
            raise ValueError(f"bbox must have positive extent, got {self.bbox}")
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"score must be in [0, 1], got {self.score}")


def iou(box_a: Box, box_b: Box) -> float:
    """Intersection-over-Union of two (x, y, w, h) boxes."""
    ax, ay, aw, ah = box_a
    bx, by, bw, bh = box_b
    inter_w = min(ax + aw, bx + bw) - max(ax, bx)
    inter_h = min(ay + ah, by + bh) - max(ay, by)
    if inter_w <= 0 or inter_h <= 0:
        return 0.0
    inter = inter_w * inter_h
    union = aw * ah + bw * bh - inter
    if union <= 0:
        return 0.0
    # Clamp: floating-point cancellation can push the ratio past 1.
    return float(min(max(inter / union, 0.0), 1.0))


def average_precision(
    scores: Sequence[float], matches: Sequence[bool], n_ground_truth: int
) -> float:
    """Area under the precision-recall curve (all-points interpolation).

    Parameters
    ----------
    scores:
        Confidence of each detection of one class over the whole batch.
    matches:
        Whether each detection was matched to a ground-truth box.
    n_ground_truth:
        Total ground-truth instances of the class in the batch.
    """
    if len(scores) != len(matches):
        raise ValueError("scores and matches must have equal length")
    if n_ground_truth < 0:
        raise ValueError(f"n_ground_truth must be >= 0, got {n_ground_truth}")
    if n_ground_truth == 0:
        return 0.0
    if not scores:
        return 0.0
    order = np.argsort(-np.asarray(scores, dtype=float), kind="stable")
    tp = np.asarray(matches, dtype=float)[order]
    fp = 1.0 - tp
    cum_tp = np.cumsum(tp)
    cum_fp = np.cumsum(fp)
    recall = cum_tp / n_ground_truth
    precision = cum_tp / np.maximum(cum_tp + cum_fp, 1e-12)
    # Monotone non-increasing precision envelope.
    envelope = np.maximum.accumulate(precision[::-1])[::-1]
    # Integrate over recall (all-points interpolation).
    recall_padded = np.concatenate([[0.0], recall])
    ap = float(np.sum((recall_padded[1:] - recall_padded[:-1]) * envelope))
    return ap


def _match_image(
    ground_truth: Sequence[GroundTruthObject],
    detections: Sequence[Detection],
    iou_threshold: float,
):
    """Greedy per-image matching: detections by descending score.

    Returns per-detection (class_id, score, matched) triples plus the
    per-class ground-truth counts for the image.
    """
    gt_by_class: dict[int, list[GroundTruthObject]] = defaultdict(list)
    for obj in ground_truth:
        gt_by_class[obj.class_id].append(obj)
    matched: dict[int, set[int]] = defaultdict(set)
    results = []
    for det in sorted(detections, key=lambda d: -d.score):
        candidates = gt_by_class.get(det.class_id, [])
        best_iou, best_idx = 0.0, -1
        for idx, obj in enumerate(candidates):
            if idx in matched[det.class_id]:
                continue
            overlap = iou(det.bbox, obj.bbox)
            if overlap > best_iou:
                best_iou, best_idx = overlap, idx
        is_match = best_iou >= iou_threshold and best_idx >= 0
        if is_match:
            matched[det.class_id].add(best_idx)
        results.append((det.class_id, det.score, is_match))
    gt_counts = {cid: len(objs) for cid, objs in gt_by_class.items()}
    return results, gt_counts


def evaluate_map(
    ground_truths: Sequence[Sequence[GroundTruthObject]],
    detections: Sequence[Sequence[Detection]],
    iou_threshold: float = 0.5,
) -> float:
    """Mean Average Precision over a batch of images.

    Classes never present in the ground truth are excluded from the
    mean (COCO convention); a batch with no ground truth at all scores
    0.
    """
    if len(ground_truths) != len(detections):
        raise ValueError("ground_truths and detections must align per image")
    check_fraction(iou_threshold, "iou_threshold")
    per_class_scores: dict[int, list[float]] = defaultdict(list)
    per_class_matches: dict[int, list[bool]] = defaultdict(list)
    per_class_gt: dict[int, int] = defaultdict(int)
    for gt, det in zip(ground_truths, detections):
        results, gt_counts = _match_image(gt, det, iou_threshold)
        for class_id, score, is_match in results:
            per_class_scores[class_id].append(score)
            per_class_matches[class_id].append(is_match)
        for class_id, count in gt_counts.items():
            per_class_gt[class_id] += count
    classes = sorted(per_class_gt)
    if not classes:
        return 0.0
    aps = [
        average_precision(
            per_class_scores.get(cid, []),
            per_class_matches.get(cid, []),
            per_class_gt[cid],
        )
        for cid in classes
    ]
    return float(np.mean(aps))


#: Detection-probability multiplier per object size bucket (small
#: objects are disproportionately hurt by downscaling).
_SIZE_DETECTABILITY = {"small": 0.55, "medium": 1.0, "large": 1.12}


class SyntheticDetector:
    """Resolution-sensitive synthetic Faster R-CNN stand-in.

    Calibrated so that the empirical mAP of a measurement batch matches
    the closed-form profile :func:`repro.service.profiles.expected_map`
    (itself fitted to Fig. 1 of the paper) to within sampling noise.

    Parameters
    ----------
    rng:
        Seed or generator for the stochastic detector output.
    iou_threshold:
        Matching threshold used downstream (affects the localisation
        noise calibration only through tests).
    """

    def __init__(self, rng=None, iou_threshold: float = 0.5) -> None:
        self._rng = ensure_rng(rng)
        self.iou_threshold = check_fraction(iou_threshold, "iou_threshold")

    def _detect_probability(self, resolution: float, size_bucket: str) -> float:
        base = 0.38 + 0.46 * resolution**0.8
        multiplier = _SIZE_DETECTABILITY.get(size_bucket, 1.0)
        return float(np.clip(base * multiplier, 0.0, 0.98))

    def _localization_noise(self, resolution: float) -> float:
        """Relative box jitter: grows as resolution drops."""
        return 0.04 + 0.16 * (1.0 - resolution) ** 1.2

    def _false_positive_rate(self, resolution: float) -> float:
        """Expected false positives per image."""
        return 0.8 + 2.8 * (1.0 - resolution)

    def detect(
        self, image, resolution: float
    ) -> list[Detection]:
        """Run the synthetic detector on one frame at a resolution policy.

        ``image`` is an :class:`repro.service.images.ImageSpec`; we only
        use its annotations and geometry.
        """
        check_fraction(resolution, "resolution")
        rng = self._rng
        detections: list[Detection] = []
        for obj in image.objects:
            p = self._detect_probability(resolution, obj.size_bucket)
            if rng.random() > p:
                continue
            x, y, w, h = obj.bbox
            noise = self._localization_noise(resolution)
            jitter = rng.normal(0.0, noise, size=4)
            new_w = max(w * (1.0 + jitter[2]), 1.0)
            new_h = max(h * (1.0 + jitter[3]), 1.0)
            new_x = x + jitter[0] * w
            new_y = y + jitter[1] * h
            score = float(np.clip(rng.beta(7.0, 2.0) * (0.55 + 0.45 * p), 0.0, 1.0))
            detections.append(
                Detection(
                    class_id=obj.class_id,
                    bbox=(new_x, new_y, new_w, new_h),
                    score=score,
                )
            )
        n_fp = rng.poisson(self._false_positive_rate(resolution))
        for _ in range(n_fp):
            class_id = int(rng.integers(0, max(len({o.class_id for o in image.objects}), 1) + 4))
            w = float(rng.uniform(8, image.width / 3))
            h = float(rng.uniform(8, image.height / 3))
            x = float(rng.uniform(0, image.width - w))
            y = float(rng.uniform(0, image.height - h))
            score = float(np.clip(rng.beta(2.0, 5.0), 0.0, 1.0))
            detections.append(
                Detection(class_id=class_id, bbox=(x, y, w, h), score=score)
            )
        return detections

    def measure_map(
        self, images: Sequence, resolution: float
    ) -> float:
        """End-to-end measured mAP over a batch of frames."""
        ground_truths = [img.objects for img in images]
        detections = [self.detect(img, resolution) for img in images]
        return evaluate_map(ground_truths, detections, self.iou_threshold)
