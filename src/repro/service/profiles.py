"""Closed-form service profiles fitted to the paper's measurements.

The full synthetic-detector pipeline is stochastic and relatively slow;
long learning experiments use these closed-form expectations plus
calibrated observation noise instead.  A regression test keeps the
closed form and the synthetic detector consistent.

Fit targets (Fig. 1 of the paper):

========  ==========
res (%)     mAP
========  ==========
25         ~0.25
50         ~0.42
75         ~0.57
100        ~0.66
========  ==========
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_fraction

#: mAP achieved at full resolution.
MAP_AT_FULL_RES = 0.66

#: mAP penalty coefficient and exponent of the resolution drop.
_MAP_DROP_COEFF = 0.60
_MAP_DROP_EXP = 1.35


def expected_map(resolution: float) -> float:
    """Expected mAP for a mean image-resolution policy (Policy 1).

    Monotone increasing, concave near full resolution — Fig. 1's shape:
    a 75% resolution cut costs 10-50% of precision depending on the
    operating point.
    """
    check_fraction(resolution, "resolution")
    value = MAP_AT_FULL_RES - _MAP_DROP_COEFF * (1.0 - resolution) ** _MAP_DROP_EXP
    return float(np.clip(value, 0.0, 1.0))


def map_observation_std(n_images: int = 150) -> float:
    """Standard deviation of a batch mAP measurement.

    Sampling noise of the PR-curve estimate shrinks with the batch
    size; the paper averages 150 images per measurement point.
    """
    if n_images < 1:
        raise ValueError(f"n_images must be >= 1, got {n_images}")
    return float(0.25 / np.sqrt(n_images))
