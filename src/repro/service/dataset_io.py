"""Profiling-dataset persistence.

The paper released its measurement dataset "to enable reproducibility
and to facilitate further research".  This module does the equivalent
for the simulated testbed: save/load
:class:`repro.experiments.hyperfit.ProfilingDataset` objects as plain
CSV so fitted hyperparameters and profiling sweeps can be shared and
re-used across runs without re-simulating.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # avoid a circular import at package-init time
    from repro.experiments.hyperfit import ProfilingDataset

#: Column layout: joint-input coordinates then the three KPI targets.
_INPUT_PREFIX = "z"
_TARGET_COLUMNS = ("cost", "delay_s", "map")


def save_profiling_dataset(dataset: "ProfilingDataset", path: "str | Path") -> Path:
    """Write a profiling dataset to CSV (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    n_dims = dataset.inputs.shape[1]
    header = [f"{_INPUT_PREFIX}{i}" for i in range(n_dims)] + list(_TARGET_COLUMNS)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row, cost, delay, map_score in zip(
            dataset.inputs, dataset.costs, dataset.delays, dataset.maps
        ):
            writer.writerow(
                [f"{float(v):.17g}" for v in row]
                + [f"{float(v):.17g}" for v in (cost, delay, map_score)]
            )
    return path


def load_profiling_dataset(path: "str | Path") -> "ProfilingDataset":
    """Read a profiling dataset previously written by
    :func:`save_profiling_dataset`."""
    path = Path(path)
    with path.open() as handle:
        reader = csv.reader(handle)
        header = next(reader)
        input_columns = [h for h in header if h.startswith(_INPUT_PREFIX)]
        expected = input_columns + list(_TARGET_COLUMNS)
        if header != expected:
            raise ValueError(
                f"unexpected profiling CSV header {header!r}"
            )
        inputs, costs, delays, maps = [], [], [], []
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{line_no}: expected {len(header)} cells, got {len(row)}"
                )
            values = [float(v) for v in row]
            n = len(input_columns)
            inputs.append(values[:n])
            costs.append(values[n])
            delays.append(values[n + 1])
            maps.append(values[n + 2])
    if not inputs:
        raise ValueError(f"{path}: dataset is empty")
    from repro.experiments.hyperfit import ProfilingDataset

    return ProfilingDataset(
        inputs=np.array(inputs),
        costs=np.array(costs),
        delays=np.array(delays),
        maps=np.array(maps),
    )
