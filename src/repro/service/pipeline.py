"""End-to-end service model: the closed-loop MVA pipeline.

Couples the virtualized BS (uplink), the edge server (GPU) and the
user-side think time into the closed queueing network described in
DESIGN.md, and produces every performance indicator of the paper for a
steady-state orchestration period:

* per-user service delay (PI 1) — full capture-to-response cycle,
* aggregate/frame rates, GPU residence times,
* server power (PI 3) and BS baseband power (PI 4).

mAP (PI 2) is independent of the queueing dynamics and handled by
:mod:`repro.service.detection` / :mod:`repro.service.profiles`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.edge.queueing import (
    ClosedNetwork,
    DelayStation,
    QueueingStation,
    solve_exact_mva,
    solve_schweitzer,
)
from repro.edge.server import EdgeServer, ServerLoadReport
from repro.ran.mac import RadioPolicy
from repro.ran.vbs import VirtualizedBS
from repro.service.images import encoded_bits
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class UserEquipment:
    """User-side device model.

    Attributes
    ----------
    snr_db:
        Current uplink SNR of this user.
    preprocess_base_s:
        Fixed frame-capture/encode overhead on the device.
    preprocess_per_res_s:
        Additional encode time at full resolution (scales linearly with
        the pixel count, i.e. with the resolution policy).
    downlink_time_s:
        Time to return bounding boxes and labels (tiny payload, mostly
        RTT).
    """

    snr_db: float
    preprocess_base_s: float = 0.008
    preprocess_per_res_s: float = 0.018
    downlink_time_s: float = 0.006

    def think_time_s(self, resolution: float) -> float:
        """Per-cycle user-side time outside radio and GPU."""
        check_fraction(resolution, "resolution")
        return float(
            self.preprocess_base_s
            + self.preprocess_per_res_s * resolution
            + self.downlink_time_s
        )


@dataclass(frozen=True)
class ServiceSteadyState:
    """All steady-state KPIs for one orchestration period.

    Delays are ``inf`` and rates 0 when a user's allocation carries no
    goodput (dead link / zero airtime).
    """

    per_user_delay_s: np.ndarray
    per_user_rate_hz: np.ndarray
    per_user_tx_time_s: np.ndarray
    per_user_gpu_delay_s: np.ndarray
    max_delay_s: float
    total_rate_hz: float
    offered_load_bps: float
    mean_mcs: float
    server: ServerLoadReport
    bs_power_w: float


class ServiceModel:
    """The measurable system: (policies, channel states) -> KPIs.

    Parameters
    ----------
    vbs:
        Virtualized base station instance.
    server:
        Edge server instance.
    exact_mva_max_users:
        Population threshold above which the Bard-Schweitzer
        approximation replaces exact MVA.
    load_multiplier:
        Background-load emulation factor for the BS (Fig. 6 uses 10x).
    """

    def __init__(
        self,
        vbs: VirtualizedBS | None = None,
        server: EdgeServer | None = None,
        exact_mva_max_users: int = 8,
        load_multiplier: float = 1.0,
    ) -> None:
        self.vbs = vbs if vbs is not None else VirtualizedBS()
        self.server = server if server is not None else EdgeServer()
        if exact_mva_max_users < 1:
            raise ValueError("exact_mva_max_users must be >= 1")
        self.exact_mva_max_users = int(exact_mva_max_users)
        self.load_multiplier = check_positive(load_multiplier, "load_multiplier")

    @classmethod
    def from_config(cls, config) -> "ServiceModel":
        """Build the calibrated deployment described by a
        :class:`repro.testbed.config.TestbedConfig`."""
        from repro.edge.gpu import GpuModel
        from repro.ran.power import BSPowerModel

        vbs = VirtualizedBS(
            bandwidth_mhz=config.bandwidth_mhz,
            mac_efficiency=config.mac_efficiency,
            power_model=BSPowerModel(
                idle_power_w=config.bs_idle_power_w,
                base_busy_power_w=config.bs_base_busy_power_w,
                mcs_busy_power_w=config.bs_mcs_busy_power_w,
                grant_utilization=config.bs_grant_utilization,
            ),
        )
        server = EdgeServer(
            gpu=GpuModel(
                min_power_cap_w=config.gpu_min_power_cap_w,
                max_power_cap_w=config.gpu_max_power_cap_w,
                idle_power_w=config.gpu_idle_power_w,
                speed_exponent=config.gpu_speed_exponent,
                base_inference_time_s=config.gpu_base_inference_time_s,
                resolution_ease_s=config.gpu_resolution_ease_s,
                busy_draw_fraction=config.gpu_busy_draw_fraction,
            ),
            host_idle_power_w=config.host_idle_power_w,
            host_per_request_j=config.host_per_request_j,
        )
        return cls(vbs=vbs, server=server, load_multiplier=config.load_multiplier)

    def steady_state(
        self,
        resolution: float,
        radio_policy: RadioPolicy,
        gpu_speed: float,
        users: Sequence[UserEquipment],
    ) -> ServiceSteadyState:
        """Solve one orchestration period to steady state."""
        check_fraction(resolution, "resolution")
        check_fraction(gpu_speed, "gpu_speed")
        if not users:
            raise ValueError("at least one user is required")

        grant = self.vbs.grant(radio_policy, [u.snr_db for u in users])
        image_bits = encoded_bits(resolution)
        tx_times = np.array(
            [
                self.vbs.transmission_time_s(image_bits, alloc)
                for alloc in grant.allocations
            ]
        )
        n = len(users)

        if not np.all(np.isfinite(tx_times)):
            # At least one user cannot transmit at all: its delay is
            # unbounded and it contributes no load.
            rates = np.zeros(n)
            delays = np.full(n, np.inf)
            gpu_delays = np.full(n, np.inf)
            report = self.server.load_report(0.0, resolution, gpu_speed)
            bs_power = self.vbs.baseband_power_w(radio_policy, grant, 0.0)
            return ServiceSteadyState(
                per_user_delay_s=delays,
                per_user_rate_hz=rates,
                per_user_tx_time_s=tx_times,
                per_user_gpu_delay_s=gpu_delays,
                max_delay_s=float("inf"),
                total_rate_hz=0.0,
                offered_load_bps=0.0,
                mean_mcs=grant.mean_mcs,
                server=report,
                bs_power_w=bs_power,
            )

        gpu_service = self.server.inference_time_s(resolution, gpu_speed)
        network = ClosedNetwork(
            populations=tuple(1 for _ in range(n)),
            stations=(
                DelayStation(name="radio", demands_s=tuple(float(t) for t in tx_times)),
                QueueingStation(name="gpu", demands_s=tuple(gpu_service for _ in range(n))),
            ),
            think_times_s=tuple(u.think_time_s(resolution) for u in users),
        )
        if n <= self.exact_mva_max_users:
            solution = solve_exact_mva(network)
        else:
            solution = solve_schweitzer(network)

        rates = solution.throughputs
        delays = solution.cycle_times
        gpu_delays = solution.response_times[1, :]
        total_rate = float(rates.sum())
        offered_load = float(total_rate * image_bits * self.load_multiplier)

        report = self.server.load_report(total_rate, resolution, gpu_speed)
        bs_power = self.vbs.baseband_power_w(radio_policy, grant, offered_load)
        return ServiceSteadyState(
            per_user_delay_s=delays,
            per_user_rate_hz=rates,
            per_user_tx_time_s=tx_times,
            per_user_gpu_delay_s=gpu_delays,
            max_delay_s=float(delays.max()),
            total_rate_hz=total_rate,
            offered_load_bps=offered_load,
            mean_mcs=grant.mean_mcs,
            server=report,
            bs_power_w=bs_power,
        )
