"""Synthetic COCO-like image stream.

The prototype streams COCO images from the UE to the edge server.  This
module generates statistically similar content: images at a base
resolution of 640x480 containing a variable number of objects from a
fixed set of categories, with the small/medium/large area mix of COCO.
Policy 1 (image resolution) scales the encoded pixel count; the encoded
size in bits follows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.service.detection import GroundTruthObject
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction

#: Base (100% resolution) frame geometry of the testbed.
BASE_WIDTH = 640
BASE_HEIGHT = 480

#: Number of object categories in the synthetic dataset (COCO has 80;
#: a smaller fixed set keeps per-class AP estimates stable at the
#: 150-image measurement batches the paper uses).
N_CLASSES = 12

#: COCO-like object size mix: (min_rel_area, max_rel_area, probability).
_SIZE_BUCKETS = (
    ("small", 0.0005, 0.004, 0.42),
    ("medium", 0.004, 0.03, 0.34),
    ("large", 0.03, 0.25, 0.24),
)

#: Effective encoded bits per pixel at the quality the service uses
#: (high-quality encoding so the detector sees clean frames).
BITS_PER_PIXEL = 7.3

#: Fixed per-frame protocol/header overhead in bits.
FRAME_OVERHEAD_BITS = 20_000.0


def encoded_bits(resolution: float, bits_per_pixel: float = BITS_PER_PIXEL,
                 overhead_bits: float = FRAME_OVERHEAD_BITS) -> float:
    """Mean encoded size (bits) of one frame at a resolution policy.

    ``resolution`` scales the *pixel count* relative to 640x480; the
    encoded size is linear in pixels plus a constant header overhead.
    """
    check_fraction(resolution, "resolution")
    pixels = BASE_WIDTH * BASE_HEIGHT * resolution
    return float(pixels * bits_per_pixel + overhead_bits)


@dataclass(frozen=True)
class ImageSpec:
    """One synthetic frame: geometry plus ground-truth annotations.

    Attributes
    ----------
    width, height:
        Pixel geometry at 100% resolution (annotations use these
        coordinates regardless of the encoding policy).
    objects:
        Ground-truth objects present in the frame.
    """

    width: int
    height: int
    objects: tuple[GroundTruthObject, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")


class SyntheticCocoDataset:
    """Endless generator of COCO-like annotated frames.

    Parameters
    ----------
    rng:
        Seed or generator controlling the stream.
    mean_objects:
        Mean number of ground-truth objects per frame (COCO averages
        ~7); sampled Poisson, clipped to at least 1.
    n_classes:
        Number of object categories.
    class_skew:
        Zipf-like skew of the category distribution (0 = uniform).
    """

    def __init__(
        self,
        rng=None,
        mean_objects: float = 7.0,
        n_classes: int = N_CLASSES,
        class_skew: float = 0.7,
    ) -> None:
        if mean_objects <= 0:
            raise ValueError(f"mean_objects must be positive, got {mean_objects}")
        if n_classes < 1:
            raise ValueError(f"n_classes must be >= 1, got {n_classes}")
        if class_skew < 0:
            raise ValueError(f"class_skew must be >= 0, got {class_skew}")
        self._rng = ensure_rng(rng)
        self.mean_objects = float(mean_objects)
        self.n_classes = int(n_classes)
        weights = (1.0 + np.arange(n_classes)) ** (-class_skew)
        self._class_probs = weights / weights.sum()
        names, lows, highs, probs = zip(*_SIZE_BUCKETS)
        self._bucket_names = names
        self._bucket_lows = np.array(lows)
        self._bucket_highs = np.array(highs)
        self._bucket_probs = np.array(probs) / np.sum(probs)

    def sample_image(self) -> ImageSpec:
        """Draw one annotated frame."""
        n_objects = max(1, int(self._rng.poisson(self.mean_objects)))
        objects = []
        frame_area = BASE_WIDTH * BASE_HEIGHT
        for _ in range(n_objects):
            class_id = int(self._rng.choice(self.n_classes, p=self._class_probs))
            bucket = int(self._rng.choice(len(self._bucket_probs), p=self._bucket_probs))
            rel_area = self._rng.uniform(
                self._bucket_lows[bucket], self._bucket_highs[bucket]
            )
            area = rel_area * frame_area
            aspect = self._rng.uniform(0.5, 2.0)
            w = float(np.sqrt(area * aspect))
            h = float(np.sqrt(area / aspect))
            w = min(w, BASE_WIDTH - 2.0)
            h = min(h, BASE_HEIGHT - 2.0)
            x = float(self._rng.uniform(0, BASE_WIDTH - w))
            y = float(self._rng.uniform(0, BASE_HEIGHT - h))
            objects.append(
                GroundTruthObject(
                    class_id=class_id,
                    bbox=(x, y, w, h),
                    size_bucket=self._bucket_names[bucket],
                )
            )
        return ImageSpec(width=BASE_WIDTH, height=BASE_HEIGHT, objects=tuple(objects))

    def sample_batch(self, n_images: int) -> list[ImageSpec]:
        """Draw ``n_images`` annotated frames (a measurement batch)."""
        if n_images < 0:
            raise ValueError(f"n_images must be non-negative, got {n_images}")
        return [self.sample_image() for _ in range(n_images)]
