"""Canonical configuration hashing for the experiment store.

A sweep cell is uniquely determined by six ingredients: the spec name,
the fully-resolved cell parameters, the cell's seed-tree node (root
entropy + spawn key), the installed fault plan, the active
:class:`~repro.core.backend.NumericsConfig`, and a fingerprint of the
code that will execute it.  :func:`cell_key` folds all six into one
SHA-256 hex digest through :func:`canonical_json` — a deterministic
serialisation (sorted keys, tuples as lists, numpy scalars coerced,
NaN rejected) so that semantically equal configurations always hash
identically regardless of dict insertion order or numpy dtypes.

The code fingerprint (:func:`code_fingerprint`) hashes every ``*.py``
file of the installed ``repro`` package — path and content — so any
source change invalidates every cached result computed by the old
code.  ``REPRO_CODE_FINGERPRINT`` overrides it, which is how tests
simulate a code change and how a deployment can pin a release tag
instead of re-hashing the tree.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.backend import NumericsConfig, active_numerics

__all__ = [
    "canonical_json",
    "code_fingerprint",
    "cell_key",
    "ENV_FINGERPRINT",
]

#: Environment variable overriding the computed code fingerprint.
ENV_FINGERPRINT = "REPRO_CODE_FINGERPRINT"

#: Cached tree fingerprints by package root (hashing the tree once per
#: process is enough — the code cannot change under a running sweep).
_FINGERPRINTS: dict[Path, str] = {}


def _canon(value):
    """Recursively normalise ``value`` for canonical serialisation."""
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_canon(v) for v in value.tolist()]
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def canonical_json(value) -> str:
    """Deterministic JSON of ``value``: sorted keys, compact, no NaN.

    Two structurally equal values — regardless of dict ordering,
    tuple-vs-list spelling or numpy scalar types — produce the same
    string, so hashing it yields a stable content address.  Non-finite
    floats are rejected: a NaN parameter cannot be meaningfully
    compared for equality, so it must not silently produce a key.
    """
    try:
        return json.dumps(
            _canon(value), sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        )
    except ValueError as exc:
        raise ValueError(
            f"configuration is not canonically serialisable "
            f"(non-finite float?): {exc}"
        ) from None


def code_fingerprint(root: "Path | str | None" = None,
                     environ=None) -> str:
    """SHA-256 fingerprint of the executing code tree.

    Hashes the relative path and content of every ``*.py`` file under
    ``root`` (default: the installed ``repro`` package directory) in
    sorted order; any edit, addition, rename or deletion changes the
    digest and therefore every cell key derived from it.  The
    ``REPRO_CODE_FINGERPRINT`` environment variable short-circuits the
    walk with an explicit value (release tag pinning, test isolation).
    """
    environ = os.environ if environ is None else environ
    override = environ.get(ENV_FINGERPRINT)
    if override:
        return override
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    root = Path(root).resolve()
    cached = _FINGERPRINTS.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()
    _FINGERPRINTS[root] = fingerprint
    return fingerprint


def cell_key(
    spec_name: str,
    params: dict,
    *,
    entropy: int,
    spawn_key: "tuple[int, ...]",
    fault_plan: "dict | None" = None,
    numerics: "NumericsConfig | dict | None" = None,
    code: "str | None" = None,
) -> str:
    """Content address of one sweep cell (64-char SHA-256 hex digest).

    Parameters
    ----------
    spec_name:
        Registered experiment spec name.
    params:
        The cell's fully-resolved parameter dict (every sweep axis
        collapsed to a scalar).
    entropy, spawn_key:
        The cell's node of the sweep's SeedSequence spawn tree.
    fault_plan:
        The installed fault plan as a plain dict (``FaultPlan.to_dict``)
        or ``None`` for a fault-free run — a chaos run never shares a
        key with a clean one.
    numerics:
        The active numerics configuration (every field participates:
        conservative invalidation — a batched or sparse run is keyed
        apart from the dense reference even where results are proven
        equal).  Defaults to :func:`repro.core.backend.active_numerics`.
    code:
        Code fingerprint; defaults to :func:`code_fingerprint`.
    """
    if numerics is None:
        numerics = active_numerics()
    if isinstance(numerics, NumericsConfig):
        numerics = asdict(numerics)
    payload = {
        "spec": str(spec_name),
        "params": params,
        "seed": {
            "entropy": int(entropy),
            "spawn_key": [int(k) for k in spawn_key],
        },
        "faults": fault_plan,
        "numerics": numerics,
        "code": code if code is not None else code_fingerprint(),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()
