"""Content-addressed experiment store: never recompute a sweep cell.

Public surface:

* :func:`~repro.store.key.cell_key` /
  :func:`~repro.store.key.code_fingerprint` /
  :func:`~repro.store.key.canonical_json` — canonical configuration
  hashing (spec + params + seed node + fault plan + numerics + code);
* :class:`~repro.store.store.ExperimentStore` — immutable result
  blobs plus a JSONL index with atomic append, ``verify`` and ``gc``
  compaction;
* :func:`~repro.store.store.resolve_store_dir` — ``--store DIR`` /
  ``--no-store`` / ``REPRO_STORE`` resolution.

The sweep engine (:mod:`repro.experiments.parallel`) consults the
store before dispatching a cell and writes completed cells through;
``repro results`` queries historical results.  See ``docs/STORE.md``.
"""

from repro.store.key import (
    ENV_FINGERPRINT,
    canonical_json,
    cell_key,
    code_fingerprint,
)
from repro.store.store import (
    ENV_STORE,
    ExperimentStore,
    resolve_store_dir,
)

__all__ = [
    "ENV_FINGERPRINT",
    "ENV_STORE",
    "ExperimentStore",
    "canonical_json",
    "cell_key",
    "code_fingerprint",
    "resolve_store_dir",
]
