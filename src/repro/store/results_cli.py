"""The ``repro results`` subcommand: query the experiment store.

Thin, pycomex-style console layer over :class:`ExperimentStore`::

    repro results list   [--store DIR] [--spec S] [--param k=v] [--seed N]
    repro results show   KEY-PREFIX [--json]
    repro results verify [--store DIR]
    repro results gc     [--store DIR]

``list`` renders one table row per stored cell (filterable), ``show``
prints one result in full, ``verify`` checks every blob against its
indexed checksum, and ``gc`` compacts the index and deletes
unreferenced blobs.  The store directory resolves like every other
store consumer: ``--store DIR`` first, then ``REPRO_STORE``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.store.store import ENV_STORE, ExperimentStore, resolve_store_dir
from repro.utils.ascii import render_table

__all__ = ["add_results_command"]


def _open_store(args) -> ExperimentStore:
    """Resolve and open the store named by the args (SystemExit if none)."""
    root = resolve_store_dir(args.store)
    if root is None:
        raise SystemExit(
            "repro results: no store configured — pass --store DIR or set "
            f"the {ENV_STORE} environment variable"
        )
    return ExperimentStore(root)


def _parse_param_filters(entries) -> dict:
    """``--param key=value`` strings to a filter dict (values as JSON)."""
    filters: dict = {}
    for entry in entries or ():
        key, sep, raw = entry.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"repro results: --param expects key=value, got '{entry}'"
            )
        try:
            filters[key] = json.loads(raw)
        except json.JSONDecodeError:
            filters[key] = raw
    return filters


def _fmt_created(created) -> str:
    """Index timestamp as a local-time string (``?`` when absent)."""
    if not isinstance(created, (int, float)):
        return "?"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(created))


def _fmt_params(params) -> str:
    """Compact one-line rendering of a stored parameter dict."""
    if not isinstance(params, dict) or not params:
        return "-"
    parts = []
    for key, value in params.items():
        text = f"{value:g}" if isinstance(value, float) else str(value)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def _cmd_list(args) -> int:
    """``repro results list``: one table row per stored cell."""
    store = _open_store(args)
    matches = store.find(
        spec=args.spec,
        seed=args.seed,
        params=_parse_param_filters(args.param),
        key_prefix=args.key_prefix,
    )
    if not matches:
        print(f"no stored results match (store: {store.root})")
        return 0
    rows = [
        [
            record["key"][:12],
            record.get("spec") or "?",
            record.get("cell_id") or "?",
            (record.get("seed") or {}).get("entropy", "?"),
            _fmt_params(record.get("params")),
            record.get("rows") if record.get("rows") is not None else "?",
            "yes" if record.get("decisions") else "-",
            _fmt_created(record.get("created")),
        ]
        for record in matches
    ]
    print(render_table(
        ["key", "spec", "cell", "seed", "params", "rows", "traced",
         "created"],
        rows,
    ))
    print(f"{len(matches)} stored result(s) in {store.root}")
    return 0


def _resolve_key(store: ExperimentStore, prefix: str) -> str:
    """Expand a unique key prefix (SystemExit on none or ambiguity)."""
    matches = store.find(key_prefix=prefix)
    if not matches:
        raise SystemExit(
            f"repro results: no stored result with key prefix '{prefix}'"
        )
    keys = sorted({record["key"] for record in matches})
    if len(keys) > 1:
        listing = ", ".join(k[:12] for k in keys[:8])
        raise SystemExit(
            f"repro results: key prefix '{prefix}' is ambiguous "
            f"({len(keys)} matches: {listing}...)"
        )
    return keys[0]


def _cmd_show(args) -> int:
    """``repro results show``: print one stored result in full."""
    store = _open_store(args)
    key = _resolve_key(store, args.key)
    blob = store.get(key)
    if blob is None:
        raise SystemExit(
            f"repro results: blob for key {key[:12]}... is missing or "
            f"corrupt (run 'repro results verify')"
        )
    if args.json:
        print(json.dumps(blob, indent=2))
        return 0
    meta = blob.get("meta") or {}
    result = blob.get("result") or {}
    rows = result.get("rows") or []
    decisions = result.get("decisions") or []
    pairs = [
        ("key", key),
        ("spec", meta.get("spec", "?")),
        ("cell", meta.get("cell_id", "?")),
        ("seed", json.dumps(meta.get("seed")) if meta.get("seed") else "?"),
        ("params", _fmt_params(meta.get("params"))),
        ("numerics", meta.get("numerics_mode", "?")),
        ("code", str(meta.get("code", "?"))[:16]),
        ("created", _fmt_created(meta.get("created"))),
        ("rows", len(rows)),
        ("decision records", len(decisions)),
    ]
    width = max(len(label) for label, _ in pairs)
    for label, value in pairs:
        print(f"{label.rjust(width)}  {value}")
    if rows:
        print(f"\nfirst row: {json.dumps(rows[0])}")
        print("(use --json for the full blob)")
    return 0


def _cmd_verify(args) -> int:
    """``repro results verify``: checksum every indexed blob."""
    store = _open_store(args)
    report = store.verify()
    print(render_table(
        ["entries", "ok", "missing", "corrupt", "mismatched", "orphans",
         "bad index lines"],
        [[
            report["entries"],
            report["ok"],
            len(report["missing"]),
            len(report["corrupt"]),
            len(report["mismatched"]),
            len(report["orphans"]),
            report["corrupt_index_lines"],
        ]],
    ))
    problems = (
        report["missing"] + report["corrupt"] + report["mismatched"]
    )
    for key in problems:
        print(f"  problem blob: {key[:16]}...", file=sys.stderr)
    for path in report["orphans"]:
        print(f"  orphan blob: {path}", file=sys.stderr)
    # One-line machine-greppable summary, printed on success AND
    # failure so CI logs always carry the counts next to the exit code.
    print(
        f"verify: {report['entries']} entr(ies), ok {report['ok']}, "
        f"missing {len(report['missing'])}, corrupt {len(report['corrupt'])}, "
        f"mismatched {len(report['mismatched'])}, "
        f"orphans {len(report['orphans'])}, "
        f"bad index lines {report['corrupt_index_lines']}"
    )
    if problems or report["orphans"] or report["corrupt_index_lines"]:
        print("store verification FAILED (run 'repro results gc' to drop "
              "dangling state)", file=sys.stderr)
        return 1
    print(f"store {store.root} verified: {report['ok']} result(s) intact")
    return 0


def _cmd_gc(args) -> int:
    """``repro results gc``: compact the index, delete orphan blobs."""
    store = _open_store(args)
    stats = store.gc()
    print(
        f"compacted index: kept {stats['kept']} entr(ies), dropped "
        f"{stats['dropped_entries']}; deleted {stats['deleted_blobs']} "
        f"unreferenced blob(s), reclaimed {stats['reclaimed_bytes']} bytes"
    )
    return 0


def add_results_command(sub) -> None:
    """Register ``repro results`` and its subcommands on ``sub``."""
    results = sub.add_parser(
        "results",
        help="query the content-addressed experiment store "
             "(see docs/STORE.md)",
    )
    nested = results.add_subparsers(dest="results_command", required=True)

    def _common(parser) -> None:
        parser.add_argument(
            "--store", type=Path, default=None, metavar="DIR",
            help=f"store directory (default: ${ENV_STORE})",
        )

    p = nested.add_parser("list", help="list stored results (filterable)")
    _common(p)
    p.add_argument("--spec", default=None, help="filter by experiment spec")
    p.add_argument("--seed", type=int, default=None,
                   help="filter by sweep root seed (entropy)")
    p.add_argument("--param", action="append", metavar="KEY=VALUE",
                   help="filter by a cell parameter value (repeatable)")
    p.add_argument("--key-prefix", default=None, metavar="HEX",
                   help="filter by content-key prefix")
    p.set_defaults(fn=_cmd_list)

    p = nested.add_parser("show", help="print one stored result")
    _common(p)
    p.add_argument("key", help="content key (any unambiguous prefix)")
    p.add_argument("--json", action="store_true",
                   help="print the raw blob JSON instead of the summary")
    p.set_defaults(fn=_cmd_show)

    p = nested.add_parser("verify",
                          help="checksum every stored blob against the index")
    _common(p)
    p.set_defaults(fn=_cmd_verify)

    p = nested.add_parser(
        "gc",
        help="compact the index and delete unreferenced blobs",
    )
    _common(p)
    p.set_defaults(fn=_cmd_gc)
