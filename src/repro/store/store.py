"""Content-addressed on-disk store of completed experiment cells.

Layout (everything under one root directory)::

    <root>/
      index.jsonl              # one record per stored cell, append-only
      objects/<k[:2]>/<k>.json # immutable result blob, k = 64-hex key

A *blob* holds the full result of one sweep cell — the RunLog rows, the
merged telemetry metrics snapshot and any decision-trace records —
wrapped with the metadata that produced it (spec, cell id, params,
seed node, numerics mode, code fingerprint).  Blobs are written
atomically (temp file + ``os.replace``) and never mutated in place, so
readers can only ever observe a complete blob or none.  The *index* is
a JSONL file of one summary record per ``put`` — key, spec, cell id,
params, payload checksum — appended in one flushed write; duplicate
keys are resolved last-wins at read time and squashed by
:meth:`ExperimentStore.gc` compaction.

Store resolution mirrors :class:`~repro.core.backend.NumericsConfig`:
an explicit CLI path (``--store DIR``) wins, then the ``REPRO_STORE``
environment variable, and with neither the store is disabled
(``--no-store`` force-disables).  See ``docs/STORE.md`` for the key
definition, the cache-hit guarantees and the invalidation semantics.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

__all__ = ["ExperimentStore", "resolve_store_dir", "ENV_STORE", "INDEX_NAME"]

#: Environment variable naming the default store directory.
ENV_STORE = "REPRO_STORE"

#: Name of the JSONL index file under the store root.
INDEX_NAME = "index.jsonl"


def resolve_store_dir(store: "Path | str | None" = None,
                      no_store: bool = False,
                      environ=None) -> "Path | None":
    """Resolve the store directory: flag > ``REPRO_STORE`` env > off.

    ``no_store`` force-disables the store even when the environment
    names one (the CLI's ``--no-store``); ``None`` means "no store".
    """
    if no_store:
        return None
    if store is not None:
        return Path(store)
    environ = os.environ if environ is None else environ
    named = environ.get(ENV_STORE)
    return Path(named) if named else None


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class ExperimentStore:
    """Content-addressed experiment results under one root directory.

    Keys are the canonical configuration hashes of
    :func:`repro.store.key.cell_key`; the store itself is
    key-agnostic — any 64-char hex string works — so it can also hold
    results from custom runners.
    """

    def __init__(self, root: "Path | str") -> None:
        """Bind the store to ``root`` (created lazily on first write)."""
        self.root = Path(root)

    @property
    def index_path(self) -> Path:
        """Path of the append-only JSONL index."""
        return self.root / INDEX_NAME

    def blob_path(self, key: str) -> Path:
        """Immutable blob location for ``key`` (two-level fan-out)."""
        key = str(key)
        return self.root / "objects" / key[:2] / f"{key}.json"

    # -- blob I/O --------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether a blob exists for ``key`` (no content validation)."""
        return self.blob_path(key).exists()

    def get(self, key: str) -> "dict | None":
        """The full blob dict for ``key``, or ``None`` on any failure.

        A missing, unreadable or corrupt blob is a cache *miss*, never
        an error — the caller recomputes and overwrites it.
        """
        try:
            text = self.blob_path(key).read_text()
        except OSError:
            return None
        try:
            blob = json.loads(text)
        except json.JSONDecodeError:
            return None
        return blob if isinstance(blob, dict) else None

    def put(self, key: str, result: dict, meta: "dict | None" = None) -> Path:
        """Store ``result`` under ``key``, atomically, and index it.

        ``result`` must be JSON-serialisable (the sweep engine passes
        rows/metrics/decisions already coerced by its manifest layer).
        An existing blob for ``key`` is replaced — the canonical key
        guarantees any replacement describes the same computation, so
        replacement can only refresh (e.g. add decision records), never
        corrupt.  The index gains one summary record per call.
        """
        path = self.blob_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {**dict(meta or {}), "created": time.time()}
        blob = {"key": str(key), "meta": meta, "result": result}
        text = json.dumps(blob)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(text)
        os.replace(tmp, path)
        rows = result.get("rows") if isinstance(result, dict) else None
        record = {
            "key": str(key),
            **{k: blob["meta"].get(k) for k in
               ("spec", "cell_id", "params", "seed", "numerics_mode", "code")
               if k in blob["meta"]},
            "rows": len(rows) if isinstance(rows, list) else None,
            "decisions": bool(result.get("decisions"))
            if isinstance(result, dict) else False,
            "sha256": _sha256(text),
            "bytes": len(text),
            "created": meta["created"],
        }
        with self.index_path.open("a") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()
        return path

    # -- index queries ---------------------------------------------------

    def _read_index(self) -> "tuple[list[dict], int]":
        """All intact index records (file order) plus a corrupt count."""
        try:
            lines = self.index_path.read_text().splitlines()
        except OSError:
            return [], 0
        records: list[dict] = []
        corrupt = 0
        for line in lines:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                corrupt += 1
                continue
            if isinstance(record, dict) and record.get("key"):
                records.append(record)
            else:
                corrupt += 1
        return records, corrupt

    def entries(self) -> "list[dict]":
        """Index records deduplicated by key (last ``put`` wins)."""
        records, _ = self._read_index()
        by_key = {record["key"]: record for record in records}
        return list(by_key.values())

    def find(self, *, spec: "str | None" = None, seed: "int | None" = None,
             params: "dict | None" = None,
             key_prefix: "str | None" = None) -> "list[dict]":
        """Index entries matching every given filter, oldest first.

        ``params`` entries match when the stored parameter equals the
        filter value, or when their string forms agree (so CLI filters
        like ``--param delta2=8`` match the stored float ``8.0``).
        """
        matches = []
        for record in self.entries():
            if spec is not None and record.get("spec") != spec:
                continue
            if key_prefix is not None \
                    and not record["key"].startswith(key_prefix):
                continue
            if seed is not None:
                stored = (record.get("seed") or {}).get("entropy")
                if stored != seed:
                    continue
            if params:
                stored = record.get("params") or {}
                if not all(_param_match(stored.get(k), v)
                           for k, v in params.items()):
                    continue
            matches.append(record)
        matches.sort(key=lambda r: (r.get("created") or 0.0, r["key"]))
        return matches

    # -- maintenance -----------------------------------------------------

    def _disk_blobs(self) -> "list[Path]":
        """Every ``*.json`` blob currently under ``objects/``."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(objects.rglob("*.json"))

    def verify(self) -> dict:
        """Integrity report over the whole store (read-only).

        Checks every index entry's blob for existence, checksum match
        and key agreement, and reports blobs on disk that no index
        entry references.  Returns a dict with ``entries``, ``ok``,
        ``missing``, ``corrupt``, ``mismatched``, ``orphans`` and
        ``corrupt_index_lines``; the store is healthy iff the last
        five are all empty/zero.
        """
        records, corrupt_lines = self._read_index()
        by_key = {record["key"]: record for record in records}
        missing: list[str] = []
        corrupt: list[str] = []
        mismatched: list[str] = []
        ok = 0
        for key, record in by_key.items():
            path = self.blob_path(key)
            try:
                text = path.read_text()
            except OSError:
                missing.append(key)
                continue
            try:
                blob = json.loads(text)
            except json.JSONDecodeError:
                corrupt.append(key)
                continue
            expected = record.get("sha256")
            if expected is not None and _sha256(text) != expected:
                mismatched.append(key)
                continue
            if not isinstance(blob, dict) or blob.get("key") != key:
                mismatched.append(key)
                continue
            ok += 1
        indexed = set(by_key)
        orphans = [
            str(path) for path in self._disk_blobs()
            if path.stem not in indexed
        ]
        return {
            "entries": len(by_key),
            "ok": ok,
            "missing": sorted(missing),
            "corrupt": sorted(corrupt),
            "mismatched": sorted(mismatched),
            "orphans": orphans,
            "corrupt_index_lines": corrupt_lines,
        }

    def gc(self) -> dict:
        """Compact the index and delete unreferenced blobs.

        Keeps the newest index record per key whose blob still exists,
        rewrites the index atomically, and removes orphan blobs (and
        stray ``.tmp*`` files from interrupted writes).  Returns
        ``kept`` / ``dropped_entries`` / ``deleted_blobs`` /
        ``reclaimed_bytes``.
        """
        records, corrupt_lines = self._read_index()
        by_key = {record["key"]: record for record in records}
        kept = [
            record for record in by_key.values()
            if self.blob_path(record["key"]).exists()
        ]
        kept.sort(key=lambda r: (r.get("created") or 0.0, r["key"]))
        dropped = len(records) + corrupt_lines - len(kept)
        if self.index_path.exists() or kept:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.index_path.with_name(
                f"{INDEX_NAME}.tmp{os.getpid()}"
            )
            tmp.write_text(
                "".join(json.dumps(record) + "\n" for record in kept)
            )
            os.replace(tmp, self.index_path)
        indexed = {record["key"] for record in kept}
        deleted = 0
        reclaimed = 0
        objects = self.root / "objects"
        strays: list[Path] = []
        if objects.is_dir():
            strays = [p for p in objects.rglob("*.json.tmp*") if p.is_file()]
        for path in self._disk_blobs() + strays:
            if path.suffix == ".json" and path.stem in indexed:
                continue
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            deleted += 1
            reclaimed += size
        return {
            "kept": len(kept),
            "dropped_entries": dropped,
            "deleted_blobs": deleted,
            "reclaimed_bytes": reclaimed,
        }


def _param_match(stored, wanted) -> bool:
    """Filter equality tolerant of int/float/string spelling."""
    if stored == wanted:
        return True
    if isinstance(stored, (int, float)) and not isinstance(stored, bool):
        try:
            return float(stored) == float(wanted)
        except (TypeError, ValueError):
            return False
    return str(stored) == str(wanted)
