"""EdgeBOL reproduction: energy-aware orchestration of mobile edge AI.

A full-system reproduction of *EdgeBOL: Automating Energy-savings for
Mobile Edge AI* (Ayala-Romero et al., CoNEXT 2021): the contextual,
constrained Bayesian online-learning agent plus every substrate it
needs -- a simulated srsRAN-style virtualized base station, a
GPU-enabled edge server with a closed queueing network, a synthetic
COCO-like video-analytics service with a real mAP evaluator, the O-RAN
orchestration plane, and neural-network / oracle benchmarks.

Quickstart::

    from repro import (
        EdgeBOL, CostWeights, ServiceConstraints, TestbedConfig,
        static_scenario,
    )

    config = TestbedConfig()
    env = static_scenario(mean_snr_db=35.0, rng=0)
    agent = EdgeBOL(
        config.control_grid(),
        ServiceConstraints(d_max_s=0.4, rho_min=0.5),
        CostWeights(delta1=1.0, delta2=1.0),
    )
    for _ in range(100):
        context = env.observe_context()
        policy = agent.select(context)
        observation = env.step(policy)
        agent.observe(context, policy, observation)
"""

from repro.core.edgebol import EdgeBOL, EdgeBOLConfig
from repro.testbed.config import (
    ControlPolicy,
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.context import Context
from repro.testbed.env import EdgeAIEnvironment, TestbedObservation
from repro.testbed.scenarios import (
    dynamic_scenario,
    heterogeneous_scenario,
    static_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "EdgeBOL",
    "EdgeBOLConfig",
    "ControlPolicy",
    "CostWeights",
    "ServiceConstraints",
    "TestbedConfig",
    "Context",
    "EdgeAIEnvironment",
    "TestbedObservation",
    "dynamic_scenario",
    "heterogeneous_scenario",
    "static_scenario",
    "__version__",
]
