"""Command-line interface: a thin shell over the experiment registry.

Every subcommand is generated from a registered
:class:`~repro.experiments.spec.ExperimentSpec` — its flags come from
the spec's parameter declarations, its execution goes through the
shared sweep engine (:mod:`repro.experiments.parallel`).  Usage::

    python -m repro list
    python -m repro profile --figure 1 --out results/
    python -m repro convergence --delta2 1 8 64 --periods 150
    python -m repro static --delta2 1 4 16 64 --jobs 4
    python -m repro run static --sweep delta2=1,8,64 --jobs 4
    python -m repro static --telemetry results/static_trace.jsonl
    python -m repro telemetry-report results/static_trace.jsonl
    python -m repro regret --trace-decisions
    python -m repro diagnose results/regret_decisions.jsonl
    python -m repro run static --sweep delta2=1,8 --store ~/.repro-store
    python -m repro results list --store ~/.repro-store

Every experiment prints the series the corresponding paper figure
plots and writes CSV artifacts (default under ``results/``).  Common
flags on every experiment: ``--out`` / ``--seed`` / ``--jobs N``
(process-parallel cells; completed cells checkpoint to a manifest and
interrupted sweeps resume) / ``--telemetry JSONL`` (record a full
trace of spans + metrics, see ``docs/OBSERVABILITY.md``) /
``--trace-decisions [JSONL]`` (record one decision record per BO
round — safe set, margins, calibration, drift, regret — merged across
sweep cells) / ``--faults plan.json`` (install a deterministic
fault-injection plan for the run, see ``docs/ROBUSTNESS.md``) /
``--numerics MODE`` + ``--gp-budget N`` + ``--backend NAME`` (GP
numerics mode: batched multi-head solves and/or a sparse observation
budget, exported via environment so sweep workers inherit it — see
``docs/NUMERICS.md``) / ``--store DIR`` + ``--no-store``
(content-addressed experiment store: cells whose exact configuration
was already computed are served from the store instead of re-run, see
``docs/STORE.md``); ``telemetry-report`` renders a recorded trace,
``diagnose`` renders a decision trace (one file or a directory of
per-cell traces) as a dashboard with anomaly flags, ``fleet-status``
renders a fleet metrics dump (``repro run fleet --set metrics=DIR``)
as an SLO burn-rate and energy-savings dashboard, and ``results``
queries the experiment store (list/show/gc/verify).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from pathlib import Path

from repro.experiments import parallel
from repro.experiments import spec as spec_registry
from repro.faults import FaultPlan
from repro.faults import runtime as faults
from repro.store import ENV_STORE, resolve_store_dir
from repro.store.results_cli import add_results_command
from repro.telemetry import runtime as telemetry
from repro.utils.ascii import render_table


#: Sentinel for ``--trace-decisions`` used without a path: the real
#: default depends on ``--out`` and the spec name, resolved at run time.
_DEFAULT_DECISIONS = Path("<default>")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out", type=Path, default=Path("results"),
                        help="output directory for CSV files")
    parser.add_argument("--seed", type=int, default=0,
                        help="root of the sweep's SeedSequence tree")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep cells (1 = serial)")
    parser.add_argument("--no-resume", action="store_true",
                        help="ignore an existing sweep manifest and rerun "
                             "every cell")
    parser.add_argument(
        "--telemetry", type=Path, default=None, metavar="JSONL",
        help="record a telemetry trace (spans + metrics) to this JSONL file",
    )
    parser.add_argument(
        "--trace-decisions", type=Path, nargs="?", metavar="JSONL",
        default=None, const=_DEFAULT_DECISIONS,
        help="record one decision record per BO round to this JSONL file "
             "(default <out>/<spec>_decisions.jsonl; render with "
             "'repro diagnose')",
    )
    parser.add_argument(
        "--faults", type=Path, default=None, metavar="PLAN.JSON",
        help="install a deterministic fault-injection plan for the run "
             "(see docs/ROBUSTNESS.md)",
    )
    parser.add_argument(
        "--numerics", default=None,
        choices=("dense", "batched", "sparse", "sparse-batched"),
        help="GP numerics mode: dense (default, bit-identical reference), "
             "batched (stacked multi-head solves), sparse (bounded "
             "observation budget, flat per-period cost), or both "
             "(see docs/NUMERICS.md)",
    )
    parser.add_argument(
        "--gp-budget", type=int, default=None, metavar="N",
        help="sparse-mode observation budget per GP head (default 256)",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="array backend for the GP stack (default numpy; see "
             "docs/NUMERICS.md for registering cupy/torch)",
    )
    parser.add_argument(
        "--store", type=Path, default=None, metavar="DIR",
        help="content-addressed experiment store: serve cells already "
             f"computed for this exact configuration (default ${ENV_STORE}; "
             "see docs/STORE.md)",
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help=f"disable the experiment store even when ${ENV_STORE} is set",
    )


def _load_fault_plan(path: "Path | None") -> "FaultPlan | None":
    """Parse a ``--faults plan.json`` argument (SystemExit on bad input)."""
    if path is None:
        return None
    try:
        return FaultPlan.from_json(path)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"repro: cannot load fault plan {path}: {exc}") from None


def resolve_decision_path(trace_decisions, spec, out: Path) -> "Path | None":
    """Resolve the ``--trace-decisions`` value to a concrete path.

    ``None`` means untraced; the bare-flag sentinel becomes
    ``<out>/<spec>_decisions.jsonl``.
    """
    if trace_decisions is None:
        return None
    if trace_decisions == _DEFAULT_DECISIONS:
        return Path(out) / f"{spec.name}_decisions.jsonl"
    return Path(trace_decisions)


def run_spec(spec, params, *, out: Path, seed: int = 0, jobs: int = 1,
             resume: bool = True, sweep_overrides=None,
             decision_path: "Path | None" = None,
             store: "Path | None" = None) -> int:
    """Execute one spec through the sweep engine and print its report."""
    result = parallel.run_sweep(
        spec, params, seed=seed, jobs=jobs, out=out, resume=resume,
        sweep_overrides=sweep_overrides, decision_path=decision_path,
        store=store,
    )
    print(spec.report(result.rows, params, out))
    if decision_path is not None:
        n_records = sum(len(c.decisions or ()) for c in result.cells)
        print(f"wrote decision trace {decision_path} ({n_records} records; "
              f"render with 'repro diagnose {decision_path}')")
    if result.resumed:
        print(f"resumed {result.resumed}/{len(result.cells)} cells from "
              f"{result.manifest_path}")
    if result.store_hits:
        print(f"store hits: {result.store_hits}/{len(result.cells)} cells "
              f"served from {result.store_path} "
              f"(query with 'repro results list --store "
              f"{result.store_path}')")
    if jobs > 1:
        pids = result.pids
        print(f"ran {len(result.cells) - result.resumed} cells on "
              f"{len(pids)} process(es) (jobs={jobs})")
    if result.retries:
        print(f"retried {result.retries} failing cell attempt(s)")
    for cell in result.quarantined:
        print(f"quarantined cell '{cell.cell_id}' after {cell.attempts} "
              f"attempts: {cell.error}")
    return 0


def _cmd_spec(args) -> int:
    """Generated handler: run the spec bound to this subcommand."""
    spec = args.spec
    overrides = {
        p.name: getattr(args, p.name.replace("-", "_")) for p in spec.params
    }
    params = spec.resolve(overrides)
    return run_spec(
        spec, params, out=args.out, seed=args.seed, jobs=args.jobs,
        resume=not args.no_resume,
        decision_path=resolve_decision_path(
            args.trace_decisions, spec, args.out
        ),
        store=resolve_store_dir(args.store, args.no_store),
    )


def _cmd_list(args) -> int:
    """``repro list``: one row per registered experiment spec."""
    rows = []
    for spec in spec_registry.all_specs():
        sweeps = ", ".join(p.name for p in spec.params if p.sweep) or "-"
        flags = " ".join(f"--{p.name}" for p in spec.params) or "-"
        rows.append([spec.name, sweeps, flags, spec.help])
    print(render_table(["experiment", "sweep axes", "flags", "description"],
                       rows))
    return 0


def _parse_sweep_entries(spec, entries) -> dict:
    """``--sweep key=a,b,c`` strings to typed value tuples."""
    overrides = {}
    for entry in entries or ():
        key, sep, raw = entry.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"repro run: --sweep expects key=v1,v2,... got '{entry}'"
            )
        try:
            overrides[key] = spec.param(key).parse_values(raw)
        except (KeyError, ValueError) as exc:
            raise SystemExit(f"repro run: {exc}") from None
    return overrides


def _cmd_run(args) -> int:
    """``repro run <spec>``: sweep any experiment with axis overrides."""
    try:
        spec = spec_registry.get(args.experiment)
    except KeyError as exc:
        raise SystemExit(f"repro run: {exc}") from None
    overrides = {}
    for entry in args.set or ():
        key, sep, raw = entry.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"repro run: --set expects key=value, got '{entry}'"
            )
        try:
            p = spec.param(key)
            overrides[key] = (
                p.parse_values(raw) if p.sweep else p.type(raw)
            )
        except (KeyError, ValueError) as exc:
            raise SystemExit(f"repro run: {exc}") from None
    try:
        params = spec.resolve(overrides)
    except ValueError as exc:
        raise SystemExit(f"repro run: {exc}") from None
    sweep_overrides = _parse_sweep_entries(spec, args.sweep)
    return run_spec(
        spec, params, out=args.out, seed=args.seed, jobs=args.jobs,
        resume=not args.no_resume, sweep_overrides=sweep_overrides,
        decision_path=resolve_decision_path(
            args.trace_decisions, spec, args.out
        ),
        store=resolve_store_dir(args.store, args.no_store),
    )


def _cmd_diagnose(args) -> int:
    """``repro diagnose``: dashboard + anomaly flags for a decision trace.

    Accepts either one trace file or a directory of per-cell traces
    (every ``*.jsonl`` inside is flagged and the flags aggregated with
    a ``source`` field naming the originating file).
    """
    import json

    from repro.obs import diagnose

    try:
        if Path(args.path).is_dir():
            dashboard, anomalies = diagnose.diagnose_directory(args.path)
            n_records = None
        else:
            records = diagnose.load_decisions(args.path)
            anomalies = diagnose.detect_anomalies(records)
            dashboard = diagnose.render_dashboard(records, anomalies=anomalies)
            n_records = len(records)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro diagnose: {exc}") from None
    if args.json:
        payload = {"anomalies": anomalies}
        if n_records is not None:
            payload["records"] = n_records
        print(json.dumps(payload, indent=2))
    else:
        print(dashboard)
    if args.fail_on_anomaly and anomalies:
        print(f"repro diagnose: {len(anomalies)} anomaly flag(s) raised",
              file=sys.stderr)
        return 1
    return 0


def _cmd_fleet_status(args) -> int:
    """``repro fleet-status``: SLO/energy dashboard over a metrics dump."""
    import json

    from repro.fleetobs import MetricStore, render_status, status_payload

    store = MetricStore()
    try:
        store.ingest_jsonl(args.path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro fleet-status: {exc}") from None
    kwargs = dict(delay_budget=args.delay_budget, map_budget=args.map_budget,
                  window=args.window, top=args.top)
    if args.json:
        print(json.dumps(status_payload(store, **kwargs), indent=2))
    else:
        print(render_status(store, **kwargs))
    return 0


def _cmd_telemetry_report(args) -> int:
    from repro.telemetry import report

    if args.selftest:
        print(report.selftest_report())
        print("\ntelemetry selftest ok")
        return 0
    if args.path is None:
        print("telemetry-report: provide a JSONL path or --selftest",
              file=sys.stderr)
        return 2
    print(report.render_file(args.path))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` parser: registry-generated experiment subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EdgeBOL reproduction: regenerate the paper's experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for spec in spec_registry.all_specs():
        p = sub.add_parser(spec.name, help=spec.help)
        for param in spec.params:
            param.add_argument(p)
        _add_common(p)
        p.set_defaults(fn=_cmd_spec, spec=spec)

    p = sub.add_parser("list", help="list every registered experiment spec")
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser(
        "run",
        help="sweep any registered experiment with axis overrides",
    )
    p.add_argument("experiment", help="registered spec name (see 'list')")
    p.add_argument("--sweep", action="append", metavar="KEY=V1,V2,...",
                   help="replace a sweep axis' values, or promote a scalar "
                        "parameter to an extra axis (repeatable)")
    p.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="override a scalar parameter (repeatable)")
    _add_common(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "telemetry-report",
        help="render a recorded telemetry JSONL trace (span tree + metrics)",
    )
    p.add_argument("path", nargs="?", type=Path, default=None,
                   help="trace file written via --telemetry")
    p.add_argument("--selftest", action="store_true",
                   help="generate and render a synthetic trace (CI smoke test)")
    p.set_defaults(fn=_cmd_telemetry_report)

    p = sub.add_parser(
        "diagnose",
        help="render a decision trace (--trace-decisions JSONL) as an ASCII "
             "dashboard with anomaly flags",
    )
    p.add_argument("path", type=Path,
                   help="decision trace written via --trace-decisions")
    p.add_argument("--json", action="store_true",
                   help="print machine-readable anomaly flags instead of "
                        "the dashboard")
    p.add_argument("--fail-on-anomaly", action="store_true",
                   help="exit non-zero when any anomaly flag is raised")
    p.set_defaults(fn=_cmd_diagnose)

    p = sub.add_parser(
        "fleet-status",
        help="render a fleet metrics dump (--set metrics=DIR) as an SLO "
             "burn-rate and energy-savings dashboard",
    )
    p.add_argument("path", type=Path,
                   help="metrics JSONL written by 'repro run fleet "
                        "--set metrics=DIR'")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable payload instead of "
                        "the dashboard")
    p.add_argument("--delay-budget", type=float, default=0.10, metavar="F",
                   help="allowed delay-violation rate (SLO error budget)")
    p.add_argument("--map-budget", type=float, default=0.10, metavar="F",
                   help="allowed mAP-violation rate (SLO error budget)")
    p.add_argument("--window", type=int, default=20, metavar="N",
                   help="rolling window (periods) for recent burn rates")
    p.add_argument("--top", type=int, default=5, metavar="K",
                   help="cells to list in the top-cost ranking")
    p.set_defaults(fn=_cmd_fleet_status)

    add_results_command(sub)

    return parser


def _apply_numerics_flags(args) -> None:
    """Export ``--numerics``/``--gp-budget``/``--backend`` to the env.

    The selection is written to ``os.environ`` (via
    :func:`repro.core.backend.numerics_env`) rather than threaded
    through every constructor: sweep worker processes inherit the
    environment, so agents built deep inside parallel cells pick the
    mode up through :func:`repro.core.backend.active_numerics`.
    """
    mode = getattr(args, "numerics", None)
    budget = getattr(args, "gp_budget", None)
    backend = getattr(args, "backend", None)
    if mode is None and budget is None and backend is None:
        return
    from repro.core.backend import numerics_env

    try:
        config = numerics_env(mode, backend=backend, sparse_budget=budget)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}") from None
    print(f"numerics mode: {config.mode} (backend {config.backend})")


def main(argv=None) -> int:
    """Entry point (also exposed as ``python -m repro``)."""
    args = build_parser().parse_args(argv)
    plan = _load_fault_plan(getattr(args, "faults", None))
    _apply_numerics_flags(args)
    with faults.use(plan) if plan is not None else nullcontext():
        trace_path = getattr(args, "telemetry", None)
        if trace_path is not None:
            with telemetry.record(trace_path):
                status = args.fn(args)
            print(f"wrote telemetry trace {trace_path}")
            return status
        return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
