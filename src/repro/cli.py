"""Command-line interface: regenerate any experiment from a shell.

Usage::

    python -m repro profile --figure 1 --out results/
    python -m repro convergence --delta2 1 8 64 --periods 150
    python -m repro static --delta2 1 4 16 64
    python -m repro heterogeneous --users 2 4 6
    python -m repro dynamic
    python -m repro comparison --periods 900
    python -m repro tariff
    python -m repro static --telemetry results/static_trace.jsonl
    python -m repro telemetry-report results/static_trace.jsonl

Every subcommand prints the series the corresponding paper figure plots
and writes a CSV (default under ``results/``).  ``--telemetry JSONL``
records a full trace of any experiment (spans + metrics, see
``docs/OBSERVABILITY.md``); ``telemetry-report`` renders it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.experiments import profiling
from repro.experiments.comparison import (
    ComparisonSetting,
    phase_summary,
    run_ddpg_comparison,
    run_edgebol_comparison,
)
from repro.experiments.convergence import ConvergenceSetting, run_convergence
from repro.experiments.dynamic import DynamicSetting, run_dynamic
from repro.experiments.heterogeneous import run_heterogeneous_cell
from repro.experiments.recorder import write_csv
from repro.experiments.runner import band
from repro.experiments.static import CONSTRAINT_SETTINGS, run_static_cell
from repro.experiments.tariff import (
    TariffSetting,
    band_costs,
    default_tariff,
    run_tariff_tracking,
)
from repro.telemetry import runtime as telemetry
from repro.testbed.config import TestbedConfig
from repro.utils.ascii import render_chart, render_table

_PROFILING_FIGURES = {
    1: ("fig01_precision_delay", lambda env: profiling.fig1_precision_vs_delay(env)),
    2: ("fig02_delay_serverpower", lambda env: profiling.fig2_delay_vs_server_power(env)),
    3: ("fig03_gpu_policies", lambda env: profiling.fig3_gpu_policies(env)),
    4: ("fig04_precision_serverpower", lambda env: profiling.fig4_precision_vs_server_power(env)),
    5: ("fig05_bspower_mcs", lambda env: profiling.fig5_bs_power_vs_mcs(env)),
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out", type=Path, default=Path("results"),
                        help="output directory for CSV files")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--telemetry", type=Path, default=None, metavar="JSONL",
        help="record a telemetry trace (spans + metrics) to this JSONL file",
    )


def cmd_profile(args) -> int:
    from repro.testbed.scenarios import static_scenario

    if args.figure == 6:
        rows = profiling.fig6_bs_power_vs_mcs_10x(rng=args.seed)
        name = "fig06_bspower_10x"
    else:
        env = static_scenario(mean_snr_db=35.0, rng=args.seed)
        name, fn = _PROFILING_FIGURES[args.figure]
        rows = fn(env)
    path = write_csv(args.out / f"{name}.csv", rows)
    keys = [k for k in rows[0] if k != "dots"]
    print(profiling.summarize(rows, [k for k in keys if not k.startswith(("delay", "map", "bs_", "server", "gpu_delay", "mean_mcs"))],
                              [k for k in keys if k.startswith(("delay", "map", "bs_", "server", "gpu_delay"))]))
    print(f"\nwrote {path}")
    return 0


def cmd_convergence(args) -> int:
    setting = ConvergenceSetting(
        n_periods=args.periods, n_repetitions=args.repetitions,
        n_levels=args.levels,
    )
    all_rows = []
    for delta2 in args.delta2:
        logs = [
            run_convergence(delta2, setting=setting, seed=seed)
            for seed in range(setting.n_repetitions)
        ]
        median, low, high = band(logs, "cost")
        for t in range(len(median)):
            all_rows.append({
                "delta2": delta2, "t": t, "median": median[t],
                "p10": low[t], "p90": high[t],
            })
        print(render_chart(
            {"median cost": median},
            title=f"convergence, delta2={delta2:g}",
        ))
    path = write_csv(args.out / "convergence.csv", all_rows)
    print(f"\nwrote {path}")
    return 0


def cmd_static(args) -> int:
    testbed = TestbedConfig(n_levels=args.levels)
    results = []
    for constraints in CONSTRAINT_SETTINGS:
        for delta2 in args.delta2:
            results.append(run_static_cell(
                constraints, delta2, n_periods=args.periods,
                seed=args.seed, testbed=testbed,
            ))
    print(render_table(
        ["d_max", "rho_min", "delta2", "cost", "oracle", "server W",
         "BS W", "res", "airtime", "gpu", "mcs"],
        [
            [r.d_max_s, r.rho_min, r.delta2, r.cost, r.oracle_cost,
             r.server_power_w, r.bs_power_w, r.resolution, r.airtime,
             r.gpu_speed, r.mcs_fraction]
            for r in results
        ],
    ))
    path = write_csv(args.out / "static.csv", [r.as_dict() for r in results])
    print(f"\nwrote {path}")
    return 0


def cmd_heterogeneous(args) -> int:
    testbed = TestbedConfig(n_levels=args.levels)
    results = []
    for delta2 in args.delta2:
        for n_users in args.users:
            results.append(run_heterogeneous_cell(
                n_users, delta2, n_periods=args.periods, seed=args.seed,
                testbed=testbed,
            ))
    print(render_table(
        ["delta2", "users", "EdgeBOL", "oracle", "gap", "delay viol."],
        [
            [r.delta2, r.n_users, r.edgebol_cost, r.oracle_cost, r.gap,
             r.delay_violation_rate]
            for r in results
        ],
    ))
    path = write_csv(args.out / "heterogeneous.csv", [r.as_dict() for r in results])
    print(f"\nwrote {path}")
    return 0


def cmd_dynamic(args) -> int:
    setting = DynamicSetting(n_periods=args.periods)
    log = run_dynamic(
        setting, seed=args.seed, testbed=TestbedConfig(n_levels=args.levels)
    )
    print(render_chart({"SNR dB": log.snr_db}, title="context"))
    print(render_chart({"|S_t|": log.safe_set_size}, title="safe-set size"))
    path = write_csv(args.out / "dynamic.csv", log.as_dict())
    print(f"\nwrote {path}")
    return 0


def cmd_comparison(args) -> int:
    setting = ComparisonSetting(
        n_periods=args.periods,
        first_switch=args.periods // 3,
        second_switch=2 * args.periods // 3,
        n_levels=args.levels,
    )
    edgebol_log = run_edgebol_comparison(setting, seed=args.seed)
    ddpg_log = run_ddpg_comparison(setting, seed=args.seed)
    rows = []
    for agent, log in (("edgebol", edgebol_log), ("ddpg", ddpg_log)):
        for p in phase_summary(log, setting):
            rows.append({"agent": agent, **p})
    print(render_table(
        ["agent", "phase", "mean cost", "delay viol.", "mAP viol."],
        [
            [r["agent"], r["phase"], r["mean_cost"],
             r["mean_delay_violation"], r["mean_map_violation"]]
            for r in rows
        ],
    ))
    write_csv(args.out / "comparison_edgebol.csv", edgebol_log.as_dict())
    path = write_csv(args.out / "comparison_ddpg.csv", ddpg_log.as_dict())
    print(f"\nwrote {path.parent}/comparison_*.csv")
    return 0


def cmd_tariff(args) -> int:
    setting = TariffSetting(n_periods=args.periods, n_levels=args.levels)
    tariff = default_tariff(setting)
    rows = []
    for decoupled in (False, True):
        log = run_tariff_tracking(
            decoupled, setting=setting, tariff=tariff, seed=args.seed
        )
        bands = band_costs(log, tariff, setting)
        for (d1, d2), cost in bands.items():
            rows.append({
                "decoupled": decoupled, "delta1": d1, "delta2": d2,
                "mean_cost": cost,
            })
        print(f"decoupled={decoupled}: mean cost {np.mean(log.cost):.1f}")
    print(render_table(
        ["decoupled", "delta1", "delta2", "mean cost"],
        [[r["decoupled"], r["delta1"], r["delta2"], r["mean_cost"]] for r in rows],
    ))
    path = write_csv(args.out / "tariff.csv", rows)
    print(f"\nwrote {path}")
    return 0


def cmd_telemetry_report(args) -> int:
    from repro.telemetry import report

    if args.selftest:
        print(report.selftest_report())
        print("\ntelemetry selftest ok")
        return 0
    if args.path is None:
        print("telemetry-report: provide a JSONL path or --selftest",
              file=sys.stderr)
        return 2
    print(report.render_file(args.path))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EdgeBOL reproduction: regenerate the paper's experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="Section 3 profiling sweeps (Figs. 1-6)")
    p.add_argument("--figure", type=int, choices=range(1, 7), required=True)
    _add_common(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("convergence", help="Fig. 9 convergence sweep")
    p.add_argument("--delta2", type=float, nargs="+", default=[1.0, 8.0, 64.0])
    p.add_argument("--periods", type=int, default=150)
    p.add_argument("--repetitions", type=int, default=3)
    p.add_argument("--levels", type=int, default=9)
    _add_common(p)
    p.set_defaults(fn=cmd_convergence)

    p = sub.add_parser("static", help="Figs. 10-11 static sweep")
    p.add_argument("--delta2", type=float, nargs="+", default=[1.0, 4.0, 16.0, 64.0])
    p.add_argument("--periods", type=int, default=150)
    p.add_argument("--levels", type=int, default=9)
    _add_common(p)
    p.set_defaults(fn=cmd_static)

    p = sub.add_parser("heterogeneous", help="Fig. 12 heterogeneous users")
    p.add_argument("--users", type=int, nargs="+", default=[2, 4, 6])
    p.add_argument("--delta2", type=float, nargs="+", default=[1.0, 8.0])
    p.add_argument("--periods", type=int, default=150)
    p.add_argument("--levels", type=int, default=7)
    _add_common(p)
    p.set_defaults(fn=cmd_heterogeneous)

    p = sub.add_parser("dynamic", help="Fig. 13 dynamic contexts")
    p.add_argument("--periods", type=int, default=150)
    p.add_argument("--levels", type=int, default=9)
    _add_common(p)
    p.set_defaults(fn=cmd_dynamic)

    p = sub.add_parser("comparison", help="Fig. 14 EdgeBOL vs DDPG")
    p.add_argument("--periods", type=int, default=600)
    p.add_argument("--levels", type=int, default=7)
    _add_common(p)
    p.set_defaults(fn=cmd_comparison)

    p = sub.add_parser("tariff", help="day/night tariff tracking (extension)")
    p.add_argument("--periods", type=int, default=300)
    p.add_argument("--levels", type=int, default=9)
    _add_common(p)
    p.set_defaults(fn=cmd_tariff)

    p = sub.add_parser(
        "telemetry-report",
        help="render a recorded telemetry JSONL trace (span tree + metrics)",
    )
    p.add_argument("path", nargs="?", type=Path, default=None,
                   help="trace file written via --telemetry")
    p.add_argument("--selftest", action="store_true",
                   help="generate and render a synthetic trace (CI smoke test)")
    p.set_defaults(fn=cmd_telemetry_report)

    return parser


def main(argv=None) -> int:
    """Entry point (also exposed as ``python -m repro``)."""
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "telemetry", None)
    if trace_path is not None:
        with telemetry.record(trace_path):
            status = args.fn(args)
        print(f"wrote telemetry trace {trace_path}")
        return status
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
