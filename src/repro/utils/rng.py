"""Random-number helpers.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
whole simulator reproducible: two runs with the same seed produce
identical traces.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh nondeterministic generator), an integer seed, or an
        existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected None, int or numpy Generator, got {type(rng)!r}")


def spawn_rngs(rng: "int | np.random.Generator | None", n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Uses the SeedSequence spawning protocol so children are statistically
    independent and stable across runs for a given parent seed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
