"""Random-number helpers.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
whole simulator reproducible: two runs with the same seed produce
identical traces.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh nondeterministic generator), an integer seed, a
        :class:`numpy.random.SeedSequence` (e.g. one node of a sweep's
        spawn tree), or an existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"expected None, int, SeedSequence or numpy Generator, got {type(rng)!r}"
    )


def spawn_rngs(rng: "int | np.random.Generator | None", n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Uses the SeedSequence spawning protocol so children are statistically
    independent and stable across runs for a given parent seed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def seed_tree(
    seed: "int | np.random.SeedSequence | np.random.Generator | None", n: int
) -> list[np.random.Generator]:
    """Split one seed into ``n`` independent generators via a spawn tree.

    This is the canonical way experiments derive the generators for
    their sub-components (environment, oracle environment, agent, ...):
    one :class:`numpy.random.SeedSequence` root, ``n`` spawned children,
    one generator per child.  It replaces ad-hoc ``seed + 1000``-style
    offsets, which silently collide across sweep cells.

    ``seed`` may be an integer, an existing ``SeedSequence`` (e.g. one
    cell of the sweep engine's per-cell tree, which is then spawned
    further), a ``Generator`` (children drawn via :func:`spawn_rngs`) or
    ``None`` (nondeterministic).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator) or seed is None:
        return spawn_rngs(seed, n)
    if isinstance(seed, (int, np.integer)):
        seed = np.random.SeedSequence(int(seed))
    if not isinstance(seed, np.random.SeedSequence):
        raise TypeError(
            f"expected None, int, SeedSequence or numpy Generator, got {type(seed)!r}"
        )
    return [np.random.default_rng(child) for child in seed.spawn(n)]
