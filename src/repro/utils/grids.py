"""Dense control-grid construction.

EdgeBOL searches a discretised control space ``X = H x A x Gamma x M``
(the paper uses 11 levels per dimension, |X| = 14641).  These helpers
build such grids as flat ``(n_points, n_dims)`` arrays so GP posteriors
can be evaluated with one vectorised kernel call.
"""

from __future__ import annotations

import numpy as np


def linear_levels(n_levels: int, low: float = 0.0, high: float = 1.0) -> np.ndarray:
    """Return ``n_levels`` equally spaced values in ``[low, high]``."""
    if n_levels < 1:
        raise ValueError(f"n_levels must be >= 1, got {n_levels}")
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    if n_levels == 1:
        return np.array([high], dtype=float)
    return np.linspace(low, high, n_levels)


def cartesian_grid(*axes: np.ndarray) -> np.ndarray:
    """Cartesian product of 1-D axes as an ``(n_points, n_axes)`` array.

    The first axis varies slowest (row-major order), matching
    ``itertools.product`` semantics.  Built with ``np.meshgrid``
    broadcasting rather than a Python-level product loop, so the
    14641-row paper grid assembles in microseconds.
    """
    if not axes:
        raise ValueError("at least one axis is required")
    arrays = [np.asarray(a, dtype=float).ravel() for a in axes]
    for i, a in enumerate(arrays):
        if a.size == 0:
            raise ValueError(f"axis {i} is empty")
    mesh = np.meshgrid(*arrays, indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=1)


def nearest_grid_index(grid: np.ndarray, point: np.ndarray) -> int:
    """Index of the grid row closest (Euclidean) to ``point``."""
    grid = np.asarray(grid, dtype=float)
    point = np.asarray(point, dtype=float).ravel()
    if grid.ndim != 2 or grid.shape[1] != point.size:
        raise ValueError(
            f"grid shape {grid.shape} incompatible with point of size {point.size}"
        )
    distances = np.sum((grid - point[None, :]) ** 2, axis=1)
    return int(np.argmin(distances))
