"""Plain-text rendering for experiment outputs.

The evaluation harness reproduces the paper's *figures*; with no plotting
dependency available we render each series as an ASCII line chart plus a
numeric table, which is what the benchmark targets print.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 float_fmt: str = "{:.4g}") -> str:
    """Render rows as a fixed-width text table.

    Floats are formatted with ``float_fmt``; everything else with ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float) or isinstance(cell, np.floating):
            if math.isnan(cell):
                return "nan"
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_chart(series: "Mapping[str, Sequence[float]]", width: int = 72,
                 height: int = 16, title: str = "") -> str:
    """Render one or more numeric series as an ASCII line chart.

    Each series is resampled onto ``width`` columns; distinct series use
    distinct marker characters.  A y-axis with min/mid/max labels is drawn
    on the left.
    """
    if not series:
        raise ValueError("series mapping is empty")
    markers = "*o+x#@%&"
    arrays = {}
    for name, values in series.items():
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ValueError(f"series {name!r} is empty")
        arrays[name] = arr

    finite = np.concatenate([a[np.isfinite(a)] for a in arrays.values()])
    if finite.size == 0:
        return f"{title}\n(all values non-finite)"
    lo, hi = float(finite.min()), float(finite.max())
    if hi == lo:
        hi = lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, arr) in enumerate(arrays.items()):
        marker = markers[idx % len(markers)]
        xs = np.linspace(0, arr.size - 1, width)
        resampled = np.interp(xs, np.arange(arr.size), arr)
        for col, v in enumerate(resampled):
            if not math.isfinite(v):
                continue
            row = int(round((v - lo) / (hi - lo) * (height - 1)))
            canvas[height - 1 - row][col] = marker

    label_w = max(len(f"{x:.3g}") for x in (lo, hi, (lo + hi) / 2))
    lines = []
    if title:
        lines.append(title)
    for r, rowchars in enumerate(canvas):
        if r == 0:
            label = f"{hi:.3g}".rjust(label_w)
        elif r == height - 1:
            label = f"{lo:.3g}".rjust(label_w)
        elif r == height // 2:
            label = f"{(lo + hi) / 2:.3g}".rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(rowchars)}")
    lines.append(" " * label_w + " +" + "-" * width)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(arrays)
    )
    lines.append(" " * label_w + "   " + legend)
    return "\n".join(lines)


def render_histogram(values: Sequence[float], bins: int = 10, width: int = 50,
                     title: str = "") -> str:
    """Render a horizontal-bar histogram of ``values``."""
    arr = np.asarray(list(values), dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return f"{title}\n(no finite values)"
    counts, edges = np.histogram(arr, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for count, left, right in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{left:10.4g}, {right:10.4g}) {bar} {count}")
    return "\n".join(lines)
