"""Streaming statistics used by KPI collectors and experiment recorders."""

from __future__ import annotations

import math

import numpy as np


class RunningStats:
    """Welford online mean/variance accumulator.

    Numerically stable single-pass computation; supports merging two
    accumulators (parallel collection) and weighted updates.
    """

    def __init__(self) -> None:
        self._n = 0.0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, value: float, weight: float = 1.0) -> None:
        """Add one observation with optional positive weight."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        value = float(value)
        self._n += weight
        delta = value - self._mean
        self._mean += delta * weight / self._n
        self._m2 += weight * delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values) -> None:
        """Push every element of an iterable."""
        for v in values:
            self.push(v)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to both streams combined."""
        merged = RunningStats()
        n = self._n + other._n
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = self._mean + delta * other._n / n
        merged._m2 = self._m2 + other._m2 + delta**2 * self._n * other._n / n
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    @property
    def count(self) -> float:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean if self._n > 0 else math.nan

    @property
    def variance(self) -> float:
        """Population variance of the stream."""
        return self._m2 / self._n if self._n > 0 else math.nan

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    @property
    def minimum(self) -> float:
        return self._min if self._n > 0 else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._n > 0 else math.nan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(n={self._n:g}, mean={self.mean:.6g}, "
            f"std={self.std:.6g}, min={self.minimum:.6g}, max={self.maximum:.6g})"
        )


def percentile_band(runs: np.ndarray, low: float = 10.0, high: float = 90.0):
    """Median and percentile band across repetitions.

    Parameters
    ----------
    runs:
        Array of shape ``(n_runs, n_steps)`` — one row per repetition.
    low, high:
        Percentiles of the shaded band (the paper uses 10th/90th).

    Returns
    -------
    (median, lower, upper):
        Three arrays of length ``n_steps``.
    """
    runs = np.asarray(runs, dtype=float)
    if runs.ndim != 2:
        raise ValueError(f"runs must be 2-D (n_runs, n_steps), got shape {runs.shape}")
    if not 0 <= low < high <= 100:
        raise ValueError(f"need 0 <= low < high <= 100, got {low}, {high}")
    median = np.median(runs, axis=0)
    lower = np.percentile(runs, low, axis=0)
    upper = np.percentile(runs, high, axis=0)
    return median, lower, upper
