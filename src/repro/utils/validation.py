"""Argument-validation helpers with informative error messages."""

from __future__ import annotations

import math

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive and finite, else raise."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Return ``value`` if non-negative and finite, else raise."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Return ``value`` if ``low <= value <= high``, else raise."""
    if not math.isfinite(value) or value < low or value > high:
        raise ValueError(f"{name} must be within [{low}, {high}], got {value!r}")
    return float(value)


def check_fraction(value: float, name: str) -> float:
    """Return ``value`` if in [0, 1], else raise."""
    return check_in_range(value, name, 0.0, 1.0)


def check_probability(value: float, name: str) -> float:
    """Alias of :func:`check_fraction` with probability semantics."""
    return check_in_range(value, name, 0.0, 1.0)


def check_finite_array(values: np.ndarray, name: str) -> np.ndarray:
    """Return ``values`` unchanged if every entry is finite, else raise.

    The error names the first offending coordinate (multi-dimensional
    index) and its value, so a NaN smuggled into a 14641-point grid
    sweep is locatable without a debugger.
    """
    finite = np.isfinite(values)
    if not np.all(finite):
        flat = int(np.flatnonzero(~finite.ravel())[0])
        index = tuple(int(i) for i in np.unravel_index(flat, values.shape))
        bad = values.ravel()[flat]
        raise ValueError(
            f"{name} must be finite; first non-finite value is {bad!r} "
            f"at index {index}"
        )
    return values
