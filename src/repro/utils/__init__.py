"""General-purpose utilities shared by every subsystem.

This package intentionally has no dependency on the rest of :mod:`repro`
so any module may import from it without creating cycles.
"""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import RunningStats, percentile_band
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "RunningStats",
    "percentile_band",
    "check_fraction",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
