"""Deterministic snapshot/restore for EdgeBOL agents and their worlds.

The fleet supervisor (:mod:`repro.oran.supervisor`) checkpoints each
cell periodically and, after a crash, restores the cell from the last
intact checkpoint and *replays* the periods since.  That only yields
zero-loss recovery if the restored state is **bit-identical** to the
live state at checkpoint time — close is not good enough, because the
GP Cholesky factor built by rank-1 extensions differs in the last bits
from a fresh full factorisation over the same data, and those bits
compound through the safe set and the acquisition.

The contract of this module, asserted by ``tests/test_state.py``:

* every float array is serialised **verbatim** (base64 of the raw
  little-endian bytes, not a decimal rendering);
* RNG stream positions are captured via
  ``Generator.bit_generator.state`` and restored exactly;
* GP internals (``_chol``/``_alpha``/``_factor_version``) are restored
  as-is — *never* recomputed — and the agent's
  :class:`~repro.core.posterior.SurrogateEngine` *cache* is part of
  the snapshot (:func:`engine_state`): its incrementally extended
  cross-kernel solves differ in the last float bits from a cold
  rebuild over the same factor, and those bits decide near-tie
  argmins when a context repeats;
* the safe set itself needs no dedicated state: eq. 8 is a pure
  function of the delay/mAP surrogates and the constraints, both of
  which are snapshotted.

Snapshot *payloads* are plain JSON-able dicts; :func:`encode_snapshot`
frames one with a SHA-256 checksum so :func:`decode_snapshot` detects
corruption (:class:`SnapshotCorruptionError`) instead of restoring
garbage — the supervisor then falls back to an older checkpoint.
"""

from __future__ import annotations

import base64
import hashlib
import json
from collections import deque

import numpy as np

from repro.ran.channel import GaussMarkovChannel, SnrTrace
from repro.testbed.config import CostWeights, ServiceConstraints

__all__ = [
    "SnapshotError",
    "SnapshotCorruptionError",
    "SNAPSHOT_FORMAT",
    "rng_state",
    "set_rng_state",
    "gp_state",
    "restore_gp_state",
    "injector_state",
    "restore_injector_state",
    "engine_state",
    "restore_engine_state",
    "agent_state",
    "restore_agent_state",
    "env_state",
    "restore_env_state",
    "tracer_state",
    "restore_tracer_state",
    "runlog_state",
    "restore_runlog_state",
    "encode_snapshot",
    "decode_snapshot",
]

#: Format tag stamped on framed snapshots (bump on layout changes).
SNAPSHOT_FORMAT = "edgebol-snapshot-v1"

#: Framing magic of :func:`encode_snapshot`.
_MAGIC = b"SNAP1:"

#: RunLog per-period series, in schema order (``safe_set_size`` is int).
_RUNLOG_FIELDS = (
    "cost", "delay_s", "map_score", "server_power_w", "bs_power_w",
    "safe_set_size", "snr_db", "resolution", "airtime", "gpu_speed",
    "mcs_fraction", "d_max_s", "rho_min",
)


class SnapshotError(RuntimeError):
    """A snapshot could not be taken or restored."""


class SnapshotCorruptionError(SnapshotError):
    """A framed snapshot failed its checksum or structural validation."""


# -- primitives -----------------------------------------------------------


def _encode_array(arr: np.ndarray) -> dict:
    """Bit-exact JSON-able form of one array (raw bytes, base64)."""
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _decode_array(payload: dict) -> np.ndarray:
    """Rebuild an array from :func:`_encode_array` output, verbatim."""
    raw = base64.b64decode(payload["data"].encode("ascii"))
    arr = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return arr.reshape(tuple(payload["shape"])).copy()


def _maybe_encode(arr) -> "dict | None":
    return None if arr is None else _encode_array(arr)


def _maybe_decode(payload) -> "np.ndarray | None":
    return None if payload is None else _decode_array(payload)


def rng_state(generator: np.random.Generator) -> dict:
    """JSON-able position of one ``numpy`` Generator stream."""
    return generator.bit_generator.state


def set_rng_state(generator: np.random.Generator, state: dict) -> None:
    """Restore a Generator to a :func:`rng_state` position."""
    generator.bit_generator.state = state


# -- Gaussian processes ---------------------------------------------------


def gp_state(gp) -> dict:
    """Full mutable state of one :class:`~repro.core.gp.GaussianProcess`.

    Captures the observation buffers, the *exact* Cholesky factor and
    ``alpha`` vector (a restored factor must match the live rank-1
    lineage bit for bit), the factor version, the degradation-ladder
    counters and the kernel hyperparameters.
    """
    kernel = gp.kernel
    kernel_payload = {
        "lengthscales": _encode_array(kernel.lengthscales),
        "output_scale": float(kernel.output_scale),
    }
    if hasattr(kernel, "nu"):
        kernel_payload["nu"] = float(kernel.nu)
    return {
        "kernel": kernel_payload,
        "noise_variance": float(gp.noise_variance),
        "prior_mean": float(gp.prior_mean),
        "x": _maybe_encode(gp._x),
        "y": _maybe_encode(gp._y),
        "chol": _maybe_encode(gp._chol),
        "alpha": _maybe_encode(gp._alpha),
        "factor_version": int(gp._factor_version),
        "jitter_retries": int(gp._jitter_retries),
        "rank1_fallbacks": int(gp._rank1_fallbacks),
        "last_jitter": float(gp._last_jitter),
        "evictions": int(gp._evictions),
    }


def restore_gp_state(gp, state: dict) -> None:
    """Restore a GP to a :func:`gp_state` snapshot, bit-identically.

    Bypasses the ``kernel``/``noise_variance`` property setters and
    :meth:`~repro.core.gp.GaussianProcess.set_prior_mean` — each would
    bump ``_factor_version`` or recompute ``_alpha``, breaking the
    verbatim-restore guarantee.  Hyperparameters are written onto the
    *existing* kernel object so engine/estimator references stay valid.
    """
    kernel_payload = state["kernel"]
    gp._kernel.lengthscales = _decode_array(kernel_payload["lengthscales"])
    gp._kernel.output_scale = float(kernel_payload["output_scale"])
    if "nu" in kernel_payload:
        gp._kernel.nu = float(kernel_payload["nu"])
    gp._noise_variance = float(state["noise_variance"])
    gp.prior_mean = float(state["prior_mean"])
    gp._x = _maybe_decode(state["x"])
    gp._y = _maybe_decode(state["y"])
    gp._chol = _maybe_decode(state["chol"])
    gp._alpha = _maybe_decode(state["alpha"])
    gp._factor_version = int(state["factor_version"])
    gp._jitter_retries = int(state["jitter_retries"])
    gp._rank1_fallbacks = int(state["rank1_fallbacks"])
    gp._last_jitter = float(state["last_jitter"])
    gp._evictions = int(state["evictions"])


# -- fault injectors ------------------------------------------------------


def injector_state(injector) -> dict:
    """Mutable state of one :class:`~repro.faults.injector.FaultInjector`.

    The injector's RNG position and opportunity counters are part of a
    cell's causal state: a replayed period must see the same firing
    decisions the uninterrupted run saw.
    """
    return {
        "rng": rng_state(injector._rng),
        "opportunities": [int(n) for n in injector._opportunities],
        "fired": [int(n) for n in injector._fired],
        "counts": {key: int(n) for key, n in injector.counts.items()},
        "gp_raise_budget": int(injector._gp_raise_budget),
    }


def restore_injector_state(injector, state: dict) -> None:
    """Restore an injector to an :func:`injector_state` snapshot."""
    set_rng_state(injector._rng, state["rng"])
    injector._opportunities = [int(n) for n in state["opportunities"]]
    injector._fired = [int(n) for n in state["fired"]]
    injector.counts = {key: int(n) for key, n in state["counts"].items()}
    injector._gp_raise_budget = int(state["gp_raise_budget"])


# -- the posterior engine cache -------------------------------------------


def engine_state(engine) -> dict:
    """Warm cross-kernel cache of a SurrogateEngine, bit-exactly.

    The cache is *causal* state, not just a speed-up: a cached entry's
    solves were built by incremental blocked extensions
    (:meth:`SurrogateEngine._extend_state`), which differ in the last
    float bits from the single full triangular solve a cold rebuild
    performs over the same factor.  Dropping the cache on restore and
    rebuilding would therefore perturb posteriors by ~1e-13 — enough to
    flip a near-tie ``argmin`` when a context repeats (the static
    scenario repeats its context every period).  Entries are serialised
    in LRU order; the joint grids are *not* stored (they are a pure
    deterministic function of context + control grid).
    """
    entries = []
    for key, (joint, states) in engine._cache.items():
        heads = {}
        for name, head_state in states.items():
            n = head_state.n
            heads[name] = {
                "n": int(n),
                "factor_version": int(head_state.factor_version),
                "prior_var": _encode_array(head_state.prior_var),
                "cross": _encode_array(head_state.cross[:n]),
                "v": _encode_array(head_state.v[:n]),
            }
        entries.append({
            "context": _encode_array(
                np.frombuffer(key, dtype=float)
            ),
            "heads": heads,
        })
    return {"entries": entries}


def restore_engine_state(engine, state: dict) -> None:
    """Restore a SurrogateEngine cache to an :func:`engine_state` snapshot.

    Must run *after* the per-head GP restores: the recreated entries'
    ``factor_version`` stamps must describe the restored factors.
    """
    engine._cache.clear()
    for entry in state["entries"]:
        context = _decode_array(entry["context"])
        joint, states = engine._entry(context)
        for name, payload in entry["heads"].items():
            if name not in engine._heads:
                raise SnapshotError(
                    f"snapshot engine cache names head {name!r} unknown "
                    f"to the engine ({sorted(engine._heads)})"
                )
            head_state = engine._state_for(name, joint, states)
            n = int(payload["n"])
            head_state.prior_var = _decode_array(payload["prior_var"])
            head_state._reserve(n)
            head_state.cross[:n] = _decode_array(payload["cross"])
            head_state.v[:n] = _decode_array(payload["v"])
            head_state.n = n
            head_state.factor_version = int(payload["factor_version"])


# -- the EdgeBOL agent ----------------------------------------------------


def _gp_injector_of(agent):
    """The agent's GP fault injector, or None (no plan installed)."""
    hook = getattr(agent, "_gp_fault_hook", None)
    return None if hook is None else hook.__self__


def agent_state(agent) -> dict:
    """Full mutable state of one :class:`~repro.core.edgebol.EdgeBOL`.

    Heads (including the decoupled-power extension's, when enabled),
    constraints and cost weights, robustness counters, the spike-gate
    history and — when a fault plan is installed — the GP injector's
    stream position.
    """
    state = {
        "heads": {
            name: gp_state(gp)
            for name, gp in agent.head_surrogates().items()
        },
        "constraints": {
            "d_max_s": float(agent.constraints.d_max_s),
            "rho_min": float(agent.constraints.rho_min),
        },
        "cost_weights": {
            "delta1": float(agent.cost_weights.delta1),
            "delta2": float(agent.cost_weights.delta2),
        },
        "quarantined": int(agent._quarantined),
        "degraded_periods": int(agent._degraded_periods),
        "surrogate_failures": int(agent._surrogate_failures),
        "recoveries": int(agent._recoveries),
        "surrogate_down": bool(agent._surrogate_down),
        "recent_costs": [float(c) for c in agent._recent_costs],
        "last_safe_size": (
            None if agent._last_safe_size is None
            else int(agent._last_safe_size)
        ),
        "engine": engine_state(agent._engine),
        "gp_injector": None,
    }
    injector = _gp_injector_of(agent)
    if injector is not None:
        state["gp_injector"] = injector_state(injector)
    return state


def restore_agent_state(agent, state: dict) -> None:
    """Restore an agent to an :func:`agent_state` snapshot.

    Order matters: constraints first (so ``_sync_delay_pessimism``
    derives ``_delay_clip``), then the verbatim per-head GP states
    (overwriting the prior-mean recomputation the sync just did), then
    the counters, and a :meth:`SurrogateEngine.reset_cache` **last** —
    the engine's incremental caches are keyed on factor versions that
    the restore may have rolled backwards.
    """
    agent.constraints = ServiceConstraints(**state["constraints"])
    agent.cost_weights = CostWeights(**state["cost_weights"])
    agent._sync_delay_pessimism()
    heads = agent.head_surrogates()
    snapped = state["heads"]
    if set(snapped) != set(heads):
        raise SnapshotError(
            f"snapshot heads {sorted(snapped)} do not match the agent's "
            f"{sorted(heads)} — was the agent built with the same config?"
        )
    for name, gp in heads.items():
        restore_gp_state(gp, snapped[name])
    agent._quarantined = int(state["quarantined"])
    agent._degraded_periods = int(state["degraded_periods"])
    agent._surrogate_failures = int(state["surrogate_failures"])
    agent._recoveries = int(state["recoveries"])
    agent._surrogate_down = bool(state["surrogate_down"])
    agent._recent_costs = deque(
        (float(c) for c in state["recent_costs"]),
        maxlen=agent._recent_costs.maxlen,
    )
    agent._last_safe_size = (
        None if state["last_safe_size"] is None
        else int(state["last_safe_size"])
    )
    injector = _gp_injector_of(agent)
    if injector is not None and state["gp_injector"] is not None:
        restore_injector_state(injector, state["gp_injector"])
    # The warm cache is restored verbatim (never rebuilt): incremental
    # and from-scratch solves differ in the last float bits, and those
    # bits decide near-tie argmins.  reset_cache() first so stale
    # post-snapshot entries cannot survive the rollback.
    agent._engine.reset_cache()
    restore_engine_state(agent._engine, state["engine"])


# -- the testbed environment ----------------------------------------------


def _channel_state(channel) -> dict:
    if isinstance(channel, GaussMarkovChannel):
        return {
            "type": "gauss_markov",
            "current": float(channel._current),
            "mean_snr_db": float(channel.mean_snr_db),
            "rng": rng_state(channel._rng),
        }
    if isinstance(channel, SnrTrace):
        return {"type": "trace", "index": int(channel._index)}
    raise SnapshotError(
        f"cannot snapshot channel of type {type(channel).__name__}"
    )


def _restore_channel_state(channel, state: dict) -> None:
    if state["type"] == "gauss_markov":
        channel._current = float(state["current"])
        channel.mean_snr_db = float(state["mean_snr_db"])
        set_rng_state(channel._rng, state["rng"])
    elif state["type"] == "trace":
        channel._index = int(state["index"])
    else:
        raise SnapshotError(f"unknown channel state type {state['type']!r}")


def env_state(env) -> dict:
    """Full stochastic state of an :class:`EdgeAIEnvironment`.

    Per-channel process state, the four measurement RNG streams, the
    SNRs already drawn for the upcoming period, the load multiplier and
    (when a plan is installed) the sensor fault injector.
    """
    state = {
        "channels": [_channel_state(ch) for ch in env.channels],
        "noise_rng": rng_state(env._noise._rng),
        "meter_rng": rng_state(env._meter._rng),
        "detector_rng": rng_state(env._detector._rng),
        "dataset_rng": rng_state(env._dataset._rng),
        "current_snrs": [float(s) for s in env._current_snrs],
        "load_multiplier": float(env.service_model.load_multiplier),
        "sensor_faults": None,
    }
    if env._sensor_faults is not None:
        state["sensor_faults"] = injector_state(env._sensor_faults)
    return state


def restore_env_state(env, state: dict) -> None:
    """Restore an environment to an :func:`env_state` snapshot."""
    channels = state["channels"]
    if len(channels) != len(env.channels):
        raise SnapshotError(
            f"snapshot covers {len(channels)} channels but the environment "
            f"has {len(env.channels)}"
        )
    for channel, payload in zip(env.channels, channels):
        _restore_channel_state(channel, payload)
    set_rng_state(env._noise._rng, state["noise_rng"])
    set_rng_state(env._meter._rng, state["meter_rng"])
    set_rng_state(env._detector._rng, state["detector_rng"])
    set_rng_state(env._dataset._rng, state["dataset_rng"])
    env._current_snrs = [float(s) for s in state["current_snrs"]]
    env.set_load_multiplier(float(state["load_multiplier"]))
    if env._sensor_faults is not None and state["sensor_faults"] is not None:
        restore_injector_state(env._sensor_faults, state["sensor_faults"])


# -- the decision tracer --------------------------------------------------


def tracer_state(tracer) -> dict:
    """Streaming state of a :class:`~repro.obs.decision.DecisionTracer`.

    Only legal at a period boundary: an open ``on_select`` record
    (``_pending``) captures numpy posteriors mid-flight and cannot be
    serialised faithfully, so the supervisor checkpoints between
    periods only.
    """
    if tracer._pending is not None:
        raise SnapshotError(
            "tracer has an open period (_pending is set); snapshots are "
            "only taken at period boundaries"
        )
    drift = tracer.drift
    return {
        "calibration": {
            head: {
                "z": float(cal.z),
                "n": int(cal.n),
                "within": int(cal.within),
                "error_sum": float(cal.error_sum),
                "error_sq_sum": float(cal.error_sq_sum),
            }
            for head, cal in tracer.calibration.items()
        },
        "drift": {
            "contexts": [
                [float(v) for v in ctx] for ctx in drift._contexts
            ],
            "episodes": int(drift._episodes),
            "in_episode": bool(drift._in_episode),
        },
        "t": int(tracer._t),
        "cumulative_regret": float(tracer._cumulative_regret),
        "emitted": int(tracer._emitted),
        "violations": int(tracer._violations),
        "quarantined_rounds": int(tracer._quarantined_rounds),
        "degraded_rounds": int(tracer._degraded_rounds),
    }


def restore_tracer_state(tracer, state: dict) -> None:
    """Restore a tracer to a :func:`tracer_state` snapshot."""
    snapped = state["calibration"]
    if set(snapped) != set(tracer.calibration):
        raise SnapshotError(
            f"snapshot calibration heads {sorted(snapped)} do not match "
            f"the tracer's {sorted(tracer.calibration)}"
        )
    for head, cal in tracer.calibration.items():
        payload = snapped[head]
        cal.z = float(payload["z"])
        cal.n = int(payload["n"])
        cal.within = int(payload["within"])
        cal.error_sum = float(payload["error_sum"])
        cal.error_sq_sum = float(payload["error_sq_sum"])
    drift = tracer.drift
    drift._contexts = deque(
        (np.asarray(ctx, dtype=float) for ctx in state["drift"]["contexts"]),
        maxlen=drift.window,
    )
    drift._episodes = int(state["drift"]["episodes"])
    drift._in_episode = bool(state["drift"]["in_episode"])
    tracer._t = int(state["t"])
    tracer._pending = None
    tracer._cumulative_regret = float(state["cumulative_regret"])
    tracer._emitted = int(state["emitted"])
    tracer._violations = int(state["violations"])
    tracer._quarantined_rounds = int(state["quarantined_rounds"])
    tracer._degraded_rounds = int(state["degraded_rounds"])


# -- run logs -------------------------------------------------------------


def runlog_state(log) -> dict:
    """Per-period series of a RunLog, each serialised bit-exactly."""
    state = {}
    for name in _RUNLOG_FIELDS:
        dtype = np.int64 if name == "safe_set_size" else np.float64
        state[name] = _encode_array(
            np.asarray(getattr(log, name), dtype=dtype)
        )
    return state


def restore_runlog_state(log, state: dict) -> None:
    """Restore a RunLog's series (end-of-run extras are left alone)."""
    for name in _RUNLOG_FIELDS:
        setattr(log, name, _decode_array(state[name]).tolist())


# -- framing --------------------------------------------------------------


def encode_snapshot(payload: dict) -> bytes:
    """Frame a snapshot payload: magic + SHA-256 + canonical JSON."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    digest = hashlib.sha256(body).hexdigest()
    return _MAGIC + digest.encode("ascii") + b"\n" + body


def decode_snapshot(blob: bytes) -> dict:
    """Verify and parse a framed snapshot.

    Raises :class:`SnapshotCorruptionError` on any framing, checksum or
    JSON failure — the caller (the supervisor) treats that as "this
    checkpoint is unusable, try an older one".
    """
    if not isinstance(blob, (bytes, bytearray)):
        raise SnapshotCorruptionError(
            f"snapshot must be bytes, got {type(blob).__name__}"
        )
    blob = bytes(blob)
    if not blob.startswith(_MAGIC):
        raise SnapshotCorruptionError("snapshot magic missing")
    header, sep, body = blob[len(_MAGIC):].partition(b"\n")
    if not sep:
        raise SnapshotCorruptionError("snapshot header is unterminated")
    digest = hashlib.sha256(body).hexdigest().encode("ascii")
    if header != digest:
        raise SnapshotCorruptionError(
            "snapshot checksum mismatch — the blob was corrupted"
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptionError(
            f"snapshot body is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise SnapshotCorruptionError("snapshot payload must be an object")
    return payload
