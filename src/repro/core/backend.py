"""Pluggable array/linear-algebra backend for the GP numeric core.

Every array operation the GP stack performs — kernel algebra in
:mod:`repro.core.kernels`, Cholesky factorisation in
:mod:`repro.core.numerics`, posterior solves in :mod:`repro.core.gp`
and the grid sweeps of :mod:`repro.core.posterior` — routes through a
small array-API-style protocol (:class:`ArrayBackend`: ``matmul``,
``einsum``, ``stack``, ``cholesky``, ``solve_triangular``,
``cho_solve``).  The default :class:`NumpyBackend` delegates to the
exact numpy/scipy routines the pre-refactor code called, so dense runs
stay bit-identical; a cupy or torch backend drops in later by
registering a factory under a new name without touching any caller.

The module also owns :class:`NumericsConfig` — the process-wide
description of the active numerics *mode* (array backend, stacked
multi-head solves, sparse observation budget) — resolved in priority
order from an explicitly installed config (:func:`install_numerics` /
:func:`use_numerics`), then from environment variables, then from the
dense-numpy defaults.  Environment-variable selection is what lets a
CI leg force the batched path on for the whole test suite, and what
carries a CLI ``--numerics`` choice into sweep worker processes (the
environment is inherited; an installed config is not).

Environment variables
---------------------

``REPRO_NUMERICS_BACKEND``
    Array backend name (default ``numpy``).
``REPRO_BATCHED_HEADS``
    ``1``/``true`` enables stacked multi-head grid solves in
    :class:`~repro.core.posterior.SurrogateEngine`.
``REPRO_SPARSE_GP``
    ``1``/``true`` enables the inducing-subset sparse mode (observation
    budget per GP head, see :mod:`repro.core.sparse`).
``REPRO_GP_BUDGET``
    Sparse-mode observation budget (default 256).

See ``docs/NUMERICS.md`` for the full selection and trade-off guide.
"""

from __future__ import annotations

import abc
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace

import numpy as np
from scipy.linalg import cho_solve as _scipy_cho_solve
from scipy.linalg import cholesky as _scipy_cholesky
from scipy.linalg import solve_triangular as _scipy_solve_triangular

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "NumericsConfig",
    "register_backend",
    "available_backends",
    "get_backend",
    "active_numerics",
    "install_numerics",
    "uninstall_numerics",
    "use_numerics",
    "numerics_env",
    "ENV_BACKEND",
    "ENV_BATCHED",
    "ENV_SPARSE",
    "ENV_BUDGET",
]

#: Environment variable selecting the array backend by name.
ENV_BACKEND = "REPRO_NUMERICS_BACKEND"
#: Environment variable enabling stacked multi-head solves ("1"/"true").
ENV_BATCHED = "REPRO_BATCHED_HEADS"
#: Environment variable enabling the sparse observation-budget mode.
ENV_SPARSE = "REPRO_SPARSE_GP"
#: Environment variable overriding the sparse observation budget.
ENV_BUDGET = "REPRO_GP_BUDGET"

#: Values of a boolean environment variable that count as "on".
_TRUTHY = frozenset({"1", "true", "yes", "on"})


class ArrayBackend(abc.ABC):
    """Array-API-style protocol for the GP stack's linear algebra.

    A backend bundles an array namespace (:attr:`xp`: ``numpy``-like
    module used for element-wise math, reductions and construction)
    with the dense linear-algebra primitives the GP stack needs.  The
    batched variants accept a leading stack dimension — ``(H, n, n)``
    factors against ``(H, n, m)`` right-hand sides — which is how the
    multi-head engine issues one solve across heads.
    """

    #: Registry name of the backend (e.g. ``"numpy"``).
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def xp(self):
        """The backend's array namespace (``numpy``-compatible module)."""

    @abc.abstractmethod
    def asarray(self, a, dtype=float):
        """Coerce ``a`` to a backend array of the given dtype."""

    @abc.abstractmethod
    def matmul(self, a, b):
        """Matrix product, broadcasting over leading stack dimensions."""

    @abc.abstractmethod
    def einsum(self, subscripts: str, *operands):
        """Einstein summation over backend arrays."""

    @abc.abstractmethod
    def stack(self, arrays, axis: int = 0):
        """Join same-shape arrays along a new axis."""

    @abc.abstractmethod
    def cholesky(self, a, lower: bool = True):
        """Cholesky factor of a (stack of) positive-definite matrices.

        Raises ``numpy.linalg.LinAlgError`` (or the backend's
        equivalent, which callers must translate) when the matrix is
        not positive definite — the degradation ladder in
        :func:`repro.core.numerics.robust_cholesky` depends on it.
        """

    @abc.abstractmethod
    def solve_triangular(self, a, b, lower: bool = True):
        """Solve ``a x = b`` for triangular ``a``; 2-D or stacked 3-D."""

    @abc.abstractmethod
    def cho_solve(self, chol, b, lower: bool = True):
        """Solve ``A x = b`` given the Cholesky factor of ``A``."""


class NumpyBackend(ArrayBackend):
    """Default backend: numpy arrays, scipy dense linear algebra.

    Delegates to exactly the routines the pre-backend code called
    (``scipy.linalg.cholesky`` / ``solve_triangular`` / ``cho_solve``,
    ``numpy`` for everything else) so dense results are bit-identical
    to the pre-refactor implementation.  Batched calls loop over the
    leading stack dimension — numpy has no native batched triangular
    solve — which still amortises the per-call Python overhead for the
    engine's grouped multi-head systems.
    """

    name = "numpy"

    @property
    def xp(self):
        """The ``numpy`` module."""
        return np

    def asarray(self, a, dtype=float):
        """``numpy.asarray`` with a float default dtype."""
        return np.asarray(a, dtype=dtype)

    def matmul(self, a, b):
        """``numpy.matmul`` (stacked GEMM for 3-D operands)."""
        return np.matmul(a, b)

    def einsum(self, subscripts: str, *operands):
        """``numpy.einsum``."""
        return np.einsum(subscripts, *operands)

    def stack(self, arrays, axis: int = 0):
        """``numpy.stack``."""
        return np.stack(arrays, axis=axis)

    def cholesky(self, a, lower: bool = True):
        """``scipy.linalg.cholesky``, looped over a stacked leading axis."""
        a = np.asarray(a)
        if a.ndim == 2:
            return _scipy_cholesky(a, lower=lower)
        return np.stack([_scipy_cholesky(m, lower=lower) for m in a])

    def solve_triangular(self, a, b, lower: bool = True):
        """``scipy.linalg.solve_triangular``, looped over a stacked axis."""
        a = np.asarray(a)
        if a.ndim == 2:
            return _scipy_solve_triangular(a, b, lower=lower)
        b = np.asarray(b)
        return np.stack([
            _scipy_solve_triangular(m, rhs, lower=lower)
            for m, rhs in zip(a, b)
        ])

    def cho_solve(self, chol, b, lower: bool = True):
        """``scipy.linalg.cho_solve`` on one factored system."""
        return _scipy_cho_solve((chol, lower), b)


class _MissingDependencyBackend(ArrayBackend):
    """Placeholder for a backend whose library is not installed.

    Registered under the real name so ``available_backends`` can
    advertise it, but every use raises a clear, actionable error
    instead of an ``ImportError`` deep inside a solve.
    """

    def __init__(self, name: str, module: str) -> None:
        """Record the backend ``name`` and the missing ``module``."""
        self.name = name
        self._module = module

    def _unavailable(self):
        raise RuntimeError(
            f"array backend '{self.name}' requires the '{self._module}' "
            f"package, which is not installed in this environment; install "
            f"it or select the 'numpy' backend (unset {ENV_BACKEND})"
        )

    @property
    def xp(self):
        """Raises: the backing library is not installed."""
        self._unavailable()

    def asarray(self, a, dtype=float):
        """Raises: the backing library is not installed."""
        self._unavailable()

    def matmul(self, a, b):
        """Raises: the backing library is not installed."""
        self._unavailable()

    def einsum(self, subscripts: str, *operands):
        """Raises: the backing library is not installed."""
        self._unavailable()

    def stack(self, arrays, axis: int = 0):
        """Raises: the backing library is not installed."""
        self._unavailable()

    def cholesky(self, a, lower: bool = True):
        """Raises: the backing library is not installed."""
        self._unavailable()

    def solve_triangular(self, a, b, lower: bool = True):
        """Raises: the backing library is not installed."""
        self._unavailable()

    def cho_solve(self, chol, b, lower: bool = True):
        """Raises: the backing library is not installed."""
        self._unavailable()


def _make_cupy_backend() -> ArrayBackend:
    """CuPy backend when importable, else an explanatory placeholder."""
    try:
        import cupy  # noqa: F401
    except ImportError:
        return _MissingDependencyBackend("cupy", "cupy")
    raise RuntimeError(
        "the cupy backend is registered but not yet implemented; "
        "register a custom ArrayBackend under the 'cupy' name"
    )  # pragma: no cover - requires cupy installed


def _make_torch_backend() -> ArrayBackend:
    """Torch backend when importable, else an explanatory placeholder."""
    try:
        import torch  # noqa: F401
    except ImportError:
        return _MissingDependencyBackend("torch", "torch")
    raise RuntimeError(
        "the torch backend is registered but not yet implemented; "
        "register a custom ArrayBackend under the 'torch' name"
    )  # pragma: no cover - requires torch installed


#: Backend factories by name (instantiated lazily, cached).
_FACTORIES: dict = {
    "numpy": NumpyBackend,
    "cupy": _make_cupy_backend,
    "torch": _make_torch_backend,
}
_INSTANCES: dict = {}
_LOCK = threading.Lock()


def register_backend(name: str, factory) -> None:
    """Register (or replace) a backend factory under ``name``.

    ``factory`` is a zero-argument callable returning an
    :class:`ArrayBackend`; instantiation is lazy and cached.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    with _LOCK:
        _FACTORIES[str(name)] = factory
        _INSTANCES.pop(str(name), None)


def available_backends() -> tuple:
    """Registered backend names, in registration order."""
    return tuple(_FACTORIES)


def get_backend(name: str | None = None) -> ArrayBackend:
    """The backend instance for ``name`` (default: the active config's).

    Unknown names raise ``KeyError`` listing the registered backends.
    """
    if name is None:
        name = active_numerics().backend
    with _LOCK:
        backend = _INSTANCES.get(name)
        if backend is None:
            try:
                factory = _FACTORIES[name]
            except KeyError:
                raise KeyError(
                    f"unknown array backend '{name}' (registered: "
                    f"{', '.join(_FACTORIES)})"
                ) from None
            backend = factory()
            _INSTANCES[name] = backend
    return backend


# -- numerics-mode configuration ----------------------------------------


@dataclass(frozen=True)
class NumericsConfig:
    """Process-level description of the GP numerics mode.

    Attributes
    ----------
    backend:
        Array backend name (see :func:`available_backends`).
    batched_heads:
        Evaluate multi-head grid sweeps through stacked linear-algebra
        calls (one grouped cross-kernel build + one batched triangular
        solve) instead of per-head loops.  Numerically equivalent to
        the per-head path; opt-in because the dense default is the
        bit-identity reference.
    sparse:
        Bound every GP head to ``sparse_budget`` retained observations,
        evicting via the inducing-subset policy of
        :mod:`repro.core.sparse` — per-period cost stays flat as the
        nominal history grows.
    sparse_budget:
        Observation budget per head in sparse mode.
    sparse_block:
        Eviction granularity (points dropped per eviction are
        amortised over this many periods).
    recent_fraction:
        Fraction of the budget reserved for the newest observations in
        sparse mode (stream continuity under drift).
    variance_inflation:
        Multiplier applied to posterior standard deviations in the
        safe-set test and the acquisition.  1.0 (default) is a no-op;
        subset-of-data posteriors are already conservative (their
        variances upper-bound the full-data ones), so this exists for
        future *parametric* sparse approximations whose variances can
        under-cover.
    """

    backend: str = "numpy"
    batched_heads: bool = False
    sparse: bool = False
    sparse_budget: int = 256
    sparse_block: int = 64
    recent_fraction: float = 0.25
    variance_inflation: float = 1.0

    def __post_init__(self) -> None:
        """Validate budgets, fractions and the inflation factor."""
        if self.sparse_budget < 1:
            raise ValueError(
                f"sparse_budget must be >= 1, got {self.sparse_budget}"
            )
        if self.sparse_block < 1:
            raise ValueError(
                f"sparse_block must be >= 1, got {self.sparse_block}"
            )
        if not 0.0 <= self.recent_fraction <= 1.0:
            raise ValueError(
                f"recent_fraction must be in [0, 1], got {self.recent_fraction}"
            )
        if not self.variance_inflation >= 1.0:
            raise ValueError(
                f"variance_inflation must be >= 1.0, got "
                f"{self.variance_inflation}"
            )

    @property
    def mode(self) -> str:
        """Canonical mode label: dense, batched, sparse or sparse+batched."""
        if self.sparse and self.batched_heads:
            return "sparse+batched"
        if self.sparse:
            return "sparse"
        if self.batched_heads:
            return "batched"
        return "dense"

    @classmethod
    def from_mode(cls, mode: str, *, backend: str | None = None,
                  sparse_budget: int | None = None) -> "NumericsConfig":
        """Config from a CLI-style mode label (``sparse-batched`` ok)."""
        normalised = str(mode).replace("-", "+")
        known = {
            "dense": (False, False),
            "batched": (True, False),
            "sparse": (False, True),
            "sparse+batched": (True, True),
            "batched+sparse": (True, True),
        }
        if normalised not in known:
            raise ValueError(
                f"unknown numerics mode '{mode}' (expected one of dense, "
                f"batched, sparse, sparse-batched)"
            )
        batched, sparse = known[normalised]
        kwargs = {"batched_heads": batched, "sparse": sparse}
        if backend is not None:
            kwargs["backend"] = backend
        if sparse_budget is not None:
            kwargs["sparse_budget"] = sparse_budget
        return cls(**kwargs)

    @classmethod
    def from_env(cls, environ=None) -> "NumericsConfig":
        """Config read from the selection environment variables."""
        environ = os.environ if environ is None else environ
        kwargs = {}
        backend = environ.get(ENV_BACKEND)
        if backend:
            kwargs["backend"] = backend
        batched = environ.get(ENV_BATCHED)
        if batched is not None:
            kwargs["batched_heads"] = batched.strip().lower() in _TRUTHY
        sparse = environ.get(ENV_SPARSE)
        if sparse is not None:
            kwargs["sparse"] = sparse.strip().lower() in _TRUTHY
        budget = environ.get(ENV_BUDGET)
        if budget:
            try:
                kwargs["sparse_budget"] = int(budget)
            except ValueError:
                raise ValueError(
                    f"{ENV_BUDGET} must be an integer, got {budget!r}"
                ) from None
        return cls(**kwargs)

    def env_vars(self) -> dict:
        """The environment variables that reproduce this config.

        Setting these in ``os.environ`` is how the CLI carries a
        ``--numerics`` selection into sweep worker processes.
        """
        return {
            ENV_BACKEND: self.backend,
            ENV_BATCHED: "1" if self.batched_heads else "0",
            ENV_SPARSE: "1" if self.sparse else "0",
            ENV_BUDGET: str(self.sparse_budget),
        }


#: Explicitly installed process-local config (overrides the environment).
_ACTIVE: NumericsConfig | None = None


def active_numerics() -> NumericsConfig:
    """The resolved numerics config: installed > environment > defaults."""
    if _ACTIVE is not None:
        return _ACTIVE
    return NumericsConfig.from_env()


def install_numerics(config: NumericsConfig) -> None:
    """Install ``config`` as the process-local numerics default.

    Note that an installed config does **not** propagate to sweep
    worker processes — use :func:`numerics_env` (or the CLI flags,
    which set the environment) for multi-process runs.
    """
    global _ACTIVE
    if not isinstance(config, NumericsConfig):
        raise TypeError(
            f"expected a NumericsConfig, got {type(config).__name__}"
        )
    _ACTIVE = config


def uninstall_numerics() -> None:
    """Remove an installed config (environment/defaults apply again)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def use_numerics(config: NumericsConfig):
    """Context manager: install ``config`` for the block, then restore."""
    global _ACTIVE
    previous = _ACTIVE
    install_numerics(config)
    try:
        yield config
    finally:
        _ACTIVE = previous


def numerics_env(mode: str | None = None, *, backend: str | None = None,
                 sparse_budget: int | None = None,
                 environ=None) -> NumericsConfig:
    """Resolve CLI-style numerics flags and export them to ``environ``.

    ``mode``/``backend``/``sparse_budget`` override the corresponding
    environment-derived values; unspecified fields keep their current
    environment (or default) settings.  The resolved config's
    :meth:`NumericsConfig.env_vars` are written back to ``environ``
    (default ``os.environ``) so worker processes inherit the selection,
    and the config is returned.
    """
    environ = os.environ if environ is None else environ
    config = NumericsConfig.from_env(environ)
    if mode is not None:
        config = NumericsConfig.from_mode(
            mode,
            backend=backend if backend is not None else config.backend,
            sparse_budget=(
                sparse_budget if sparse_budget is not None
                else config.sparse_budget
            ),
        )
    else:
        if backend is not None:
            config = replace(config, backend=backend)
        if sparse_budget is not None:
            config = replace(config, sparse_budget=sparse_budget)
    environ.update(config.env_vars())
    return config
