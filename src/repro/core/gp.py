"""Exact Gaussian-process regression with incremental updates.

Implements the posterior equations (3)-(4) of the paper through a
Cholesky factorisation of ``K + zeta^2 I``:

* adding one observation is an O(N^2) rank-1 extension of the factor
  (no refactorisation), which keeps the per-period cost of Algorithm 1
  quadratic rather than cubic;
* an optional observation budget evicts the oldest points in blocks
  (subset-of-data), bounding memory and per-period cost for very long
  runs such as the 3000-period comparison of Fig. 14;
* numerical failures degrade instead of crashing: an unhealthy rank-1
  extension falls back to a full refactorisation, the refactorisation
  escalates diagonal jitter with bounded retries
  (:func:`repro.core.numerics.robust_cholesky`), and only an exhausted
  ladder raises a diagnosable
  :class:`~repro.core.numerics.NumericalInstabilityError` — see
  ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.backend import get_backend
from repro.core.kernels import Kernel
from repro.core.numerics import NumericalInstabilityError, robust_cholesky
from repro.telemetry import runtime as telemetry
from repro.utils.validation import check_finite_array, check_positive


class GaussianProcess:
    """Exact GP regression model with online updates.

    Parameters
    ----------
    kernel:
        Covariance function over the input space.
    noise_variance:
        Observation noise variance ``zeta^2`` (eq. 3-4).
    max_observations:
        Optional cap on retained observations.  When the buffer exceeds
        ``max_observations + eviction_block`` the oldest
        ``eviction_block`` points are dropped and the factor rebuilt.
    eviction_block:
        Eviction granularity (amortises the rebuild cost).
    prior_mean:
        Constant prior mean ``mu(z)``.  The paper assumes ``mu = 0``
        w.l.o.g.; for *safety-critical* surrogates a pessimistic prior
        mean (high for delay, low for mAP) makes unexplored regions
        fail the safe-set test instead of passing it optimistically.
    fault_hook:
        Optional ``hook(site, attempt)`` consulted before every
        factorisation attempt; the fault-injection subsystem
        (:mod:`repro.faults`) uses it to force deterministic
        ``LinAlgError`` failures.  ``None`` (default) adds no overhead.
    eviction_policy:
        Optional ``policy(x, y, budget) -> keep_indices`` deciding
        *which* observations to retain when the budget is exceeded
        (e.g. the inducing-subset selection of :mod:`repro.core.sparse`).
        ``None`` (default) keeps the historical oldest-block behaviour:
        drop the oldest ``eviction_block`` rows, retaining
        ``n - eviction_block`` points — bit-identical to the
        pre-policy implementation.  A policy trims the buffer all the
        way down to ``max_observations`` retained points.
    """

    def __init__(
        self,
        kernel: Kernel,
        noise_variance: float = 1e-4,
        max_observations: int | None = None,
        eviction_block: int = 100,
        prior_mean: float = 0.0,
        fault_hook=None,
        eviction_policy=None,
    ) -> None:
        self._factor_version = 0
        self.kernel = kernel
        self.noise_variance = noise_variance
        if not np.isfinite(prior_mean):
            raise ValueError(f"prior_mean must be finite, got {prior_mean}")
        self.prior_mean = float(prior_mean)
        if max_observations is not None and max_observations < 1:
            raise ValueError("max_observations must be >= 1 when set")
        if eviction_block < 1:
            raise ValueError("eviction_block must be >= 1")
        self.max_observations = max_observations
        self.eviction_block = int(eviction_block)
        self.eviction_policy = eviction_policy
        self._evictions = 0
        self._fault_hook = fault_hook
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._jitter_retries = 0
        self._rank1_fallbacks = 0
        self._last_jitter = 0.0

    # -- state ----------------------------------------------------------

    @property
    def kernel(self) -> Kernel:
        return self._kernel

    @kernel.setter
    def kernel(self, kernel: Kernel) -> None:
        self._kernel = kernel
        self._factor_version += 1

    @property
    def noise_variance(self) -> float:
        return self._noise_variance

    @noise_variance.setter
    def noise_variance(self, noise_variance: float) -> None:
        self._noise_variance = check_positive(noise_variance, "noise_variance")
        self._factor_version += 1

    @property
    def factor_version(self) -> int:
        """Counter identifying the current Cholesky factor lineage.

        Rank-1 extensions via :meth:`add` keep the version (the factor of
        the first N points is a leading principal block of the extended
        one, so caches keyed on it can grow incrementally); anything that
        rebuilds or invalidates the factor — :meth:`fit`, eviction, a
        kernel or noise change — bumps it.
        """
        return self._factor_version

    @property
    def jitter_retries(self) -> int:
        """Cumulative jittered Cholesky retries (degradation ladder)."""
        return self._jitter_retries

    @property
    def rank1_fallbacks(self) -> int:
        """Rank-1 extensions that fell back to a full refactorisation."""
        return self._rank1_fallbacks

    @property
    def last_jitter(self) -> float:
        """Diagonal jitter of the current factor (0.0 = bare Cholesky)."""
        return self._last_jitter

    @property
    def evictions(self) -> int:
        """How many budget evictions have trimmed the observation buffer."""
        return self._evictions

    @property
    def factor_available(self) -> bool:
        """Whether a usable Cholesky factor exists for the current data.

        ``False`` only after a factorisation exhausted the jitter ladder
        (:class:`~repro.core.numerics.NumericalInstabilityError`); a
        successful :meth:`fit` over the retained data restores it.
        """
        return self._x is None or self._chol is not None

    def _posterior_state(self):
        """``(x, chol, alpha, factor_version)`` without copies.

        Internal hot-path accessor for :class:`~repro.core.posterior.
        SurrogateEngine`; callers must treat the arrays as read-only.
        """
        return self._x, self._chol, self._alpha, self._factor_version

    @property
    def n_observations(self) -> int:
        return 0 if self._y is None else int(self._y.size)

    @property
    def inputs(self) -> np.ndarray:
        """Copy of the retained training inputs."""
        if self._x is None:
            return np.empty((0, self.kernel.n_dims))
        return self._x.copy()

    @property
    def targets(self) -> np.ndarray:
        """Copy of the retained training targets."""
        if self._y is None:
            return np.empty(0)
        return self._y.copy()

    # -- training -------------------------------------------------------

    def set_prior_mean(self, prior_mean: float) -> None:
        """Change the constant prior mean, recomputing the posterior.

        Cheap (one triangular solve); used when a safety surrogate's
        pessimism level must track a changed constraint threshold.
        """
        if not np.isfinite(prior_mean):
            raise ValueError(f"prior_mean must be finite, got {prior_mean}")
        self.prior_mean = float(prior_mean)
        if self._y is not None and self._chol is not None:
            self._alpha = get_backend().cho_solve(
                self._chol, self._y - self.prior_mean, lower=True
            )

    def fit(self, x: np.ndarray, y: np.ndarray) -> None:
        """Replace the training set and refactorise (O(N^3) Cholesky)."""
        with telemetry.span("core.gp.fit") as sp:
            x = np.asarray(x, dtype=float)
            if x.ndim == 1:
                x = x[None, :]
            y = np.asarray(y, dtype=float).ravel()
            if x.shape[0] != y.size:
                raise ValueError(
                    f"got {x.shape[0]} inputs but {y.size} targets"
                )
            if x.shape[1] != self.kernel.n_dims:
                raise ValueError(
                    f"inputs must have {self.kernel.n_dims} dims, got {x.shape[1]}"
                )
            check_finite_array(x, "training inputs")
            check_finite_array(y, "training targets")
            if sp:
                sp.set("n", int(y.size))
            if y.size == 0:
                self._x = self._y = self._chol = self._alpha = None
                self._factor_version += 1
                return
            self._x = x.copy()
            self._y = y.copy()
            self._refactorize()

    def add(self, x_new: np.ndarray, y_new: float) -> None:
        """Append one observation with a rank-1 Cholesky extension.

        O(N^2) per call; instrumented as the ``core.gp.add`` counter and
        the ``core.gp.add_s`` duration histogram (seconds) when
        telemetry is enabled.
        """
        if not telemetry.enabled():
            self._add(x_new, y_new)
            return
        started = time.perf_counter()
        self._add(x_new, y_new)
        telemetry.inc("core.gp.add")
        telemetry.observe("core.gp.add_s", time.perf_counter() - started)

    def _add(self, x_new: np.ndarray, y_new: float) -> None:
        x_new = np.asarray(x_new, dtype=float).ravel()
        if x_new.size != self.kernel.n_dims:
            raise ValueError(
                f"input must have {self.kernel.n_dims} dims, got {x_new.size}"
            )
        check_finite_array(x_new, "observation input")
        if not np.isfinite(y_new):
            raise ValueError(
                f"observation target must be finite, got {y_new!r}"
            )
        if self._x is None:
            self.fit(x_new[None, :], np.array([y_new]))
            return

        if not self._try_rank1(x_new, y_new):
            # Degradation ladder step 1: the incremental extension is
            # numerically unhealthy (or fault-injected) — retain the
            # observation and rebuild the factor from scratch, which
            # escalates jitter on its own if needed.
            self._rank1_fallbacks += 1
            telemetry.inc("core.gp.rank1_fallbacks")
            self._x = np.vstack([self._x, x_new[None, :]])
            self._y = np.append(self._y, float(y_new))
            self._refactorize()
        self._maybe_evict()

    def _try_rank1(self, x_new: np.ndarray, y_new: float) -> bool:
        """Attempt the O(N^2) rank-1 factor extension; False on failure.

        Fails (without mutating state) when the forward solve produces
        non-finite entries, the new pivot is significantly negative —
        both symptoms of a factor drifting from the true Gram — or the
        fault hook forces a failure.
        """
        if self._chol is None:
            return False
        if self._fault_hook is not None:
            try:
                self._fault_hook("rank1", 0)
            except np.linalg.LinAlgError:
                return False
        backend = get_backend()
        cross = self.kernel(self._x, x_new[None, :]).ravel()
        self_var = float(self.kernel.diag(x_new[None, :])[0]) + self.noise_variance
        try:
            row = backend.solve_triangular(self._chol, cross, lower=True)
        except np.linalg.LinAlgError:
            return False
        pivot_sq = self_var - float(row @ row)
        if not np.all(np.isfinite(row)) or not np.isfinite(pivot_sq):
            return False
        if pivot_sq <= -1e-6 * self_var:
            return False
        # Numerical floor: keep the factor positive definite even for a
        # duplicated input point.
        pivot = np.sqrt(max(pivot_sq, 1e-12))

        n = self.n_observations
        chol = np.zeros((n + 1, n + 1))
        chol[:n, :n] = self._chol
        chol[n, :n] = row
        chol[n, n] = pivot
        self._chol = chol
        self._x = np.vstack([self._x, x_new[None, :]])
        self._y = np.append(self._y, float(y_new))
        self._alpha = backend.cho_solve(
            self._chol, self._y - self.prior_mean, lower=True
        )
        return True

    def _maybe_evict(self) -> None:
        if self.max_observations is None:
            return
        if self.n_observations <= self.max_observations + self.eviction_block:
            return
        if self.eviction_policy is None:
            keep = self.n_observations - self.eviction_block
            self._x = self._x[-keep:]
            self._y = self._y[-keep:]
        else:
            indices = np.asarray(
                self.eviction_policy(self._x, self._y, self.max_observations),
                dtype=int,
            )
            if indices.ndim != 1 or indices.size < 1 \
                    or indices.size > self.n_observations:
                raise ValueError(
                    f"eviction policy returned an invalid index set of "
                    f"shape {indices.shape} for n={self.n_observations}"
                )
            indices = np.unique(indices)  # sorted: preserves arrival order
            self._x = self._x[indices]
            self._y = self._y[indices]
        self._evictions += 1
        telemetry.inc("core.gp.evictions")
        self._refactorize()

    def _refactorize(self) -> None:
        """Rebuild the factor, escalating jitter before giving up.

        Degradation ladder steps 2-3: a bare Cholesky first, then
        bounded jittered retries; an exhausted ladder invalidates the
        factor (data retained, :attr:`factor_available` false) and
        raises :class:`~repro.core.numerics.NumericalInstabilityError`
        so callers can degrade to a safe policy and re-:meth:`fit`
        later.
        """
        gram = self.kernel(self._x, self._x)
        gram[np.diag_indices_from(gram)] += self.noise_variance
        try:
            chol, jitter, retries = robust_cholesky(
                gram, fault_hook=self._fault_hook, site="refactorize"
            )
        except NumericalInstabilityError:
            self._chol = self._alpha = None
            self._factor_version += 1
            raise
        self._jitter_retries += retries
        self._last_jitter = jitter
        self._chol = chol
        self._alpha = get_backend().cho_solve(
            self._chol, self._y - self.prior_mean, lower=True
        )
        self._factor_version += 1

    # -- prediction -----------------------------------------------------

    def predict(self, x_star: np.ndarray):
        """Posterior mean and variance at query points.

        Implements eqs. (3)-(4).  With no observations, returns the
        prior (``prior_mean``, ``k(z, z)`` variance).

        Returns
        -------
        (mean, variance):
            Arrays of length ``n_queries``.
        """
        x_star = np.asarray(x_star, dtype=float)
        if x_star.ndim == 1:
            x_star = x_star[None, :]
        if x_star.shape[1] != self.kernel.n_dims:
            raise ValueError(
                f"queries must have {self.kernel.n_dims} dims, got {x_star.shape[1]}"
            )
        check_finite_array(x_star, "query points")
        prior_var = self.kernel.diag(x_star)
        if self._x is None:
            return np.full(x_star.shape[0], self.prior_mean), prior_var
        if self._chol is None:
            raise NumericalInstabilityError(
                "posterior unavailable: the Cholesky factor was invalidated "
                "by a failed refactorisation; call fit() to rebuild it"
            )
        backend = get_backend()
        cross = self.kernel(self._x, x_star)
        mean = self.prior_mean + cross.T @ self._alpha
        v = backend.solve_triangular(self._chol, cross, lower=True)
        variance = np.maximum(prior_var - np.sum(v**2, axis=0), 0.0)
        return mean, variance

    def predict_std(self, x_star: np.ndarray):
        """Posterior mean and standard deviation at query points."""
        mean, variance = self.predict(x_star)
        return mean, np.sqrt(variance)

    def sample_posterior(self, x_star: np.ndarray, n_samples: int = 1, rng=None):
        """Draw joint posterior function samples at query points."""
        from repro.utils.rng import ensure_rng

        generator = ensure_rng(rng)
        x_star = np.asarray(x_star, dtype=float)
        if x_star.ndim == 1:
            x_star = x_star[None, :]
        backend = get_backend()
        mean, _ = self.predict(x_star)
        cov = self.kernel(x_star, x_star)
        if self._x is not None:
            cross = self.kernel(self._x, x_star)
            v = backend.solve_triangular(self._chol, cross, lower=True)
            cov = cov - v.T @ v
        cov[np.diag_indices_from(cov)] += 1e-10
        chol = backend.cholesky(cov, lower=True)
        draws = generator.standard_normal((x_star.shape[0], n_samples))
        return mean[:, None] + chol @ draws
