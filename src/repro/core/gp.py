"""Exact Gaussian-process regression with incremental updates.

Implements the posterior equations (3)-(4) of the paper through a
Cholesky factorisation of ``K + zeta^2 I``:

* adding one observation is an O(N^2) rank-1 extension of the factor
  (no refactorisation), which keeps the per-period cost of Algorithm 1
  quadratic rather than cubic;
* an optional observation budget evicts the oldest points in blocks
  (subset-of-data), bounding memory and per-period cost for very long
  runs such as the 3000-period comparison of Fig. 14.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.linalg import cho_solve, cholesky, solve_triangular

from repro.core.kernels import Kernel
from repro.telemetry import runtime as telemetry
from repro.utils.validation import check_finite_array, check_positive


class GaussianProcess:
    """Exact GP regression model with online updates.

    Parameters
    ----------
    kernel:
        Covariance function over the input space.
    noise_variance:
        Observation noise variance ``zeta^2`` (eq. 3-4).
    max_observations:
        Optional cap on retained observations.  When the buffer exceeds
        ``max_observations + eviction_block`` the oldest
        ``eviction_block`` points are dropped and the factor rebuilt.
    eviction_block:
        Eviction granularity (amortises the rebuild cost).
    prior_mean:
        Constant prior mean ``mu(z)``.  The paper assumes ``mu = 0``
        w.l.o.g.; for *safety-critical* surrogates a pessimistic prior
        mean (high for delay, low for mAP) makes unexplored regions
        fail the safe-set test instead of passing it optimistically.
    """

    def __init__(
        self,
        kernel: Kernel,
        noise_variance: float = 1e-4,
        max_observations: int | None = None,
        eviction_block: int = 100,
        prior_mean: float = 0.0,
    ) -> None:
        self._factor_version = 0
        self.kernel = kernel
        self.noise_variance = noise_variance
        if not np.isfinite(prior_mean):
            raise ValueError(f"prior_mean must be finite, got {prior_mean}")
        self.prior_mean = float(prior_mean)
        if max_observations is not None and max_observations < 1:
            raise ValueError("max_observations must be >= 1 when set")
        if eviction_block < 1:
            raise ValueError("eviction_block must be >= 1")
        self.max_observations = max_observations
        self.eviction_block = int(eviction_block)
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None

    # -- state ----------------------------------------------------------

    @property
    def kernel(self) -> Kernel:
        return self._kernel

    @kernel.setter
    def kernel(self, kernel: Kernel) -> None:
        self._kernel = kernel
        self._factor_version += 1

    @property
    def noise_variance(self) -> float:
        return self._noise_variance

    @noise_variance.setter
    def noise_variance(self, noise_variance: float) -> None:
        self._noise_variance = check_positive(noise_variance, "noise_variance")
        self._factor_version += 1

    @property
    def factor_version(self) -> int:
        """Counter identifying the current Cholesky factor lineage.

        Rank-1 extensions via :meth:`add` keep the version (the factor of
        the first N points is a leading principal block of the extended
        one, so caches keyed on it can grow incrementally); anything that
        rebuilds or invalidates the factor — :meth:`fit`, eviction, a
        kernel or noise change — bumps it.
        """
        return self._factor_version

    def _posterior_state(self):
        """``(x, chol, alpha, factor_version)`` without copies.

        Internal hot-path accessor for :class:`~repro.core.posterior.
        SurrogateEngine`; callers must treat the arrays as read-only.
        """
        return self._x, self._chol, self._alpha, self._factor_version

    @property
    def n_observations(self) -> int:
        return 0 if self._y is None else int(self._y.size)

    @property
    def inputs(self) -> np.ndarray:
        """Copy of the retained training inputs."""
        if self._x is None:
            return np.empty((0, self.kernel.n_dims))
        return self._x.copy()

    @property
    def targets(self) -> np.ndarray:
        """Copy of the retained training targets."""
        if self._y is None:
            return np.empty(0)
        return self._y.copy()

    # -- training -------------------------------------------------------

    def set_prior_mean(self, prior_mean: float) -> None:
        """Change the constant prior mean, recomputing the posterior.

        Cheap (one triangular solve); used when a safety surrogate's
        pessimism level must track a changed constraint threshold.
        """
        if not np.isfinite(prior_mean):
            raise ValueError(f"prior_mean must be finite, got {prior_mean}")
        self.prior_mean = float(prior_mean)
        if self._y is not None:
            self._alpha = cho_solve((self._chol, True), self._y - self.prior_mean)

    def fit(self, x: np.ndarray, y: np.ndarray) -> None:
        """Replace the training set and refactorise (O(N^3) Cholesky)."""
        with telemetry.span("core.gp.fit") as sp:
            x = np.asarray(x, dtype=float)
            if x.ndim == 1:
                x = x[None, :]
            y = np.asarray(y, dtype=float).ravel()
            if x.shape[0] != y.size:
                raise ValueError(
                    f"got {x.shape[0]} inputs but {y.size} targets"
                )
            if x.shape[1] != self.kernel.n_dims:
                raise ValueError(
                    f"inputs must have {self.kernel.n_dims} dims, got {x.shape[1]}"
                )
            check_finite_array(x, "training inputs")
            check_finite_array(y, "training targets")
            if sp:
                sp.set("n", int(y.size))
            if y.size == 0:
                self._x = self._y = self._chol = self._alpha = None
                self._factor_version += 1
                return
            self._x = x.copy()
            self._y = y.copy()
            self._refactorize()

    def add(self, x_new: np.ndarray, y_new: float) -> None:
        """Append one observation with a rank-1 Cholesky extension.

        O(N^2) per call; instrumented as the ``core.gp.add`` counter and
        the ``core.gp.add_s`` duration histogram (seconds) when
        telemetry is enabled.
        """
        if not telemetry.enabled():
            self._add(x_new, y_new)
            return
        started = time.perf_counter()
        self._add(x_new, y_new)
        telemetry.inc("core.gp.add")
        telemetry.observe("core.gp.add_s", time.perf_counter() - started)

    def _add(self, x_new: np.ndarray, y_new: float) -> None:
        x_new = np.asarray(x_new, dtype=float).ravel()
        if x_new.size != self.kernel.n_dims:
            raise ValueError(
                f"input must have {self.kernel.n_dims} dims, got {x_new.size}"
            )
        check_finite_array(x_new, "observation input")
        if not np.isfinite(y_new):
            raise ValueError(
                f"observation target must be finite, got {y_new!r}"
            )
        if self._x is None:
            self.fit(x_new[None, :], np.array([y_new]))
            return

        cross = self.kernel(self._x, x_new[None, :]).ravel()
        self_var = float(self.kernel.diag(x_new[None, :])[0]) + self.noise_variance
        row = solve_triangular(self._chol, cross, lower=True)
        pivot_sq = self_var - float(row @ row)
        # Numerical floor: keep the factor positive definite even for a
        # duplicated input point.
        pivot = np.sqrt(max(pivot_sq, 1e-12))

        n = self.n_observations
        chol = np.zeros((n + 1, n + 1))
        chol[:n, :n] = self._chol
        chol[n, :n] = row
        chol[n, n] = pivot
        self._chol = chol
        self._x = np.vstack([self._x, x_new[None, :]])
        self._y = np.append(self._y, float(y_new))
        self._alpha = cho_solve((self._chol, True), self._y - self.prior_mean)
        self._maybe_evict()

    def _maybe_evict(self) -> None:
        if self.max_observations is None:
            return
        if self.n_observations <= self.max_observations + self.eviction_block:
            return
        keep = self.n_observations - self.eviction_block
        self._x = self._x[-keep:]
        self._y = self._y[-keep:]
        self._refactorize()

    def _refactorize(self) -> None:
        gram = self.kernel(self._x, self._x)
        gram[np.diag_indices_from(gram)] += self.noise_variance
        self._chol = cholesky(gram, lower=True)
        self._alpha = cho_solve((self._chol, True), self._y - self.prior_mean)
        self._factor_version += 1

    # -- prediction -----------------------------------------------------

    def predict(self, x_star: np.ndarray):
        """Posterior mean and variance at query points.

        Implements eqs. (3)-(4).  With no observations, returns the
        prior (``prior_mean``, ``k(z, z)`` variance).

        Returns
        -------
        (mean, variance):
            Arrays of length ``n_queries``.
        """
        x_star = np.asarray(x_star, dtype=float)
        if x_star.ndim == 1:
            x_star = x_star[None, :]
        if x_star.shape[1] != self.kernel.n_dims:
            raise ValueError(
                f"queries must have {self.kernel.n_dims} dims, got {x_star.shape[1]}"
            )
        check_finite_array(x_star, "query points")
        prior_var = self.kernel.diag(x_star)
        if self._x is None:
            return np.full(x_star.shape[0], self.prior_mean), prior_var
        cross = self.kernel(self._x, x_star)
        mean = self.prior_mean + cross.T @ self._alpha
        v = solve_triangular(self._chol, cross, lower=True)
        variance = np.maximum(prior_var - np.sum(v**2, axis=0), 0.0)
        return mean, variance

    def predict_std(self, x_star: np.ndarray):
        """Posterior mean and standard deviation at query points."""
        mean, variance = self.predict(x_star)
        return mean, np.sqrt(variance)

    def sample_posterior(self, x_star: np.ndarray, n_samples: int = 1, rng=None):
        """Draw joint posterior function samples at query points."""
        from repro.utils.rng import ensure_rng

        generator = ensure_rng(rng)
        x_star = np.asarray(x_star, dtype=float)
        if x_star.ndim == 1:
            x_star = x_star[None, :]
        mean, _ = self.predict(x_star)
        cov = self.kernel(x_star, x_star)
        if self._x is not None:
            cross = self.kernel(self._x, x_star)
            v = solve_triangular(self._chol, cross, lower=True)
            cov = cov - v.T @ v
        cov[np.diag_indices_from(cov)] += 1e-10
        chol = cholesky(cov, lower=True)
        draws = generator.standard_normal((x_star.shape[0], n_samples))
        return mean[:, None] + chol @ draws
