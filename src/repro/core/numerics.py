"""Robust numerical primitives shared by the GP stack.

Centralises the degradation ladder for Cholesky factorisation: a bare
attempt first, then escalating diagonal jitter with bounded retries,
and only then a diagnosable :class:`NumericalInstabilityError`.  Both
the online GP (:mod:`repro.core.gp`) and the offline marginal-likelihood
fit (:mod:`repro.core.likelihood`) factor through here, so a
near-singular Gram matrix degrades the posterior slightly (jitter)
instead of killing the run — the paper's §5 "Practical Issues" stance
that the learner must survive numerical adversity.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import get_backend
from repro.telemetry import runtime as telemetry

__all__ = [
    "NumericalInstabilityError",
    "robust_cholesky",
    "MAX_JITTER_RETRIES",
    "BASE_JITTER_REL",
]

#: Bounded retry budget of the jitter escalation ladder.
MAX_JITTER_RETRIES = 4

#: First jitter level, relative to the mean Gram diagonal.
BASE_JITTER_REL = 1e-10


class NumericalInstabilityError(RuntimeError):
    """Cholesky factorisation failed despite bounded jitter escalation.

    Raised with the matrix size, the last jitter level attempted and the
    retry count, so a failing run log identifies *which* surrogate
    collapsed and how hard recovery was tried.  Callers (e.g.
    :class:`~repro.core.edgebol.EdgeBOL`) treat this as "surrogate
    unavailable" and degrade to a safe policy rather than crash.
    """


def robust_cholesky(
    gram: np.ndarray,
    *,
    max_retries: int = MAX_JITTER_RETRIES,
    fault_hook=None,
    site: str = "cholesky",
) -> tuple[np.ndarray, float, int]:
    """Lower Cholesky factor of ``gram`` with escalating diagonal jitter.

    Parameters
    ----------
    gram:
        Symmetric positive-(semi)definite matrix, noise already added.
    max_retries:
        Jittered attempts after the bare one (bounded ladder).
    fault_hook:
        Optional ``hook(site, attempt)`` invoked before every attempt;
        the fault-injection subsystem uses it to force
        ``numpy.linalg.LinAlgError`` deterministically
        (see :mod:`repro.faults`).
    site:
        Label for the hook and the raised error (e.g. ``"refactorize"``).

    Returns
    -------
    (chol, jitter, retries):
        The factor, the jitter level that succeeded (0.0 for the bare
        attempt) and how many retries were needed.

    Raises
    ------
    NumericalInstabilityError
        When every attempt fails; chains the final ``LinAlgError``.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    backend = get_backend()
    diag_scale = float(np.mean(np.diag(gram))) if gram.size else 1.0
    if not np.isfinite(diag_scale) or diag_scale <= 0.0:
        diag_scale = 1.0
    jitter = 0.0
    last_error: Exception | None = None
    for attempt in range(max_retries + 1):
        try:
            if fault_hook is not None:
                fault_hook(site, attempt)
            target = gram
            if jitter > 0.0:
                target = gram.copy()
                target[np.diag_indices_from(target)] += jitter
            chol = backend.cholesky(target, lower=True)
        except np.linalg.LinAlgError as exc:
            last_error = exc
            telemetry.inc("core.gp.jitter_retries")
            jitter = diag_scale * BASE_JITTER_REL if jitter == 0.0 else jitter * 100.0
            continue
        return chol, jitter, attempt
    raise NumericalInstabilityError(
        f"Cholesky factorisation of a {gram.shape[0]}x{gram.shape[1]} Gram "
        f"matrix failed at site '{site}' after {max_retries} jittered "
        f"retries (final jitter {jitter:.3e})"
    ) from last_error
