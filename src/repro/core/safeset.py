"""Safe-set estimation (eq. 8 of the paper).

For the observed context, a control belongs to the estimated safe set
when the pessimistic GP confidence bound of every constraint satisfies
its threshold:

* delay:  ``mu_d + beta * sigma_d <= d_max``  (upper bound below cap),
* mAP:    ``mu_q - beta * sigma_q >= rho_min`` (lower bound above floor).

The initial safe set S0 (the maximum-resource corner) is always
included, so the agent never runs out of admissible controls even under
infeasible constraint settings (Section 5, "Practical issues").
"""

from __future__ import annotations

import numpy as np

from repro.core.gp import GaussianProcess
from repro.core.posterior import PosteriorBatch
from repro.utils.validation import check_positive

#: Head names the safe set reads from a :class:`PosteriorBatch`.
DELAY_HEAD = "delay"
MAP_HEAD = "map"


class SafeSetEstimator:
    """Confidence-bound safe set over a discretised control grid.

    Parameters
    ----------
    delay_gp:
        GP over the joint (context, control) space predicting delay.
    map_gp:
        GP over the joint space predicting mAP.
    beta:
        Confidence-bound width multiplier (the paper's ``beta^{1/2}``,
        2.5 in the evaluation).
    noise_beta:
        Multiplier of the *aleatoric* (observation-noise) margin added
        to the confidence bound.  The constraints of problem (2) apply
        to the realised per-period KPIs, which carry observation noise,
        so a converged point must keep a noise margin from the
        threshold to satisfy them with high probability.  0 disables
        the margin (pure eq. 8).
    delay_noise_rel:
        Relative std of delay measurements (timing jitter scales with
        the delay itself), so the delay margin is
        ``noise_beta * delay_noise_rel * mu_delay``.
    map_noise_std:
        Absolute std of a batch mAP measurement.
    variance_inflation:
        Multiplier applied to the posterior standard deviations before
        the eq.-8 widths are formed.  1.0 (default) is the exact paper
        test and adds no work; values above 1.0 widen the bounds —
        provided for sparse approximations whose variances may
        under-cover (the subset-of-data mode of
        :mod:`repro.core.sparse` does *not* need it: its variances are
        already conservative).
    """

    def __init__(
        self,
        delay_gp: GaussianProcess,
        map_gp: GaussianProcess,
        beta: float = 2.5,
        noise_beta: float = 1.0,
        delay_noise_rel: float = 0.05,
        map_noise_std: float = 0.02,
        variance_inflation: float = 1.0,
    ) -> None:
        self.delay_gp = delay_gp
        self.map_gp = map_gp
        self.beta = check_positive(beta, "beta")
        if noise_beta < 0:
            raise ValueError(f"noise_beta must be >= 0, got {noise_beta}")
        self.noise_beta = float(noise_beta)
        if delay_noise_rel < 0 or map_noise_std < 0:
            raise ValueError("noise levels must be >= 0")
        self.delay_noise_rel = float(delay_noise_rel)
        self.map_noise_std = float(map_noise_std)
        self.variance_inflation = check_positive(
            variance_inflation, "variance_inflation"
        )

    def safe_mask(
        self,
        joint_grid: "np.ndarray | PosteriorBatch",
        d_max_s: float,
        rho_min: float,
        always_safe: np.ndarray | None = None,
    ) -> np.ndarray:
        """Boolean safety mask over an ``(n, d)`` joint grid.

        Parameters
        ----------
        joint_grid:
            Context-control points, typically the control grid stacked
            with the current context — either as a raw array (the two
            constraint GPs are queried directly) or as a
            :class:`~repro.core.posterior.PosteriorBatch` carrying
            precomputed ``"delay"`` and ``"map"`` head moments from a
            :class:`~repro.core.posterior.SurrogateEngine` (the hot
            path: no per-call ``predict``).
        d_max_s, rho_min:
            Constraint thresholds of problem (2).
        always_safe:
            Optional boolean mask (or integer indices) of grid rows
            forced into the safe set — the S0 of Algorithm 1, line 6.
        """
        if isinstance(joint_grid, PosteriorBatch):
            delay_mean, delay_std = joint_grid.moments(DELAY_HEAD)
            map_mean, map_std = joint_grid.moments(MAP_HEAD)
        else:
            joint_grid = np.asarray(joint_grid, dtype=float)
            if joint_grid.ndim != 2:
                raise ValueError(
                    f"joint_grid must be 2-D, got shape {joint_grid.shape}"
                )
            delay_mean, delay_std = self.delay_gp.predict_std(joint_grid)
            map_mean, map_std = self.map_gp.predict_std(joint_grid)
        return self.mask_from_moments(
            delay_mean, delay_std, map_mean, map_std,
            d_max_s=d_max_s, rho_min=rho_min, always_safe=always_safe,
        )

    def _widths(
        self,
        delay_mean: np.ndarray,
        delay_std: np.ndarray,
        map_std: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Confidence-bound half-widths of the two eq.-8 tests."""
        if self.variance_inflation != 1.0:
            delay_std = self.variance_inflation * delay_std
            map_std = self.variance_inflation * map_std
        delay_width = self.beta * delay_std + (
            self.noise_beta * self.delay_noise_rel * np.abs(delay_mean)
        )
        map_width = self.beta * map_std + self.noise_beta * self.map_noise_std
        return delay_width, map_width

    def margins_from_moments(
        self,
        delay_mean: np.ndarray,
        delay_std: np.ndarray,
        map_mean: np.ndarray,
        map_std: np.ndarray,
        d_max_s: float,
        rho_min: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-point slack of each eq.-8 constraint (>= 0 means safe).

        Returns ``(delay_slack_s, map_slack)``: the delay slack is
        ``d_max - (mu_d + width_d)`` in seconds, the mAP slack is
        ``(mu_q - width_q) - rho_min`` in mAP units.  These are the
        "how close to the boundary did we certify" quantities decision
        traces record per round (``docs/OBSERVABILITY.md``).
        """
        delay_width, map_width = self._widths(delay_mean, delay_std, map_std)
        return (
            d_max_s - (delay_mean + delay_width),
            (map_mean - map_width) - rho_min,
        )

    def margins_from_batch(
        self,
        batch: PosteriorBatch,
        d_max_s: float,
        rho_min: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`margins_from_moments` on a precomputed engine sweep."""
        delay_mean, delay_std = batch.moments(DELAY_HEAD)
        map_mean, map_std = batch.moments(MAP_HEAD)
        return self.margins_from_moments(
            delay_mean, delay_std, map_mean, map_std,
            d_max_s=d_max_s, rho_min=rho_min,
        )

    def mask_from_moments(
        self,
        delay_mean: np.ndarray,
        delay_std: np.ndarray,
        map_mean: np.ndarray,
        map_std: np.ndarray,
        d_max_s: float,
        rho_min: float,
        always_safe: np.ndarray | None = None,
    ) -> np.ndarray:
        """Eq. 8 applied to precomputed posterior moments."""
        delay_width, map_width = self._widths(delay_mean, delay_std, map_std)
        mask = (delay_mean + delay_width <= d_max_s) & (
            map_mean - map_width >= rho_min
        )
        if always_safe is not None:
            indices = np.asarray(always_safe)
            if indices.dtype == bool:
                if indices.size != mask.size:
                    raise ValueError("boolean always_safe mask has wrong length")
                mask = mask | indices
            else:
                mask = mask.copy()
                mask[indices] = True
        return mask

    def safe_set_size(self, joint_grid: "np.ndarray | PosteriorBatch",
                      d_max_s: float, rho_min: float) -> int:
        """|S_t| over the grid (plotted in Fig. 13)."""
        return int(np.count_nonzero(self.safe_mask(joint_grid, d_max_s, rho_min)))
