"""EdgeBOL checkpointing.

Saves and restores a complete learner state — control grid, problem
definition, hyperparameters and every GP's observation buffer — as a
single ``.npz`` archive (no pickling).  Lets a converged agent be
warm-started on the next deployment of the same slice, or shipped
alongside a released profiling dataset.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.core.backend import NumericsConfig
from repro.core.edgebol import EdgeBOL, EdgeBOLConfig
from repro.testbed.config import CostWeights, ServiceConstraints

#: Format marker for forward compatibility.
_FORMAT_VERSION = 1

#: GP slots serialised, in order.
_GP_SLOTS = ("cost", "delay", "map")
_POWER_SLOTS = ("server_power", "bs_power")


def _config_to_json(config: EdgeBOLConfig) -> str:
    # dataclasses.asdict recurses into the nested NumericsConfig,
    # leaving a plain JSON-serialisable dict (rebuilt on load).
    payload = dataclasses.asdict(config)
    if payload.get("lengthscales") is not None:
        payload["lengthscales"] = [float(v) for v in payload["lengthscales"]]
    return json.dumps(payload)


def _config_from_json(raw: str) -> EdgeBOLConfig:
    payload = json.loads(raw)
    if payload.get("lengthscales") is not None:
        payload["lengthscales"] = np.asarray(payload["lengthscales"], dtype=float)
    if payload.get("numerics") is not None:
        payload["numerics"] = NumericsConfig(**payload["numerics"])
    return EdgeBOLConfig(**payload)


def save_edgebol(agent: EdgeBOL, path: "str | Path") -> Path:
    """Serialise an agent (problem + hyperparameters + GP buffers)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {
        "format_version": np.array([_FORMAT_VERSION]),
        "control_grid": agent.control_grid,
        "constraints": np.array(
            [agent.constraints.d_max_s, agent.constraints.rho_min]
        ),
        "cost_weights": np.array(
            [agent.cost_weights.delta1, agent.cost_weights.delta2]
        ),
        "meta": np.array([agent.context_dim, agent.max_users]),
        "config_json": np.array([_config_to_json(agent.config)]),
    }
    gps = list(zip(_GP_SLOTS, agent.gps))
    if agent._power_gps is not None:
        gps.extend(zip(_POWER_SLOTS, agent._power_gps))
    for name, gp in gps:
        arrays[f"gp_{name}_x"] = gp.inputs
        arrays[f"gp_{name}_y"] = gp.targets
        arrays[f"gp_{name}_lengthscales"] = gp.kernel.lengthscales
        arrays[f"gp_{name}_meta"] = np.array(
            [gp.kernel.output_scale, gp.noise_variance, gp.prior_mean,
             getattr(gp.kernel, "nu", 1.5)]
        )
    np.savez_compressed(path, **arrays)
    return path


def load_edgebol(path: "str | Path") -> EdgeBOL:
    """Reconstruct an agent saved by :func:`save_edgebol`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {version} (expected "
                f"{_FORMAT_VERSION})"
            )
        config = _config_from_json(str(archive["config_json"][0]))
        d_max_s, rho_min = archive["constraints"]
        delta1, delta2 = archive["cost_weights"]
        context_dim, max_users = (int(v) for v in archive["meta"])
        agent = EdgeBOL(
            archive["control_grid"],
            ServiceConstraints(float(d_max_s), float(rho_min)),
            CostWeights(float(delta1), float(delta2)),
            config=config,
            context_dim=context_dim,
            max_users=max_users,
        )
        gps = list(zip(_GP_SLOTS, agent.gps))
        if agent._power_gps is not None:
            gps.extend(zip(_POWER_SLOTS, agent._power_gps))
        for name, gp in gps:
            key = f"gp_{name}_x"
            if key not in archive:
                raise ValueError(f"checkpoint missing GP state for {name!r}")
            output_scale, noise, prior_mean, nu = archive[f"gp_{name}_meta"]
            gp.kernel = type(gp.kernel)(
                lengthscales=archive[f"gp_{name}_lengthscales"],
                output_scale=float(output_scale),
                nu=float(nu),
            )
            gp.noise_variance = float(noise)
            gp.set_prior_mean(float(prior_mean))
            x = archive[key]
            y = archive[f"gp_{name}_y"]
            if y.size:
                gp.fit(x, y)
    # Re-apply the constraint-dependent pessimism on the restored GPs.
    agent.set_constraints(agent.constraints)
    return agent
