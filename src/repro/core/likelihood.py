"""Hyperparameter fitting by marginal-likelihood maximisation.

The paper fits the kernel lengthscales and the observation-noise
variance of each GP *offline* on prior (profiling) data by maximum
likelihood, then freezes them during execution — re-fitting online can
collapse the confidence intervals and trap the optimisation in poor
local optima (Section 5, "Kernel selection").
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve
from scipy.optimize import minimize

from repro.core.kernels import Kernel
from repro.core.numerics import NumericalInstabilityError, robust_cholesky
from repro.utils.rng import ensure_rng


def log_marginal_likelihood(
    kernel: Kernel, noise_variance: float, x: np.ndarray, y: np.ndarray
) -> float:
    """Exact GP log marginal likelihood of ``y`` under the kernel.

    ``log p(y | X) = -1/2 y^T K_n^-1 y - 1/2 log |K_n| - n/2 log 2 pi``
    with ``K_n = K + zeta^2 I``.

    A near-singular ``K_n`` (e.g. lengthscale candidates that alias the
    profiling grid) goes through the bounded jitter-escalation ladder of
    :func:`repro.core.numerics.robust_cholesky` first; only an exhausted
    ladder scores the candidate ``-inf`` so the optimiser steps away
    instead of the fit crashing.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        x = x[None, :]
    y = np.asarray(y, dtype=float).ravel()
    if x.shape[0] != y.size:
        raise ValueError(f"got {x.shape[0]} inputs but {y.size} targets")
    if noise_variance <= 0:
        raise ValueError(f"noise_variance must be positive, got {noise_variance}")
    gram = kernel(x, x)
    gram[np.diag_indices_from(gram)] += noise_variance
    try:
        chol, _, _ = robust_cholesky(gram, site="likelihood")
    except NumericalInstabilityError:
        return -np.inf
    alpha = cho_solve((chol, True), y)
    log_det = 2.0 * np.sum(np.log(np.diag(chol)))
    n = y.size
    return float(
        -0.5 * (y @ alpha) - 0.5 * log_det - 0.5 * n * np.log(2.0 * np.pi)
    )


def fit_hyperparameters(
    kernel: Kernel,
    x: np.ndarray,
    y: np.ndarray,
    noise_variance: float = 1e-2,
    n_restarts: int = 3,
    rng=None,
    optimize_noise: bool = True,
):
    """Maximise the LML over log lengthscales, output scale and noise.

    Parameters
    ----------
    kernel:
        Template kernel; its current values seed the first restart.
    x, y:
        Prior (profiling) data.
    noise_variance:
        Initial observation-noise variance.
    n_restarts:
        Additional random restarts around the seed.
    optimize_noise:
        If False, the noise variance is held fixed.

    Returns
    -------
    (kernel, noise_variance, lml):
        The fitted kernel, the fitted (or fixed) noise variance, and
        the achieved log marginal likelihood.
    """
    if n_restarts < 0:
        raise ValueError(f"n_restarts must be >= 0, got {n_restarts}")
    generator = ensure_rng(rng)
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        x = x[None, :]
    y = np.asarray(y, dtype=float).ravel()

    seed = kernel.get_log_params()
    if optimize_noise:
        seed = np.concatenate([seed, [np.log(noise_variance)]])

    def unpack(theta: np.ndarray):
        if optimize_noise:
            return kernel.with_log_params(theta[:-1]), float(np.exp(theta[-1]))
        return kernel.with_log_params(theta), noise_variance

    def objective(theta: np.ndarray) -> float:
        candidate_kernel, candidate_noise = unpack(theta)
        return -log_marginal_likelihood(candidate_kernel, candidate_noise, x, y)

    bounds = [(-6.0, 6.0)] * seed.size
    starts = [seed]
    for _ in range(n_restarts):
        starts.append(seed + generator.normal(0.0, 1.0, size=seed.size))

    best_theta, best_value = seed, objective(seed)
    for start in starts:
        result = minimize(
            objective, start, method="L-BFGS-B", bounds=bounds,
            options={"maxiter": 200},
        )
        if result.fun < best_value and np.all(np.isfinite(result.x)):
            best_theta, best_value = result.x, float(result.fun)

    fitted_kernel, fitted_noise = unpack(best_theta)
    return fitted_kernel, fitted_noise, -best_value
