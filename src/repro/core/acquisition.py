"""Acquisition functions over the safe set.

The paper adopts the *contextual Lower Confidence Bound* of Krause &
Ong (2011), restricted to the estimated safe set (eq. 9):

``x_t = argmin_{x in S_t}  mu_0(c_t, x) - sqrt(beta) * sigma_0(c_t, x)``

Minimising an optimistic (lower) bound of the cost both exploits
low-cost regions and explores uncertain ones; because low-power
controls sit near the constraint boundary, this acquisition expands the
safe set without an explicit expansion phase (Section 5).

Alternative acquisitions used by the ablation study are included.
"""

from __future__ import annotations

import numpy as np

from repro.core.gp import GaussianProcess
from repro.core.posterior import PosteriorBatch
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative


def lcb_values(mean: np.ndarray, std: np.ndarray, beta: float = 2.5,
               std_scale: float = 1.0) -> np.ndarray:
    """Full-grid LCB surface ``mu - sqrt(beta) * sigma`` (eq. 9 objective).

    Decision traces record this surface's value at the chosen control
    and at the unconstrained minimiser (the "price of safety"); the
    selection itself goes through :func:`safe_lcb_index_from_values`.
    ``std_scale`` rescales the posterior std before the bound is formed
    (1.0 is the exact eq. 9; sparse modes may inflate, see
    ``docs/NUMERICS.md``).
    """
    check_non_negative(beta, "beta")
    std = np.asarray(std, dtype=float)
    if std_scale != 1.0:
        std = check_non_negative(std_scale, "std_scale") * std
    return np.asarray(mean, dtype=float) - beta * std


def safe_lcb_index_from_values(lcb: np.ndarray, safe_mask: np.ndarray) -> int:
    """Index of the safe grid point minimising a precomputed LCB surface.

    Ties resolve to the lowest grid index (matching ``np.argmin`` over
    the safe subset in grid order), so selections are identical whether
    the LCB is evaluated on the safe subset or on the full grid.
    """
    lcb = np.asarray(lcb, dtype=float)
    safe_mask = np.asarray(safe_mask, dtype=bool)
    if safe_mask.size != lcb.size:
        raise ValueError("safe_mask and LCB values must have equal length")
    safe_indices = np.nonzero(safe_mask)[0]
    if safe_indices.size == 0:
        raise ValueError("safe set is empty; include S0 in the mask")
    return int(safe_indices[int(np.argmin(lcb[safe_indices]))])


def safe_lcb_index_from_posterior(
    mean: np.ndarray,
    std: np.ndarray,
    safe_mask: np.ndarray,
    beta: float = 2.5,
    std_scale: float = 1.0,
) -> int:
    """Eq. 9 applied to precomputed full-grid posterior moments.

    This is the hot-path variant consuming a
    :class:`~repro.core.posterior.SurrogateEngine` sweep; the moments
    must cover the *whole* grid (same length as ``safe_mask``).
    ``std_scale`` is forwarded to :func:`lcb_values`.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    if mean.size != std.size:
        raise ValueError("safe_mask and posterior moments must have equal length")
    return safe_lcb_index_from_values(
        lcb_values(mean, std, beta, std_scale=std_scale), safe_mask
    )


def safe_lcb_index(
    cost_gp: "GaussianProcess | PosteriorBatch",
    joint_grid: np.ndarray | None,
    safe_mask: np.ndarray,
    beta: float = 2.5,
    head: str = "cost",
) -> int:
    """Index of the safe grid point minimising the cost LCB (eq. 9).

    ``cost_gp`` may be the cost surrogate itself (posterior evaluated at
    the safe subset of ``joint_grid``) or a
    :class:`~repro.core.posterior.PosteriorBatch` whose ``head`` moments
    are consumed directly (``joint_grid`` may then be ``None``).

    Raises
    ------
    ValueError
        If the safe mask is empty (callers must guarantee S0 is in it).
    """
    if isinstance(cost_gp, PosteriorBatch):
        mean, std = cost_gp.moments(head)
        return safe_lcb_index_from_posterior(mean, std, safe_mask, beta=beta)
    check_non_negative(beta, "beta")
    safe_mask = np.asarray(safe_mask, dtype=bool)
    joint_grid = np.asarray(joint_grid, dtype=float)
    if safe_mask.size != joint_grid.shape[0]:
        raise ValueError("safe_mask length must match the grid")
    safe_indices = np.nonzero(safe_mask)[0]
    if safe_indices.size == 0:
        raise ValueError("safe set is empty; include S0 in the mask")
    mean, std = cost_gp.predict_std(joint_grid[safe_indices])
    lcb = mean - beta * std
    return int(safe_indices[int(np.argmin(lcb))])


def greedy_mean_index(
    cost_gp: GaussianProcess, joint_grid: np.ndarray, safe_mask: np.ndarray
) -> int:
    """Pure exploitation: minimise the posterior mean (beta = 0)."""
    return safe_lcb_index(cost_gp, joint_grid, safe_mask, beta=0.0)


def random_safe_index(safe_mask: np.ndarray, rng=None) -> int:
    """Uniformly random safe control (exploration-only baseline)."""
    generator = ensure_rng(rng)
    safe_indices = np.nonzero(np.asarray(safe_mask, dtype=bool))[0]
    if safe_indices.size == 0:
        raise ValueError("safe set is empty; include S0 in the mask")
    return int(generator.choice(safe_indices))


def max_variance_index(
    cost_gp: GaussianProcess, joint_grid: np.ndarray, safe_mask: np.ndarray
) -> int:
    """Uncertainty sampling: most uncertain safe point (ablation)."""
    safe_mask = np.asarray(safe_mask, dtype=bool)
    joint_grid = np.asarray(joint_grid, dtype=float)
    safe_indices = np.nonzero(safe_mask)[0]
    if safe_indices.size == 0:
        raise ValueError("safe set is empty; include S0 in the mask")
    _, std = cost_gp.predict_std(joint_grid[safe_indices])
    return int(safe_indices[int(np.argmax(std))])
