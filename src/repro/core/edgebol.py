"""EdgeBOL — Algorithm 1 of the paper.

The online loop per orchestration period ``t``:

1. observe the context ``c_t``;
2. compute the GP posteriors of cost, delay and mAP over the control
   grid stacked with ``c_t`` (eqs. 3-4);
3. build the safe set ``S_t`` (eq. 8), always containing S0;
4. pick ``x_t`` by the safe cost-LCB acquisition (eq. 9);
5. observe the KPIs, compute the cost (eq. 1), and append the new
   (context, control) -> (cost, delay, mAP) triples to the GPs.

Hyperparameters are set a priori (or fitted offline on profiling data
through :meth:`EdgeBOL.fit_hyperparameters`) and frozen during the run,
per the paper's kernel-selection discussion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.acquisition import lcb_values, safe_lcb_index_from_posterior
from repro.core.backend import NumericsConfig, active_numerics
from repro.core.gp import GaussianProcess
from repro.core.kernels import Kernel, Matern
from repro.core.likelihood import fit_hyperparameters
from repro.core.numerics import NumericalInstabilityError
from repro.core.posterior import PosteriorBatch, SurrogateEngine
from repro.core.safeset import SafeSetEstimator
from repro.core.sparse import make_eviction_policy
from repro.faults import runtime as faults
from repro.telemetry import runtime as telemetry
from repro.testbed.config import (
    ControlPolicy,
    CostWeights,
    ServiceConstraints,
)
from repro.testbed.context import Context
from repro.testbed.env import TestbedObservation
from repro.utils.grids import nearest_grid_index
from repro.utils.validation import check_positive

#: GP index conventions matching the paper: i=0 cost, i=1 delay, i=2 mAP.
COST, DELAY, MAP = 0, 1, 2

#: Engine head names, in the paper's GP index order.
HEAD_NAMES = ("cost", "delay", "map")
#: Extra heads of the decoupled-power extension.
POWER_HEAD_NAMES = ("server_power", "bs_power")


def _default_lengthscales(context_dim: int,
                          control_grid: np.ndarray | None = None) -> np.ndarray:
    """Kernel lengthscales: context dims then the 4 control dims.

    Context coordinates are normalised to ~[0, 1]; controls are in
    [0, 1].  Control lengthscales scale with the grid spacing: the safe
    set can only grow if the confidence bound at a *neighbouring* grid
    point tightens below the constraint margin, which requires the
    kernel correlation across one grid step to be high.  Eight steps
    per lengthscale (floored at 0.8) keeps safe-set expansion working
    from 5-level to 11-level grids without oversmoothing.
    """
    context_scales = np.full(context_dim, 0.5)
    control_scales = np.full(4, 1.0)
    if control_grid is not None:
        for axis in range(4):
            levels = np.unique(control_grid[:, axis])
            if levels.size >= 2:
                step = float(np.median(np.diff(levels)))
                control_scales[axis] = float(np.clip(8.0 * step, 0.8, 2.5))
    return np.concatenate([context_scales, control_scales])


def _map_lengthscales(context_dim: int,
                      control_grid: np.ndarray | None = None) -> np.ndarray:
    """ARD lengthscales for the mAP surrogate.

    The offline maximum-likelihood fit on profiling data (the paper's
    procedure) discovers that mAP depends essentially only on the image
    resolution: the fitted ARD lengthscales of the context and of the
    airtime/GPU/MCS axes blow up.  Encoding that here keeps the safe
    set expanding along those axes even when the mAP threshold leaves
    only a thin margin at full resolution.
    """
    scales = _default_lengthscales(context_dim, control_grid=control_grid)
    scales[:context_dim] = 4.0           # mAP is context-independent
    scales[context_dim + 1:] = 6.0       # ... and airtime/GPU/MCS-independent
    return scales


@dataclass(frozen=True)
class EdgeBOLConfig:
    """Hyperparameters of the learner.

    Attributes
    ----------
    beta:
        Confidence multiplier (the paper's ``beta^{1/2} = 2.5``), used
        both in the safe set (eq. 8) and the acquisition (eq. 9).
    cost_output_scale, delay_output_scale, map_output_scale:
        Prior variances (``sigma_f^2``) of the three GPs, in squared
        KPI units.
    cost_noise, delay_noise, map_noise:
        Observation-noise variances ``zeta^2_(i)``.
    delay_clip_s:
        Observed delays are clipped here before entering the GP:
        unserved periods report effectively-infinite delay, and the GP
        needs a finite "at least this bad" target.
    delay_prior_mean_s, map_prior_mean:
        Constant prior means of the two safety GPs.  Both are chosen
        *pessimistic* (high delay, zero mAP) so unexplored regions fail
        the eq.-8 test until evidence accumulates; the cost GP keeps
        the zero (optimistic) prior that drives LCB exploration.
    max_observations:
        Observation budget per GP (subset-of-data for very long runs);
        ``None`` retains everything, as the paper does.  An explicit
        value here takes precedence over the sparse-mode budget of
        ``numerics``.
    numerics:
        Numerics-mode override (:class:`~repro.core.backend.
        NumericsConfig`): array backend, batched multi-head solves and
        the sparse observation budget.  ``None`` (default) follows the
        process-wide :func:`~repro.core.backend.active_numerics`
        resolution (installed config, else environment variables, else
        dense numpy) — which is how the experiment CLIs' ``--numerics``
        flags reach agents constructed deep inside sweep workers.
    quarantine_spike_factor:
        Robust outlier gate: once ``quarantine_min_history`` clean
        observations exist, a cost exceeding this multiple of the
        running median is quarantined (not fitted) — the guard against
        injected/real power-meter spikes.  See ``docs/ROBUSTNESS.md``.
    quarantine_min_history:
        Clean observations required before the spike gate arms (early
        exploration legitimately spans a wide cost range).
    """

    beta: float = 2.5
    noise_beta: float = 1.0
    delay_noise_rel: float = 0.05
    cost_output_scale: float = 60.0**2
    delay_output_scale: float = 0.15**2
    map_output_scale: float = 0.15**2
    cost_noise: float = 4.0
    delay_noise: float = 0.0004
    map_noise: float = 0.0004
    delay_clip_s: float = 1.5
    delay_prior_mean_s: float = 0.8
    map_prior_mean: float = 0.0
    max_observations: int | None = None
    numerics: NumericsConfig | None = None
    matern_nu: float = 1.5
    quarantine_spike_factor: float = 6.0
    quarantine_min_history: int = 10
    lengthscales: np.ndarray | None = field(default=None)
    #: Extension (Section 4.3 tariffs): model server and BS power with
    #: separate GPs so delta1/delta2 can change at runtime without any
    #: relearning.
    decoupled_power_gps: bool = False

    def __post_init__(self) -> None:
        check_positive(self.beta, "beta")
        check_positive(self.delay_clip_s, "delay_clip_s")
        check_positive(self.quarantine_spike_factor, "quarantine_spike_factor")
        if self.quarantine_min_history < 1:
            raise ValueError(
                f"quarantine_min_history must be >= 1, got "
                f"{self.quarantine_min_history}"
            )


class EdgeBOL:
    """Contextual safe Bayesian online learner (Algorithm 1).

    Parameters
    ----------
    control_grid:
        ``(|X|, 4)`` discretised control space (normalised coordinates,
        axis order of :meth:`ControlPolicy.to_array`).
    constraints:
        Service constraints (may be changed at runtime via
        :meth:`set_constraints`; the GP data is retained, which is what
        makes EdgeBOL adapt instantly in Fig. 14).
    cost_weights:
        The ``delta1, delta2`` of the cost function (eq. 1).
    config:
        Learner hyperparameters.
    context_dim:
        Length of the normalised context vector.
    max_users:
        Context normalisation bound (must match the environment's).
    """

    def __init__(
        self,
        control_grid: np.ndarray,
        constraints: ServiceConstraints,
        cost_weights: CostWeights,
        config: EdgeBOLConfig | None = None,
        context_dim: int = Context.dimension(),
        max_users: int = 8,
    ) -> None:
        grid = np.asarray(control_grid, dtype=float)
        if grid.ndim != 2 or grid.shape[1] != 4:
            raise ValueError(f"control_grid must be (n, 4), got {grid.shape}")
        if grid.shape[0] == 0:
            raise ValueError("control_grid is empty")
        self.control_grid = grid
        self.constraints = constraints
        self.cost_weights = cost_weights
        self.config = config if config is not None else EdgeBOLConfig()
        self.context_dim = int(context_dim)
        self.max_users = int(max_users)

        n_dims = self.context_dim + 4
        if self.config.lengthscales is not None:
            shared = np.asarray(self.config.lengthscales, dtype=float)
            if shared.size != n_dims:
                raise ValueError(
                    f"lengthscales must have {n_dims} entries, got {shared.size}"
                )
            per_gp_lengthscales = [shared, shared, shared]
        else:
            generic = _default_lengthscales(self.context_dim, control_grid=grid)
            per_gp_lengthscales = [
                generic,                                            # cost
                generic,                                            # delay
                _map_lengthscales(self.context_dim, control_grid=grid),  # mAP
            ]
        output_scales = (
            self.config.cost_output_scale,
            self.config.delay_output_scale,
            self.config.map_output_scale,
        )
        noises = (
            self.config.cost_noise,
            self.config.delay_noise,
            self.config.map_noise,
        )
        prior_means = (
            0.0,
            self.config.delay_prior_mean_s,
            self.config.map_prior_mean,
        )
        # Fault-injection hook (None unless a fault plan with GP specs
        # is installed): all heads share one injector so "one forced
        # Cholesky failure" means one event across the agent.
        gp_injector = faults.make_injector("gp")
        self._gp_fault_hook = (
            gp_injector.gp_hook if gp_injector is not None else None
        )
        # Numerics mode (backend / batched sweeps / sparse budget): an
        # explicit config wins, else the process-wide resolution
        # (installed config > environment > dense-numpy defaults).
        self.numerics = (
            self.config.numerics if self.config.numerics is not None
            else active_numerics()
        )
        gp_budget_kwargs = self._gp_budget_kwargs()
        self._gps = [
            GaussianProcess(
                kernel=Matern(
                    lengthscales=scales,
                    output_scale=scale,
                    nu=self.config.matern_nu,
                ),
                noise_variance=noise,
                prior_mean=mean,
                fault_hook=self._gp_fault_hook,
                **gp_budget_kwargs(scales),
            )
            for scales, scale, noise, mean in zip(
                per_gp_lengthscales, output_scales, noises, prior_means
            )
        ]
        # Optional extension: model the two power draws with separate
        # GPs so energy-price changes (delta1/delta2) need no
        # relearning — the day/night tariff scenario of Section 4.3.
        self._power_gps: list[GaussianProcess] | None = None
        if self.config.decoupled_power_gps:
            generic = per_gp_lengthscales[COST]
            self._power_gps = [
                GaussianProcess(
                    kernel=Matern(
                        lengthscales=generic,
                        output_scale=scale,
                        nu=self.config.matern_nu,
                    ),
                    noise_variance=noise,
                    fault_hook=self._gp_fault_hook,
                    **gp_budget_kwargs(generic),
                )
                for scale, noise in (
                    (40.0**2, 6.0),    # server power: ~50-250 W, 2% meter
                    (1.5**2, 0.01),    # BS power: ~4-8 W, 2% meter
                )
            ]
        heads = dict(zip(HEAD_NAMES, self._gps))
        if self._power_gps is not None:
            heads.update(zip(POWER_HEAD_NAMES, self._power_gps))
        self._engine = SurrogateEngine(
            heads, grid, context_dim=self.context_dim,
            batched=self.numerics.batched_heads,
        )
        self._safe_estimator = SafeSetEstimator(
            delay_gp=self._gps[DELAY],
            map_gp=self._gps[MAP],
            beta=self.config.beta,
            noise_beta=self.config.noise_beta,
            delay_noise_rel=self.config.delay_noise_rel,
            map_noise_std=float(np.sqrt(self.config.map_noise)),
            variance_inflation=self.numerics.variance_inflation,
        )
        self._sync_delay_pessimism()
        self._s0_index = nearest_grid_index(
            grid, ControlPolicy.max_resources().to_array()
        )
        self._last_safe_size: int | None = None
        # Graceful-degradation state (docs/ROBUSTNESS.md): corrupted
        # observations are quarantined instead of fitted, and the agent
        # falls back to the always-safe S0 control while a surrogate
        # has no usable factor.
        self._quarantined = 0
        self._degraded_periods = 0
        self._surrogate_failures = 0
        self._recoveries = 0
        self._surrogate_down = False
        self._recent_costs: deque[float] = deque(maxlen=64)
        # Decision tracing (docs/OBSERVABILITY.md): None keeps every
        # hook to a single attribute check, so untraced runs pay
        # nothing and traced runs stay bit-identical (the tracer only
        # reads the batch the selection already computed).
        self._tracer = None

    def _gp_budget_kwargs(self):
        """Factory for per-head observation-budget constructor kwargs.

        Dense mode passes exactly the historical arguments (an optional
        ``max_observations`` with the GP's own oldest-block eviction),
        keeping default runs bit-identical.  Sparse mode resolves the
        budget — an explicit ``config.max_observations`` wins over the
        numerics ``sparse_budget`` — and attaches the inducing-subset
        eviction policy of :mod:`repro.core.sparse`, scaled by the
        head's own ARD lengthscales (hence the per-head callable).
        """
        config = self.config
        numerics = self.numerics
        if not numerics.sparse:
            def kwargs(scales) -> dict:
                return {"max_observations": config.max_observations}
            return kwargs
        budget = (
            config.max_observations if config.max_observations is not None
            else numerics.sparse_budget
        )

        def kwargs(scales) -> dict:
            return {
                "max_observations": budget,
                "eviction_block": numerics.sparse_block,
                "eviction_policy": make_eviction_policy(
                    scales, recent_fraction=numerics.recent_fraction
                ),
            }
        return kwargs

    # -- introspection ---------------------------------------------------

    @property
    def numerics_mode(self) -> str:
        """Active numerics mode label (``dense``/``batched``/``sparse``...).

        Stamped on decision-trace records so ``repro diagnose`` can
        attribute anomalies to sparse approximation error.
        """
        return self.numerics.mode

    @property
    def gps(self) -> tuple[GaussianProcess, GaussianProcess, GaussianProcess]:
        """The three surrogates (cost, delay, mAP)."""
        return tuple(self._gps)

    @property
    def n_observations(self) -> int:
        return self._gps[COST].n_observations

    @property
    def s0_index(self) -> int:
        """Grid index of the always-safe maximum-resource control."""
        return self._s0_index

    @property
    def last_safe_set_size(self) -> int | None:
        """|S_t| computed during the most recent :meth:`select` call."""
        return self._last_safe_size

    @property
    def engine(self) -> SurrogateEngine:
        """The shared multi-head posterior engine (grid hot path)."""
        return self._engine

    @property
    def degraded(self) -> bool:
        """Whether the agent is currently running on the S0 fallback."""
        return self._surrogate_down

    @property
    def quarantined_observations(self) -> int:
        """Observations rejected by the quarantine gate so far."""
        return self._quarantined

    def head_surrogates(self) -> dict:
        """Head-name → GP mapping, in the engine's head order.

        The decision tracer (:mod:`repro.obs`) uses this to report GP
        hyperparameters and calibration per head without reaching into
        private state.
        """
        heads = dict(zip(HEAD_NAMES, self._gps))
        if self._power_gps is not None:
            heads.update(zip(POWER_HEAD_NAMES, self._power_gps))
        return heads

    def attach_tracer(self, tracer) -> None:
        """Attach a decision tracer (``None`` detaches).

        The tracer receives ``on_select`` / ``on_degraded`` /
        ``on_observe`` callbacks each period; see
        :class:`repro.obs.decision.DecisionTracer`.
        """
        self._tracer = tracer

    def robustness_stats(self) -> dict:
        """Quarantine/degradation counters for the run log.

        Keys: ``quarantined`` (observations rejected by the gate),
        ``degraded_periods`` (periods served by the S0 fallback),
        ``surrogate_failures`` (factorisations that exhausted the jitter
        ladder), ``recoveries`` (successful refits after a failure),
        ``jitter_retries`` / ``rank1_fallbacks`` (GP degradation-ladder
        activity, summed over all heads).
        """
        gps = list(self._gps) + list(self._power_gps or ())
        return {
            "quarantined": self._quarantined,
            "degraded_periods": self._degraded_periods,
            "surrogate_failures": self._surrogate_failures,
            "recoveries": self._recoveries,
            "jitter_retries": sum(gp.jitter_retries for gp in gps),
            "rank1_fallbacks": sum(gp.rank1_fallbacks for gp in gps),
        }

    # -- the online loop --------------------------------------------------

    def _context_array(self, context: Context) -> np.ndarray:
        return context.to_array(max_users=self.max_users)

    def _joint_grid(self, context: Context) -> np.ndarray:
        return self._engine.joint_grid(self._context_array(context))

    def _joint_point(self, context: Context, policy: ControlPolicy) -> np.ndarray:
        return np.concatenate(
            [self._context_array(context), policy.to_array()]
        )

    def _select_heads(self) -> tuple[str, ...]:
        """Heads one period's sweep needs, evaluated in a single pass."""
        if self._power_gps is not None:
            return ("delay", "map") + POWER_HEAD_NAMES
        return HEAD_NAMES

    def posterior(self, context: Context) -> PosteriorBatch:
        """All surrogate posteriors over the grid for ``context``."""
        return self._engine.posterior(self._context_array(context))

    def _safe_mask_from_batch(self, batch: PosteriorBatch) -> np.ndarray:
        return self._safe_estimator.safe_mask(
            batch,
            d_max_s=self.constraints.d_max_s,
            rho_min=self.constraints.rho_min,
            always_safe=np.array([self._s0_index]),
        )

    def safe_mask(self, context: Context) -> np.ndarray:
        """Boolean S_t over the control grid for ``context`` (eq. 8)."""
        batch = self._engine.posterior(
            self._context_array(context), heads=("delay", "map")
        )
        return self._safe_mask_from_batch(batch)

    def safe_set_size(self, context: Context) -> int:
        """|S_t| for ``context`` — the quantity plotted in Fig. 13."""
        return int(np.count_nonzero(self.safe_mask(context)))

    def select(self, context: Context) -> ControlPolicy:
        """Pick the control for this period (Algorithm 1, lines 4-7).

        One :class:`SurrogateEngine` sweep evaluates every head over the
        context's joint grid; the safe set (eq. 8) and the acquisition
        (eq. 9) both consume that batch — no further ``predict`` calls.

        Degraded mode: while any surrogate has no usable factor (a
        factorisation exhausted the jitter ladder), the agent first
        attempts a recovery refit; if that also fails it returns the
        always-safe maximum-resource control S0 for the period instead
        of crashing — the §5 "Practical Issues" stance.
        """
        with telemetry.span("edgebol.select") as sp:
            if self._surrogate_down and not self._try_recover():
                return self._degraded_select(sp, context)
            try:
                batch = self._engine.posterior(
                    self._context_array(context), heads=self._select_heads()
                )
                mask = self._safe_mask_from_batch(batch)
                self._last_safe_size = int(np.count_nonzero(mask))
                if self._power_gps is not None:
                    index = self._decoupled_lcb_index(batch, mask)
                else:
                    index = safe_lcb_index_from_posterior(
                        batch.mean("cost"), batch.std("cost"), mask,
                        beta=self.config.beta,
                        std_scale=self.numerics.variance_inflation,
                    )
            except NumericalInstabilityError:
                self._mark_surrogate_down()
                return self._degraded_select(sp, context)
            if self._tracer is not None:
                self._tracer.on_select(context, batch, mask, index)
            if sp:
                sp.set("safe_set_size", self._last_safe_size)
                sp.set("n_observations", self.n_observations)
            return ControlPolicy.from_array(self.control_grid[index])

    def _degraded_select(self, sp, context: Context) -> ControlPolicy:
        """One period of the S0 fallback (surrogate unavailable)."""
        self._degraded_periods += 1
        telemetry.inc("edgebol.degraded_periods")
        self._last_safe_size = 1
        if self._tracer is not None:
            self._tracer.on_degraded(context)
        if sp:
            sp.set("degraded", True)
        return ControlPolicy.from_array(self.control_grid[self._s0_index])

    def _mark_surrogate_down(self) -> None:
        """Record one surrogate collapse (jitter ladder exhausted)."""
        self._surrogate_down = True
        self._surrogate_failures += 1
        telemetry.inc("edgebol.surrogate_failures")

    def _try_recover(self) -> bool:
        """Refit every factor-less surrogate from its retained data.

        The observation buffers survive a factorisation failure, so a
        successful refit restores the full posterior (no knowledge is
        lost); returns whether the agent is healthy again.
        """
        for gp in list(self._gps) + list(self._power_gps or ()):
            if gp.factor_available:
                continue
            try:
                gp.fit(gp.inputs, gp.targets)
            except NumericalInstabilityError:
                return False
        self._surrogate_down = False
        self._recoveries += 1
        telemetry.inc("edgebol.recoveries")
        return True

    def _decoupled_lcb_index(self, batch: "PosteriorBatch | np.ndarray",
                             mask: np.ndarray) -> int:
        """Cost LCB assembled from the two power surrogates.

        ``u = delta1 p_s + delta2 p_b`` is linear in the (independent)
        GP posteriors, so its posterior is Gaussian with
        ``mu = delta1 mu_s + delta2 mu_b`` and
        ``sigma^2 = delta1^2 sigma_s^2 + delta2^2 sigma_b^2``.

        ``batch`` is an engine sweep carrying the two power heads, or a
        raw joint grid (the surrogates are then queried at the safe
        subset directly).
        """
        safe_indices = np.nonzero(mask)[0]
        if safe_indices.size == 0:
            raise ValueError("safe set is empty; include S0 in the mask")
        if isinstance(batch, PosteriorBatch):
            s_mean, s_std = batch.moments("server_power")
            b_mean, b_std = batch.moments("bs_power")
            s_mean, s_std = s_mean[safe_indices], s_std[safe_indices]
            b_mean, b_std = b_mean[safe_indices], b_std[safe_indices]
        else:
            points = np.asarray(batch, dtype=float)[safe_indices]
            s_mean, s_std = self._power_gps[0].predict_std(points)
            b_mean, b_std = self._power_gps[1].predict_std(points)
        d1, d2 = self.cost_weights.delta1, self.cost_weights.delta2
        mean = d1 * s_mean + d2 * b_mean
        std = np.sqrt((d1 * s_std) ** 2 + (d2 * b_std) ** 2)
        lcb = lcb_values(mean, std, beta=self.config.beta,
                         std_scale=self.numerics.variance_inflation)
        return int(safe_indices[int(np.argmin(lcb))])

    def cost_lcb_values(self, batch: PosteriorBatch) -> np.ndarray:
        """Full-grid eq.-9 objective (cost LCB) from an engine sweep.

        In the default coupled mode this is exactly the surface the
        acquisition minimised; in decoupled-power mode it assembles the
        same linear-combination posterior as
        :meth:`_decoupled_lcb_index` but over the whole grid.  Decision
        traces use it to price safety (chosen vs unconstrained LCB);
        it reads only the batch, so calling it cannot perturb a run.
        """
        if self._power_gps is None:
            return lcb_values(
                batch.mean("cost"), batch.std("cost"), beta=self.config.beta,
                std_scale=self.numerics.variance_inflation,
            )
        s_mean, s_std = batch.moments("server_power")
        b_mean, b_std = batch.moments("bs_power")
        d1, d2 = self.cost_weights.delta1, self.cost_weights.delta2
        mean = d1 * s_mean + d2 * b_mean
        std = np.sqrt((d1 * s_std) ** 2 + (d2 * b_std) ** 2)
        return lcb_values(mean, std, beta=self.config.beta,
                          std_scale=self.numerics.variance_inflation)

    def update(
        self,
        context: Context,
        policy: ControlPolicy,
        cost: float,
        delay_s: float,
        map_score: float,
        server_power_w: float | None = None,
        bs_power_w: float | None = None,
    ) -> None:
        """Ingest one period's feedback (Algorithm 1, lines 8-13).

        With ``decoupled_power_gps`` the raw power readings must be
        supplied so the per-component surrogates can learn.
        """
        z = self._joint_point(context, policy)
        delay = float(np.clip(delay_s, 0.0, self._delay_clip))
        try:
            self._gps[COST].add(z, float(cost))
            self._gps[DELAY].add(z, delay)
            self._gps[MAP].add(z, float(np.clip(map_score, 0.0, 1.0)))
            if self._power_gps is not None:
                if server_power_w is None or bs_power_w is None:
                    raise ValueError(
                        "decoupled_power_gps requires server_power_w and "
                        "bs_power_w in update()"
                    )
                self._power_gps[0].add(z, float(server_power_w))
                self._power_gps[1].add(z, float(bs_power_w))
        except NumericalInstabilityError:
            # The observation is retained in the GP buffers; the next
            # select() attempts a recovery refit and serves S0 meanwhile.
            self._mark_surrogate_down()

    def _quarantine_reason(self, observation: TestbedObservation,
                           cost: float) -> str | None:
        """Why this observation must not reach the surrogates (or None).

        Gates: non-finite cost or mAP, NaN delay (*infinite* delay is a
        legitimate unserved-period signal and is clipped, not dropped),
        non-finite or non-positive power readings (a real draw is never
        0 W — a zero is a meter dropout), and — once enough clean
        history exists — a cost spike beyond ``quarantine_spike_factor``
        times the running median (meter outliers).
        """
        if not np.isfinite(cost):
            return "non-finite cost"
        if np.isnan(observation.delay_s):
            return "NaN delay"
        if not np.isfinite(observation.map_score):
            return "non-finite mAP"
        for name, power in (("server", observation.server_power_w),
                            ("bs", observation.bs_power_w)):
            if not np.isfinite(power) or power <= 0.0:
                return f"implausible {name} power reading ({power!r} W)"
        if len(self._recent_costs) >= self.config.quarantine_min_history:
            median = float(np.median(self._recent_costs))
            if median > 0.0 and cost > self.config.quarantine_spike_factor * median:
                return (
                    f"cost spike ({cost:.1f} vs running median {median:.1f})"
                )
        return None

    def observe(
        self,
        context: Context,
        policy: ControlPolicy,
        observation: TestbedObservation,
    ) -> float:
        """Compute the cost (eq. 1) from raw KPIs and update; returns it.

        Corrupted KPI samples (NaN/dropout/outlier power readings, NaN
        delay or mAP) are *quarantined*: counted, logged, and withheld
        from the surrogates — one bad meter sample must not poison the
        safe set.  The (possibly garbage) cost is still returned so the
        caller's accounting reflects what actually happened.
        """
        with telemetry.span("edgebol.observe") as sp:
            cost = self.cost_weights.cost(
                observation.server_power_w, observation.bs_power_w
            )
            reason = self._quarantine_reason(observation, cost)
            if reason is not None:
                self._quarantined += 1
                telemetry.inc("edgebol.quarantined")
                if self._tracer is not None:
                    self._tracer.on_observe(
                        context, policy, observation, cost, reason
                    )
                if sp:
                    sp.set("quarantined", reason)
                return cost
            self._recent_costs.append(float(cost))
            if self._tracer is not None:
                # Before update(): the tracer scores the select-time
                # posterior against this observation (one-step-ahead),
                # so the record must close before the GP absorbs it.
                self._tracer.on_observe(context, policy, observation,
                                        cost, None)
            self.update(
                context,
                policy,
                cost=cost,
                delay_s=observation.delay_s,
                map_score=observation.map_score,
                server_power_w=observation.server_power_w,
                bs_power_w=observation.bs_power_w,
            )
            if sp:
                sp.set("cost", float(cost))
            return cost

    # -- runtime reconfiguration ------------------------------------------

    def _sync_delay_pessimism(self) -> None:
        """Keep the delay surrogate's pessimism above the threshold.

        The pessimistic prior mean and the clip level only protect the
        safe set if they *exceed* ``d_max``; a lax delay bound (e.g.
        the 2 s of Fig. 12) would otherwise make unexplored regions
        pass the eq.-8 test.
        """
        d_max = self.constraints.d_max_s
        self._delay_clip = max(self.config.delay_clip_s, 2.0 * d_max)
        prior = max(self.config.delay_prior_mean_s, 1.5 * d_max)
        self._gps[DELAY].set_prior_mean(prior)

    def set_constraints(self, constraints: ServiceConstraints) -> None:
        """Change the service constraints without discarding knowledge.

        Because the surrogates model the raw KPIs (not their feasibility),
        the safe set for the new thresholds is available immediately —
        the key advantage over the parametric DDPG benchmark in Fig. 14.
        """
        self.constraints = constraints
        self._sync_delay_pessimism()

    def set_cost_weights(self, cost_weights: CostWeights) -> None:
        """Change the energy-price weights (eq. 1) at runtime.

        With ``decoupled_power_gps`` the new weights take effect
        instantly (the per-component power surrogates are
        price-agnostic).  In the default coupled mode, historical
        *cost* observations embed the old weights — prefer the
        decoupled mode (or re-instantiating) for large price swings
        such as day/night tariffs.
        """
        self.cost_weights = cost_weights
        # The spike-gate history is in old-price units; rearm it.
        self._recent_costs.clear()

    # -- offline hyperparameter fitting ------------------------------------

    def fit_hyperparameters(
        self,
        inputs: np.ndarray,
        costs: np.ndarray,
        delays: np.ndarray,
        maps: np.ndarray,
        n_restarts: int = 2,
        rng=None,
        server_powers: np.ndarray | None = None,
        bs_powers: np.ndarray | None = None,
    ) -> None:
        """Fit each GP's kernel and noise on prior profiling data.

        ``inputs`` are joint (context, control) rows; targets are the
        corresponding KPI observations.  Mirrors the paper's offline
        maximum-likelihood fit; the GPs keep their (possibly non-empty)
        observation buffers.  With ``decoupled_power_gps``, passing the
        raw power readings also fits the two power surrogates.
        """
        gps = list(self._gps)
        targets = [costs, delays, maps]
        if self._power_gps is not None and server_powers is not None \
                and bs_powers is not None:
            gps.extend(self._power_gps)
            targets.extend([server_powers, bs_powers])
        for gp, y in zip(gps, targets):
            fitted_kernel, fitted_noise, _ = fit_hyperparameters(
                gp.kernel,
                inputs,
                y,
                noise_variance=gp.noise_variance,
                n_restarts=n_restarts,
                rng=rng,
            )
            gp.kernel = fitted_kernel
            gp.noise_variance = fitted_noise
            if gp.n_observations:
                gp.fit(gp.inputs, gp.targets)


def make_kernel(context_dim: int, output_scale: float, nu: float = 1.5) -> Kernel:
    """Convenience: the paper's Matérn-3/2 ARD kernel over (c, x)."""
    return Matern(
        lengthscales=_default_lengthscales(context_dim),
        output_scale=output_scale,
        nu=nu,
    )
