"""Sparse (subset-of-data) GP mode with a principled observation budget.

Long EdgeBOL runs accumulate history without bound, and every posterior
sweep pays for it: the per-period engine extension is ``O(N M)`` and
any factor rebuild ``O(N^2 M)``, so per-period cost grows with the run
(the O(N^2) wall flagged in ``ROADMAP.md`` and measured in
``BENCH_posterior.json``).  The sparse mode bounds each GP head to a
fixed *observation budget*: when the buffer exceeds
``budget + block`` points, an eviction policy keeps a
diversity-preserving subset of exactly ``budget`` points and the
factor is rebuilt over it — per-period cost is then flat in the
nominal run length.

Two properties make this safe to plumb into the certification path:

* **Exactness on the subset.**  A subset-of-data posterior *is* an
  exact GP posterior — conditioned on fewer points, not a parametric
  approximation — so every identity the safe set and acquisition rely
  on (eqs. 3-4, 8, 9) holds verbatim.
* **Conservative variances.**  Conditioning a GP on additional
  observations never increases the posterior variance at any point
  (the law of total variance applied to the Gaussian conditional), so
  the subset posterior's ``sigma`` upper-bounds the full-data
  ``sigma``.  The eq.-8 safe-set test therefore stays *valid*: a
  control certified safe under the inflated uncertainty would also be
  certified by wider evidence, never the other way round.  The means
  do move (that is the approximation error); the
  ``variance_inflation`` knob of
  :class:`~repro.core.backend.NumericsConfig` exists for future
  parametric sparse modes whose variances can under-cover, and
  defaults to the no-op 1.0 here.

The retained subset is chosen by a deterministic greedy max-min
(farthest-point) rule in the kernel's ARD-scaled metric — the classic
inducing-point heuristic — with a *forced recent block*: the newest
``recent_fraction`` of the budget is always kept, so the posterior
tracks non-stationarity (constraint changes, drift) even when old
points dominate the diversity objective.  Determinism matters: eviction
happens mid-run, and replays must reproduce bit-identically.

See ``docs/NUMERICS.md`` for the policy discussion and accuracy
trade-offs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["greedy_inducing_indices", "make_eviction_policy"]


def greedy_inducing_indices(
    x: np.ndarray,
    n_select: int,
    lengthscales: np.ndarray | None = None,
    preselected: np.ndarray | None = None,
) -> np.ndarray:
    """Deterministic greedy max-min subset of ``n_select`` row indices.

    Farthest-point selection in the (optionally ARD-scaled) Euclidean
    metric: starting from ``preselected`` (or, when empty, the most
    recent row — the point the next rank-1 update will extend from),
    repeatedly add the row farthest from the current subset.  Ties
    resolve to the lowest index, so the selection is a pure function of
    its inputs and replays bit-identically.

    Parameters
    ----------
    x:
        ``(n, d)`` candidate rows, in arrival order.
    n_select:
        Total subset size, including the preselected rows; capped at
        ``n``.
    lengthscales:
        Optional per-dimension scales dividing the coordinates before
        distances are taken (use the head's ARD lengthscales so
        "diverse" matches what the kernel can distinguish).
    preselected:
        Indices that must be in the subset (the forced recent block).

    Returns
    -------
    Sorted integer array of ``min(n_select, n)`` unique row indices —
    sorted so the retained rows keep their arrival order, which
    preserves the meaning of "newest rows" for later evictions.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    n = x.shape[0]
    n_select = int(n_select)
    if n_select < 1:
        raise ValueError(f"n_select must be >= 1, got {n_select}")
    if n_select >= n:
        return np.arange(n)
    scaled = x / np.asarray(lengthscales, dtype=float) \
        if lengthscales is not None else x
    chosen = np.zeros(n, dtype=bool)
    if preselected is not None and np.asarray(preselected).size:
        seeds = np.unique(np.asarray(preselected, dtype=int))
        if seeds.size > n_select:
            raise ValueError(
                f"{seeds.size} preselected rows exceed n_select={n_select}"
            )
        chosen[seeds] = True
    else:
        chosen[n - 1] = True
    # Min squared distance from every row to the current subset.
    subset = scaled[chosen]
    diff = scaled[:, None, :] - subset[None, :, :]
    min_d2 = np.min(np.sum(diff * diff, axis=2), axis=1)
    min_d2[chosen] = -np.inf
    while int(np.count_nonzero(chosen)) < n_select:
        pick = int(np.argmax(min_d2))  # first max -> lowest-index tie-break
        chosen[pick] = True
        d2 = np.sum((scaled - scaled[pick]) ** 2, axis=1)
        min_d2 = np.minimum(min_d2, d2)
        min_d2[pick] = -np.inf
    return np.nonzero(chosen)[0]


def make_eviction_policy(
    lengthscales: np.ndarray | None = None,
    recent_fraction: float = 0.25,
):
    """An eviction policy for :class:`~repro.core.gp.GaussianProcess`.

    The returned ``policy(x, y, budget)`` keeps the newest
    ``round(budget * recent_fraction)`` rows unconditionally (stream
    continuity under drift) and fills the rest of the budget by
    :func:`greedy_inducing_indices` over the whole buffer, so the
    retained subset spans the explored input space instead of just its
    most recent corner.

    Parameters
    ----------
    lengthscales:
        Optional ARD scales forwarded to the selection metric (pass the
        head's kernel lengthscales).
    recent_fraction:
        Fraction of the budget reserved for the newest rows, in [0, 1].
    """
    if not 0.0 <= recent_fraction <= 1.0:
        raise ValueError(
            f"recent_fraction must be in [0, 1], got {recent_fraction}"
        )
    scales = None if lengthscales is None \
        else np.asarray(lengthscales, dtype=float).copy()

    def policy(x: np.ndarray, y: np.ndarray, budget: int) -> np.ndarray:
        """Indices to retain: forced recent block + greedy diverse rest."""
        n = np.asarray(x).shape[0]
        budget = int(budget)
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if n <= budget:
            return np.arange(n)
        n_recent = min(budget, max(1, int(round(budget * recent_fraction))))
        recent = np.arange(n - n_recent, n)
        return greedy_inducing_indices(
            x, budget, lengthscales=scales, preselected=recent
        )

    return policy
