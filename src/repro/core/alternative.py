"""Alternative problem formulation (Section 4.3 of the paper).

The paper notes its framework also covers the dual problem: "we could
consider power-constrained vBSs or an edge computing power budget by
including the power consumption targets as constraints, while
minimising latency ... The flexibility of our framework allows us to
implement any of these different formulations with minimal changes."

This module implements that variant:

    minimise   delay(c, x)
    subject to p_server(c, x) <= server power budget
               p_bs(c, x)     <= vBS power budget
               mAP(c, x)      >= rho_min

The machinery mirrors Algorithm 1 with the GP roles rotated: the delay
surrogate becomes the objective (LCB-minimised) and the two power
surrogates plus the mAP surrogate define the safe set.  The always-safe
anchor S0 is the *minimum-power* corner — lowest resolution, airtime
and GPU speed — which trivially satisfies any power budget the system
can meet at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern
from repro.core.edgebol import _default_lengthscales, _map_lengthscales
from repro.core.posterior import PosteriorBatch, SurrogateEngine
from repro.testbed.config import ControlPolicy
from repro.testbed.context import Context
from repro.testbed.env import TestbedObservation
from repro.utils.grids import nearest_grid_index
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class PowerBudgets:
    """The power-cap constraint set of the alternative formulation."""

    server_max_w: float
    bs_max_w: float
    rho_min: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.server_max_w, "server_max_w")
        check_positive(self.bs_max_w, "bs_max_w")
        check_fraction(self.rho_min, "rho_min")

    def satisfied(self, server_power_w: float, bs_power_w: float,
                  map_score: float) -> bool:
        return (
            server_power_w <= self.server_max_w
            and bs_power_w <= self.bs_max_w
            and map_score >= self.rho_min
        )


class PowerBudgetedEdgeBOL:
    """Delay-minimising EdgeBOL under power budgets.

    Exposes the standard ``select`` / ``observe`` / ``set_constraints``
    interface so the existing experiment runner drives it unchanged
    (the logged "cost" is the observed delay in seconds).
    """

    def __init__(
        self,
        control_grid: np.ndarray,
        budgets: PowerBudgets,
        beta: float = 2.5,
        context_dim: int = Context.dimension(),
        max_users: int = 8,
        delay_clip_s: float = 3.0,
    ) -> None:
        grid = np.asarray(control_grid, dtype=float)
        if grid.ndim != 2 or grid.shape[1] != 4:
            raise ValueError(f"control_grid must be (n, 4), got {grid.shape}")
        self.control_grid = grid
        self.budgets = budgets
        self.beta = check_positive(beta, "beta")
        self.context_dim = int(context_dim)
        self.max_users = int(max_users)
        self.delay_clip_s = check_positive(delay_clip_s, "delay_clip_s")

        generic = _default_lengthscales(self.context_dim, control_grid=grid)
        map_scales = _map_lengthscales(self.context_dim, control_grid=grid)
        # Objective: delay, optimistic zero prior drives exploration.
        self._delay_gp = GaussianProcess(
            Matern(lengthscales=generic, output_scale=0.15**2),
            noise_variance=4e-4,
        )
        # Constraints: powers with *pessimistic* (high) prior means.
        self._server_gp = GaussianProcess(
            Matern(lengthscales=generic, output_scale=40.0**2),
            noise_variance=6.0,
            prior_mean=1.5 * budgets.server_max_w,
        )
        self._bs_gp = GaussianProcess(
            Matern(lengthscales=generic, output_scale=1.5**2),
            noise_variance=0.01,
            prior_mean=1.5 * budgets.bs_max_w,
        )
        self._map_gp = GaussianProcess(
            Matern(lengthscales=map_scales, output_scale=0.15**2),
            noise_variance=4e-4,
            prior_mean=0.0,
        )
        self._engine = SurrogateEngine(
            {
                "delay": self._delay_gp,
                "server_power": self._server_gp,
                "bs_power": self._bs_gp,
                "map": self._map_gp,
            },
            grid,
            context_dim=self.context_dim,
        )
        # S0: the minimum-power corner.  With rho_min > 0 the corner
        # keeps full resolution (mAP-safe) and cuts airtime/GPU instead.
        resolution = 1.0 if budgets.rho_min > 0 else float(grid[:, 0].min())
        anchor = np.array([
            resolution, float(grid[:, 1].min()), 0.0, 1.0,
        ])
        self._s0_index = nearest_grid_index(grid, anchor)
        self._last_safe_size: int | None = None

    # -- introspection -----------------------------------------------------

    @property
    def last_safe_set_size(self) -> int | None:
        return self._last_safe_size

    @property
    def s0_index(self) -> int:
        return self._s0_index

    @property
    def n_observations(self) -> int:
        return self._delay_gp.n_observations

    @property
    def engine(self) -> SurrogateEngine:
        """The shared multi-head posterior engine (grid hot path)."""
        return self._engine

    # -- online loop ---------------------------------------------------------

    def _context_array(self, context: Context) -> np.ndarray:
        return context.to_array(max_users=self.max_users)

    def _joint_grid(self, context: Context) -> np.ndarray:
        return self._engine.joint_grid(self._context_array(context))

    def _mask_heads(self) -> tuple[str, ...]:
        heads = ("server_power", "bs_power")
        return heads + ("map",) if self.budgets.rho_min > 0 else heads

    def _safe_mask_from_batch(self, batch: PosteriorBatch) -> np.ndarray:
        s_mean, s_std = batch.moments("server_power")
        b_mean, b_std = batch.moments("bs_power")
        mask = (s_mean + self.beta * s_std <= self.budgets.server_max_w) & (
            b_mean + self.beta * b_std <= self.budgets.bs_max_w
        )
        if self.budgets.rho_min > 0:
            q_mean, q_std = batch.moments("map")
            mask &= q_mean - self.beta * q_std >= self.budgets.rho_min
        mask[self._s0_index] = True
        return mask

    def safe_mask(self, context: Context) -> np.ndarray:
        batch = self._engine.posterior(
            self._context_array(context), heads=self._mask_heads()
        )
        return self._safe_mask_from_batch(batch)

    def select(self, context: Context) -> ControlPolicy:
        """Minimise the delay LCB over the power-safe set.

        One engine sweep serves both the constraint bounds and the
        delay acquisition.
        """
        batch = self._engine.posterior(
            self._context_array(context),
            heads=("delay",) + self._mask_heads(),
        )
        mask = self._safe_mask_from_batch(batch)
        self._last_safe_size = int(np.count_nonzero(mask))
        safe_indices = np.nonzero(mask)[0]
        d_mean, d_std = batch.moments("delay")
        lcb = d_mean[safe_indices] - self.beta * d_std[safe_indices]
        index = int(safe_indices[int(np.argmin(lcb))])
        return ControlPolicy.from_array(self.control_grid[index])

    def observe(
        self,
        context: Context,
        policy: ControlPolicy,
        observation: TestbedObservation,
    ) -> float:
        """Ingest KPIs; returns the observed delay (the objective)."""
        z = np.concatenate(
            [context.to_array(max_users=self.max_users), policy.to_array()]
        )
        delay = float(np.clip(observation.delay_s, 0.0, self.delay_clip_s))
        self._delay_gp.add(z, delay)
        self._server_gp.add(z, float(observation.server_power_w))
        self._bs_gp.add(z, float(observation.bs_power_w))
        self._map_gp.add(z, float(np.clip(observation.map_score, 0.0, 1.0)))
        return delay

    def set_constraints(self, budgets: PowerBudgets) -> None:
        """Swap the power budgets; surrogates carry over unchanged."""
        self.budgets = budgets
        self._server_gp.set_prior_mean(1.5 * budgets.server_max_w)
        self._bs_gp.set_prior_mean(1.5 * budgets.bs_max_w)
