"""Covariance functions for the GP surrogates.

The paper selects a *stationary, anisotropic* kernel — the Matérn family
with per-dimension lengthscales (Automatic Relevance Determination) —
and particularises nu = 3/2 (eq. 6), meaning the learned functions are
at-least-once differentiable.  An RBF kernel is provided for the kernel
ablation study.

All kernels expose their hyperparameters as a flat log-vector so the
marginal-likelihood optimiser can treat them generically.

Array math routes through the active :mod:`repro.core.backend` — the
default numpy backend performs exactly the operations this module
always performed, and :func:`stacked_cross` evaluates many same-family
kernels against a shared grid in one batched pass for the multi-head
posterior engine.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.backend import get_backend
from repro.utils.validation import check_positive

_SQRT3 = np.sqrt(3.0)
_SQRT5 = np.sqrt(5.0)


def _as_2d(x: np.ndarray) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ValueError(f"inputs must be 1-D or 2-D, got shape {arr.shape}")
    return arr


class Kernel(abc.ABC):
    """Base class: a positive-definite covariance over R^d."""

    def __init__(self, lengthscales, output_scale: float = 1.0) -> None:
        ls = np.asarray(lengthscales, dtype=float).ravel()
        if ls.size == 0:
            raise ValueError("at least one lengthscale is required")
        if np.any(ls <= 0) or not np.all(np.isfinite(ls)):
            raise ValueError(f"lengthscales must be positive finite, got {ls}")
        self.lengthscales = ls
        self.output_scale = check_positive(output_scale, "output_scale")

    @property
    def n_dims(self) -> int:
        return int(self.lengthscales.size)

    def scaled_distance(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Anisotropic distance d(z, z') of eq. (5), pairwise.

        Returns an ``(n_x, n_y)`` matrix of
        ``sqrt((z - z')^T L^-2 (z - z'))``.
        """
        xs = _as_2d(x) / self.lengthscales
        ys = _as_2d(y) / self.lengthscales
        if xs.shape[1] != self.n_dims or ys.shape[1] != self.n_dims:
            raise ValueError(
                f"inputs must have {self.n_dims} dims, got {xs.shape[1]} and {ys.shape[1]}"
            )
        bk = get_backend()
        xp = bk.xp
        sq = (
            xp.sum(xs**2, axis=1)[:, None]
            + xp.sum(ys**2, axis=1)[None, :]
            - 2.0 * bk.matmul(xs, ys.T)
        )
        return xp.sqrt(xp.maximum(sq, 0.0))

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Covariance matrix between two sets of points."""
        return self.output_scale * self._correlation(self.scaled_distance(x, y))

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Prior variance at each point (k(z, z))."""
        n = _as_2d(x).shape[0]
        return np.full(n, self.output_scale)

    @abc.abstractmethod
    def _correlation(self, distance: np.ndarray) -> np.ndarray:
        """Correlation as a function of scaled distance (value 1 at 0)."""

    # -- hyperparameter flattening for the LML optimiser ----------------

    def get_log_params(self) -> np.ndarray:
        """Hyperparameters as [log lengthscales..., log output_scale]."""
        return np.concatenate(
            [np.log(self.lengthscales), [np.log(self.output_scale)]]
        )

    def with_log_params(self, log_params: np.ndarray) -> "Kernel":
        """New kernel of the same family with the given log-parameters."""
        params = np.asarray(log_params, dtype=float).ravel()
        if params.size != self.n_dims + 1:
            raise ValueError(
                f"expected {self.n_dims + 1} log-params, got {params.size}"
            )
        return type(self)(
            lengthscales=np.exp(params[:-1]), output_scale=float(np.exp(params[-1]))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(lengthscales={np.round(self.lengthscales, 4)}, "
            f"output_scale={self.output_scale:.4g})"
        )


class Matern(Kernel):
    """Anisotropic Matérn kernel, nu in {1/2, 3/2, 5/2}.

    ``nu=1.5`` reproduces eq. (6) of the paper:
    ``k(z, z') = s * (1 + sqrt(3) d) exp(-sqrt(3) d)``.
    """

    def __init__(self, lengthscales, output_scale: float = 1.0, nu: float = 1.5) -> None:
        if nu not in (0.5, 1.5, 2.5):
            raise ValueError(f"nu must be one of 0.5, 1.5, 2.5; got {nu}")
        super().__init__(lengthscales, output_scale)
        self.nu = float(nu)

    def _correlation(self, distance: np.ndarray) -> np.ndarray:
        if self.nu == 0.5:
            return np.exp(-distance)
        if self.nu == 1.5:
            scaled = _SQRT3 * distance
            return (1.0 + scaled) * np.exp(-scaled)
        scaled = _SQRT5 * distance
        return (1.0 + scaled + scaled**2 / 3.0) * np.exp(-scaled)

    def with_log_params(self, log_params: np.ndarray) -> "Matern":
        params = np.asarray(log_params, dtype=float).ravel()
        if params.size != self.n_dims + 1:
            raise ValueError(
                f"expected {self.n_dims + 1} log-params, got {params.size}"
            )
        return Matern(
            lengthscales=np.exp(params[:-1]),
            output_scale=float(np.exp(params[-1])),
            nu=self.nu,
        )


class RBF(Kernel):
    """Anisotropic squared-exponential kernel (ablation alternative)."""

    def _correlation(self, distance: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * distance**2)


# -- batched evaluation across same-family kernels -----------------------


def batch_key(kernel: Kernel) -> "tuple | None":
    """Hashable stacking key for ``kernel``, or ``None`` if unbatchable.

    Kernels with equal keys share a correlation function and may be
    evaluated together through :func:`stacked_cross`; subclasses other
    than the stock :class:`Matern`/:class:`RBF` return ``None`` so the
    multi-head engine falls back to per-head evaluation rather than
    assume an overridden ``_correlation``.
    """
    if type(kernel) is Matern:
        return ("matern", kernel.nu)
    if type(kernel) is RBF:
        return ("rbf",)
    return None


def stacked_cross(kernels, xs, y: np.ndarray) -> np.ndarray:
    """Cross-covariances of H same-family kernels in one batched pass.

    Parameters
    ----------
    kernels:
        Sequence of H kernels sharing one :func:`batch_key` (same
        family and smoothness; lengthscales and output scales may
        differ per head).
    xs:
        Sequence of H training-input arrays, each ``(n, d)`` with the
        same ``n`` and ``d`` (the engine groups heads by ``n``).
    y:
        Shared evaluation grid ``(m, d)``.

    Returns
    -------
    ``(H, n, m)`` array where slice ``h`` equals ``kernels[h](xs[h], y)``
    up to floating-point reassociation of the batched matmul.
    """
    if len(kernels) == 0 or len(kernels) != len(xs):
        raise ValueError(
            f"need one input set per kernel, got {len(kernels)} kernels "
            f"and {len(xs)} input sets"
        )
    keys = {batch_key(k) for k in kernels}
    if len(keys) != 1 or None in keys:
        raise ValueError(
            f"kernels must share one batchable family, got keys {keys}"
        )
    bk = get_backend()
    xp = bk.xp
    lengthscales = bk.stack([k.lengthscales for k in kernels])  # (H, d)
    x_stack = bk.stack([_as_2d(x) for x in xs])                 # (H, n, d)
    y2d = _as_2d(y)
    if x_stack.shape[2] != lengthscales.shape[1] \
            or y2d.shape[1] != lengthscales.shape[1]:
        raise ValueError(
            f"inputs must have {lengthscales.shape[1]} dims, got "
            f"{x_stack.shape[2]} and {y2d.shape[1]}"
        )
    xs_s = x_stack / lengthscales[:, None, :]                   # (H, n, d)
    ys_s = y2d[None, :, :] / lengthscales[:, None, :]           # (H, m, d)
    sq = (
        xp.sum(xs_s**2, axis=2)[:, :, None]
        + xp.sum(ys_s**2, axis=2)[:, None, :]
        - 2.0 * bk.matmul(xs_s, xp.swapaxes(ys_s, 1, 2))
    )
    distance = xp.sqrt(xp.maximum(sq, 0.0))
    correlation = kernels[0]._correlation(distance)
    output_scales = bk.stack(
        [np.asarray(k.output_scale, dtype=float) for k in kernels]
    )
    return output_scales[:, None, None] * correlation
