"""EdgeBOL: contextual, constrained Bayesian online learning.

The paper's primary contribution (Section 5): Gaussian-process surrogate
models of the cost and constraint functions over the joint
context-control space, a confidence-bound safe set (eq. 8), and a
safe-constrained Lower Confidence Bound acquisition (eq. 9) driving the
online loop of Algorithm 1.
"""

from repro.core.alternative import PowerBudgetedEdgeBOL, PowerBudgets
from repro.core.backend import (
    ArrayBackend,
    NumericsConfig,
    NumpyBackend,
    active_numerics,
    available_backends,
    get_backend,
    install_numerics,
    register_backend,
    uninstall_numerics,
    use_numerics,
)
from repro.core.diagnostics import calibration_report, interval_coverage
from repro.core.sparse import greedy_inducing_indices, make_eviction_policy
from repro.core.kernels import Kernel, Matern, RBF
from repro.core.persistence import load_edgebol, save_edgebol
from repro.core.gp import GaussianProcess
from repro.core.likelihood import fit_hyperparameters, log_marginal_likelihood
from repro.core.numerics import NumericalInstabilityError, robust_cholesky
from repro.core.posterior import EngineStats, PosteriorBatch, SurrogateEngine
from repro.core.safeset import SafeSetEstimator
from repro.core.acquisition import safe_lcb_index, safe_lcb_index_from_posterior
from repro.core.edgebol import EdgeBOL, EdgeBOLConfig

__all__ = [
    "ArrayBackend",
    "NumericsConfig",
    "NumpyBackend",
    "active_numerics",
    "available_backends",
    "get_backend",
    "install_numerics",
    "register_backend",
    "uninstall_numerics",
    "use_numerics",
    "greedy_inducing_indices",
    "make_eviction_policy",
    "EngineStats",
    "PosteriorBatch",
    "SurrogateEngine",
    "safe_lcb_index_from_posterior",
    "Kernel",
    "Matern",
    "RBF",
    "GaussianProcess",
    "NumericalInstabilityError",
    "robust_cholesky",
    "fit_hyperparameters",
    "log_marginal_likelihood",
    "SafeSetEstimator",
    "safe_lcb_index",
    "EdgeBOL",
    "EdgeBOLConfig",
    "PowerBudgetedEdgeBOL",
    "PowerBudgets",
    "calibration_report",
    "interval_coverage",
    "load_edgebol",
    "save_edgebol",
]
