"""Incremental multi-head posterior engine for the control-grid hot path.

EdgeBOL's per-period cost is dominated by evaluating three GP
posteriors (cost, delay, mAP — eqs. 3-4) over the joint grid built from
the observed context and the full control grid (11^4 = 14641 points in
the paper).  Evaluated naively through :meth:`GaussianProcess.predict`,
every period recomputes the ``N x M`` cross-kernel *and* the
``O(N^2 M)`` triangular solve ``V = L^-1 K(X, grid)`` from scratch.

:class:`SurrogateEngine` exploits two structural facts of Algorithm 1:

* the control grid is fixed, and contexts are CQI-quantised, so the
  same joint grid recurs period after period (always, in the static
  scenarios of Figs. 9-11; every sweep cycle in the dynamic Fig. 13);
* :meth:`GaussianProcess.add` extends the Cholesky factor by a rank-1
  block, so the factor of the first ``N`` observations is a leading
  principal block of the extended factor — cached solves against it
  stay valid and can be *extended* instead of recomputed.

Per (context, head) the engine caches the cross-kernel matrix ``K`` and
the solved ``V = L^-1 K``.  When ``k`` observations arrived since the
cache entry was built, only the new block is computed::

    K = [K_old]          V = [V_old                          ]
        [K_new]              [L22^-1 (K_new - L21 @ V_old)   ]

which costs ``O(k N M)`` — ``O(N M)`` per period — instead of
``O(N^2 M)``.  The posterior mean ``mu = m + K^T alpha`` is assembled
from the *live* ``alpha`` every query, so :meth:`GaussianProcess.
set_prior_mean` (which only rewrites ``alpha``) needs no invalidation;
anything that rebuilds the factor — ``fit``, eviction, a kernel or
noise-variance change after a hyperparameter refit — bumps the GP's
``factor_version`` and triggers an exact rebuild of the affected cache
entries on their next use.

All heads are evaluated in one pass over one shared joint grid and
returned as a :class:`PosteriorBatch`, which
:meth:`repro.core.safeset.SafeSetEstimator.safe_mask` (eq. 8) and
:func:`repro.core.acquisition.safe_lcb_index_from_posterior` (eq. 9)
consume directly.  Results are numerically interchangeable with direct
``predict`` calls (same factor, same kernel rows, same matrix-vector
products).

In *batched* mode (``REPRO_BATCHED_HEADS=1`` or the ``batched``
constructor flag) heads needing the same kind of work — a rebuild at
the same ``n``, or an extension over the same ``(k0, n)`` row range —
with same-family kernels are grouped and served through one stacked
cross-kernel build (:func:`repro.core.kernels.stacked_cross`) plus one
batched triangular solve, instead of three-plus sequential per-head
sweeps.  Heads with custom kernels fall back to the per-head path, and
every :class:`EngineStats` counter is incremented per head exactly as
the per-head loop would, so run logs stay comparable across modes.

Timing and cache counters are kept in :class:`EngineStats` and surfaced
through :class:`repro.experiments.recorder.RunLog`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.backend import active_numerics, get_backend
from repro.core.gp import GaussianProcess
from repro.core.kernels import batch_key, stacked_cross
from repro.telemetry import runtime as telemetry


@dataclass
class EngineStats:
    """Counters for the posterior hot path (surfaced in run logs).

    All counters are dimensionless tallies except ``wall_time_s``
    (seconds, monotonic clock).  The same sweep is also visible as the
    ``engine.posterior`` telemetry span when telemetry is enabled.
    """

    #: Number of :meth:`SurrogateEngine.posterior` calls.
    queries: int = 0
    #: Per-head posterior evaluations (``queries`` times heads asked).
    head_queries: int = 0
    #: Cross-kernel entries computed (full rebuilds + extensions).
    kernel_evals: int = 0
    #: Head states served fully from cache (no kernel work at all).
    cache_hits: int = 0
    #: Head states extended by the rows added since the last query.
    extensions: int = 0
    #: Head states rebuilt from scratch (cold cache or invalidation).
    rebuilds: int = 0
    #: Context entries dropped by the LRU bound.
    lru_evictions: int = 0
    #: Wall-clock seconds spent inside the engine.
    wall_time_s: float = 0.0

    def snapshot(self) -> dict:
        """Plain-dict copy for logging/serialisation."""
        return {
            "queries": self.queries,
            "head_queries": self.head_queries,
            "kernel_evals": self.kernel_evals,
            "cache_hits": self.cache_hits,
            "extensions": self.extensions,
            "rebuilds": self.rebuilds,
            "lru_evictions": self.lru_evictions,
            "wall_time_s": self.wall_time_s,
        }


@dataclass
class PosteriorBatch:
    """Per-head posterior moments over one shared joint grid.

    ``means``/``variances`` map head names to arrays of length
    ``joint_grid.shape[0]``.  Moments carry the unit of the head's
    training targets — weighted watts for ``"cost"`` (eq. 1), seconds
    for ``"delay"``, mAP in [0, 1] for ``"map"``; variances are the
    unit squared.  Standard deviations are derived lazily and cached
    (most consumers want either moments but not both copies).
    """

    joint_grid: np.ndarray
    means: dict[str, np.ndarray]
    variances: dict[str, np.ndarray]
    _stds: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    @property
    def n_points(self) -> int:
        return int(self.joint_grid.shape[0])

    @property
    def heads(self) -> tuple[str, ...]:
        return tuple(self.means)

    def mean(self, head: str) -> np.ndarray:
        return self.means[head]

    def variance(self, head: str) -> np.ndarray:
        return self.variances[head]

    def std(self, head: str) -> np.ndarray:
        cached = self._stds.get(head)
        if cached is None:
            cached = np.sqrt(self.variances[head])
            self._stds[head] = cached
        return cached

    def moments(self, head: str) -> tuple[np.ndarray, np.ndarray]:
        """``(mean, std)`` — the :meth:`GaussianProcess.predict_std` pair."""
        return self.means[head], self.std(head)


class _HeadState:
    """Cached cross-kernel solves of one head against one joint grid.

    ``cross`` and ``v`` are capacity-doubled row buffers so per-period
    extensions append without reallocating the full ``N x M`` block.
    """

    __slots__ = ("n", "factor_version", "cross", "v", "prior_var")

    def __init__(self, n_points: int, prior_var: np.ndarray) -> None:
        self.n = 0
        self.factor_version = -1
        self.cross = np.empty((0, n_points))
        self.v = np.empty((0, n_points))
        self.prior_var = prior_var

    def _reserve(self, rows: int) -> None:
        capacity = self.cross.shape[0]
        if rows <= capacity:
            return
        new_capacity = max(rows, 2 * capacity, 8)
        for name in ("cross", "v"):
            buffer = getattr(self, name)
            grown = np.empty((new_capacity, buffer.shape[1]))
            grown[: self.n] = buffer[: self.n]
            setattr(self, name, grown)


class SurrogateEngine:
    """Shared posterior evaluator for a family of GP heads on one grid.

    Parameters
    ----------
    heads:
        Mapping of head name (``"cost"``, ``"delay"``, ...) to the GP
        surrogate.  All heads must share the input dimension
        ``context_dim + control dims``.
    control_grid:
        ``(M, d_control)`` discretised control space; fixed for the
        engine's lifetime.
    context_dim:
        Length of the normalised context vector prefixed to each grid
        row.
    max_cached_contexts:
        LRU bound on distinct contexts whose joint grid and per-head
        solves are retained.  Each entry costs
        ``O(heads * N * M)`` floats, so the bound caps memory on long
        runs with many distinct contexts.
    batched:
        Serve same-shaped head groups through stacked linear algebra
        (see the module docstring).  ``None`` (default) follows the
        active :class:`~repro.core.backend.NumericsConfig`
        (``REPRO_BATCHED_HEADS``); pass ``True``/``False`` to pin the
        mode regardless of the environment.
    """

    def __init__(
        self,
        heads: Mapping[str, GaussianProcess],
        control_grid: np.ndarray,
        context_dim: int,
        max_cached_contexts: int = 16,
        batched: bool | None = None,
    ) -> None:
        if not heads:
            raise ValueError("at least one GP head is required")
        grid = np.ascontiguousarray(control_grid, dtype=float)
        if grid.ndim != 2 or grid.shape[0] == 0:
            raise ValueError(
                f"control_grid must be a non-empty 2-D array, got shape {grid.shape}"
            )
        if context_dim < 0:
            raise ValueError(f"context_dim must be >= 0, got {context_dim}")
        if max_cached_contexts < 1:
            raise ValueError(
                f"max_cached_contexts must be >= 1, got {max_cached_contexts}"
            )
        self._heads = dict(heads)
        n_dims = context_dim + grid.shape[1]
        for name, gp in self._heads.items():
            if gp.kernel.n_dims != n_dims:
                raise ValueError(
                    f"head {name!r} expects {gp.kernel.n_dims}-dim inputs, "
                    f"but context_dim {context_dim} + control grid width "
                    f"{grid.shape[1]} = {n_dims}"
                )
        self.control_grid = grid
        self.context_dim = int(context_dim)
        self.max_cached_contexts = int(max_cached_contexts)
        self.batched = (
            active_numerics().batched_heads if batched is None else bool(batched)
        )
        # context key -> (joint grid, head name -> _HeadState), LRU order.
        self._cache: OrderedDict[bytes, tuple[np.ndarray, dict[str, _HeadState]]]
        self._cache = OrderedDict()
        self.stats = EngineStats()

    # -- introspection --------------------------------------------------

    @property
    def heads(self) -> dict[str, GaussianProcess]:
        """Name-to-GP mapping (the dict is a copy; the GPs are live)."""
        return dict(self._heads)

    @property
    def n_cached_contexts(self) -> int:
        return len(self._cache)

    def reset_cache(self) -> None:
        """Drop every cached context (the GPs are untouched)."""
        self._cache.clear()

    # -- joint-grid assembly --------------------------------------------

    def _context_key(self, context: np.ndarray) -> tuple[np.ndarray, bytes]:
        arr = np.asarray(context, dtype=float).ravel()
        if arr.size != self.context_dim:
            raise ValueError(
                f"context must have {self.context_dim} entries, got {arr.size}"
            )
        if not np.all(np.isfinite(arr)):
            raise ValueError("context must be finite")
        return arr, arr.tobytes()

    def _entry(self, context: np.ndarray):
        arr, key = self._context_key(context)
        entry = self._cache.get(key)
        if entry is None:
            m = self.control_grid.shape[0]
            joint = np.empty((m, self.context_dim + self.control_grid.shape[1]))
            joint[:, : self.context_dim] = arr
            joint[:, self.context_dim:] = self.control_grid
            entry = (joint, {})
            self._cache[key] = entry
            while len(self._cache) > self.max_cached_contexts:
                self._cache.popitem(last=False)
                self.stats.lru_evictions += 1
        else:
            self._cache.move_to_end(key)
        return entry

    def joint_grid(self, context: np.ndarray) -> np.ndarray:
        """The cached ``(M, context_dim + d_control)`` joint grid.

        The returned array is shared with the cache — treat as
        read-only.
        """
        return self._entry(context)[0]

    # -- posterior sweep -------------------------------------------------

    def _state_for(self, name: str, joint: np.ndarray,
                   states: dict[str, _HeadState]) -> _HeadState:
        """The head's cache entry for this joint grid, created on miss."""
        state = states.get(name)
        if state is None:
            state = _HeadState(
                joint.shape[0], self._heads[name].kernel.diag(joint)
            )
            states[name] = state
        return state

    @staticmethod
    def _raise_no_factor(name: str) -> None:
        from repro.core.numerics import NumericalInstabilityError

        raise NumericalInstabilityError(
            f"head '{name}' has no usable Cholesky factor (a "
            "refactorisation exhausted the jitter ladder); refit the "
            "surrogate before sweeping the grid"
        )

    def _prior_moments(self, gp: GaussianProcess, state: _HeadState,
                       joint: np.ndarray, factor_version: int):
        """Empty-head moments: the prior, with the version kept current."""
        if state.factor_version != factor_version:
            # Covers a kernel/noise swap while the head is empty.
            state.prior_var = gp.kernel.diag(joint)
            state.factor_version = factor_version
        state.n = 0
        mean = np.full(joint.shape[0], gp.prior_mean)
        return mean, state.prior_var.copy()

    def _rebuild_state(self, gp: GaussianProcess, state: _HeadState,
                       x: np.ndarray, chol: np.ndarray,
                       factor_version: int, joint: np.ndarray) -> None:
        """Rebuild one head's cache entry exactly (cold or invalidated)."""
        n = x.shape[0]
        state.prior_var = gp.kernel.diag(joint)
        state._reserve(n)
        state.cross[:n] = gp.kernel(x, joint)
        state.v[:n] = get_backend().solve_triangular(
            chol, state.cross[:n], lower=True
        )
        state.n = n
        state.factor_version = factor_version
        self.stats.kernel_evals += n * joint.shape[0]
        self.stats.rebuilds += 1

    def _extend_state(self, gp: GaussianProcess, state: _HeadState,
                      x: np.ndarray, chol: np.ndarray,
                      joint: np.ndarray) -> None:
        """Extend one head's solves by the rank-1 rows added since cached."""
        n = x.shape[0]
        k0 = state.n
        state._reserve(n)
        state.cross[k0:n] = gp.kernel(x[k0:], joint)
        block = state.cross[k0:n] - chol[k0:n, :k0] @ state.v[:k0]
        state.v[k0:n] = get_backend().solve_triangular(
            chol[k0:n, k0:n], block, lower=True
        )
        state.n = n
        self.stats.kernel_evals += (n - k0) * joint.shape[0]
        self.stats.extensions += 1

    @staticmethod
    def _assemble_moments(gp: GaussianProcess, state: _HeadState,
                          alpha: np.ndarray):
        """Posterior moments from a current cache entry and live alpha."""
        n = state.n
        cross = state.cross[:n]
        v = state.v[:n]
        mean = gp.prior_mean + cross.T @ alpha
        variance = np.maximum(state.prior_var - np.sum(v**2, axis=0), 0.0)
        return mean, variance

    def _head_moments(
        self,
        name: str,
        joint: np.ndarray,
        states: dict[str, _HeadState],
    ) -> tuple[np.ndarray, np.ndarray]:
        gp = self._heads[name]
        state = self._state_for(name, joint, states)

        x, chol, alpha, factor_version = gp._posterior_state()
        if x is None:
            return self._prior_moments(gp, state, joint, factor_version)
        if chol is None:
            self._raise_no_factor(name)

        if state.factor_version != factor_version:
            # Cold cache, or the factor lineage broke (fit / eviction /
            # hyperparameter change): rebuild this entry exactly.
            self._rebuild_state(gp, state, x, chol, factor_version, joint)
        elif state.n < x.shape[0]:
            # Same factor lineage, k new rank-1 rows: extend the solves.
            self._extend_state(gp, state, x, chol, joint)
        else:
            self.stats.cache_hits += 1

        return self._assemble_moments(gp, state, alpha)

    def _batched_moments(
        self,
        names: tuple[str, ...],
        joint: np.ndarray,
        states: dict[str, _HeadState],
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """All heads' moments via grouped stacked linear algebra.

        Heads are classified exactly as the per-head loop would classify
        them (prior / rebuild / extend / hit); rebuilds sharing ``n``
        and a kernel family, and extensions sharing ``(k0, n)`` and a
        family, are served by one stacked cross-kernel build and one
        batched triangular solve.  Unbatchable heads (custom kernels)
        take the per-head path.  Counters are bumped per head, matching
        the per-head loop tally for tally.
        """
        means: dict[str, np.ndarray] = {}
        variances: dict[str, np.ndarray] = {}
        rebuilds: dict[tuple, list] = {}
        extensions: dict[tuple, list] = {}
        live: list[tuple] = []
        for name in names:
            gp = self._heads[name]
            state = self._state_for(name, joint, states)
            x, chol, alpha, factor_version = gp._posterior_state()
            if x is None:
                means[name], variances[name] = self._prior_moments(
                    gp, state, joint, factor_version
                )
                continue
            if chol is None:
                self._raise_no_factor(name)
            live.append((name, gp, state, alpha))
            n = x.shape[0]
            if state.factor_version != factor_version:
                key = batch_key(gp.kernel)
                if key is None:
                    self._rebuild_state(
                        gp, state, x, chol, factor_version, joint
                    )
                else:
                    rebuilds.setdefault((n, key), []).append(
                        (gp, state, x, chol, factor_version)
                    )
            elif state.n < n:
                key = batch_key(gp.kernel)
                if key is None:
                    self._extend_state(gp, state, x, chol, joint)
                else:
                    extensions.setdefault((state.n, n, key), []).append(
                        (gp, state, x, chol)
                    )
            else:
                self.stats.cache_hits += 1

        backend = get_backend()
        m = joint.shape[0]
        for (n, _key), group in rebuilds.items():
            cross_stack = stacked_cross(
                [gp.kernel for gp, *_ in group],
                [x for _, _, x, _, _ in group],
                joint,
            )
            chol_stack = backend.stack([chol for *_, chol, _ in group])
            v_stack = backend.solve_triangular(
                chol_stack, cross_stack, lower=True
            )
            for i, (gp, state, x, chol, factor_version) in enumerate(group):
                state.prior_var = gp.kernel.diag(joint)
                state._reserve(n)
                state.cross[:n] = cross_stack[i]
                state.v[:n] = v_stack[i]
                state.n = n
                state.factor_version = factor_version
                self.stats.kernel_evals += n * m
                self.stats.rebuilds += 1

        for (k0, n, _key), group in extensions.items():
            cross_stack = stacked_cross(
                [gp.kernel for gp, *_ in group],
                [x[k0:] for _, _, x, _ in group],
                joint,
            )
            # The correction against the already-solved rows is cheap and
            # head-local; only the (n-k0)-sized L22 solve is batched.
            blocks = backend.stack([
                cross_stack[i] - chol[k0:n, :k0] @ state.v[:k0]
                for i, (_, state, _, chol) in enumerate(group)
            ])
            l22_stack = backend.stack(
                [chol[k0:n, k0:n] for *_, chol in group]
            )
            v_stack = backend.solve_triangular(l22_stack, blocks, lower=True)
            for i, (gp, state, x, chol) in enumerate(group):
                state._reserve(n)
                state.cross[k0:n] = cross_stack[i]
                state.v[k0:n] = v_stack[i]
                state.n = n
                self.stats.kernel_evals += (n - k0) * m
                self.stats.extensions += 1

        for name, gp, state, alpha in live:
            means[name], variances[name] = self._assemble_moments(
                gp, state, alpha
            )
        return means, variances

    def posterior(
        self,
        context: np.ndarray,
        heads: Iterable[str] | None = None,
    ) -> PosteriorBatch:
        """Evaluate the selected heads over the context's joint grid.

        Parameters
        ----------
        context:
            Normalised context vector of length ``context_dim``.
        heads:
            Head names to evaluate; defaults to every head.

        Returns
        -------
        PosteriorBatch
            Per-head mean/variance arrays over the shared joint grid,
            numerically matching ``gp.predict(joint_grid)`` per head.
        """
        with telemetry.span("engine.posterior") as sp:
            started = time.perf_counter()
            joint, states = self._entry(context)
            names = tuple(self._heads) if heads is None else tuple(heads)
            for name in names:
                if name not in self._heads:
                    raise KeyError(
                        f"unknown head {name!r}; engine heads are {tuple(self._heads)}"
                    )
            if self.batched and len(names) > 1:
                means, variances = self._batched_moments(names, joint, states)
                means = {name: means[name] for name in names}
                variances = {name: variances[name] for name in names}
            else:
                means = {}
                variances = {}
                for name in names:
                    means[name], variances[name] = self._head_moments(
                        name, joint, states
                    )
            self.stats.queries += 1
            self.stats.head_queries += len(names)
            self.stats.wall_time_s += time.perf_counter() - started
            if sp:
                sp.set("heads", len(names))
                sp.set("points", int(joint.shape[0]))
            return PosteriorBatch(joint_grid=joint, means=means, variances=variances)
