"""Incremental multi-head posterior engine for the control-grid hot path.

EdgeBOL's per-period cost is dominated by evaluating three GP
posteriors (cost, delay, mAP — eqs. 3-4) over the joint grid built from
the observed context and the full control grid (11^4 = 14641 points in
the paper).  Evaluated naively through :meth:`GaussianProcess.predict`,
every period recomputes the ``N x M`` cross-kernel *and* the
``O(N^2 M)`` triangular solve ``V = L^-1 K(X, grid)`` from scratch.

:class:`SurrogateEngine` exploits two structural facts of Algorithm 1:

* the control grid is fixed, and contexts are CQI-quantised, so the
  same joint grid recurs period after period (always, in the static
  scenarios of Figs. 9-11; every sweep cycle in the dynamic Fig. 13);
* :meth:`GaussianProcess.add` extends the Cholesky factor by a rank-1
  block, so the factor of the first ``N`` observations is a leading
  principal block of the extended factor — cached solves against it
  stay valid and can be *extended* instead of recomputed.

Per (context, head) the engine caches the cross-kernel matrix ``K`` and
the solved ``V = L^-1 K``.  When ``k`` observations arrived since the
cache entry was built, only the new block is computed::

    K = [K_old]          V = [V_old                          ]
        [K_new]              [L22^-1 (K_new - L21 @ V_old)   ]

which costs ``O(k N M)`` — ``O(N M)`` per period — instead of
``O(N^2 M)``.  The posterior mean ``mu = m + K^T alpha`` is assembled
from the *live* ``alpha`` every query, so :meth:`GaussianProcess.
set_prior_mean` (which only rewrites ``alpha``) needs no invalidation;
anything that rebuilds the factor — ``fit``, eviction, a kernel or
noise-variance change after a hyperparameter refit — bumps the GP's
``factor_version`` and triggers an exact rebuild of the affected cache
entries on their next use.

All heads are evaluated in one pass over one shared joint grid and
returned as a :class:`PosteriorBatch`, which
:meth:`repro.core.safeset.SafeSetEstimator.safe_mask` (eq. 8) and
:func:`repro.core.acquisition.safe_lcb_index_from_posterior` (eq. 9)
consume directly.  Results are numerically interchangeable with direct
``predict`` calls (same factor, same kernel rows, same matrix-vector
products).

Timing and cache counters are kept in :class:`EngineStats` and surfaced
through :class:`repro.experiments.recorder.RunLog`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import solve_triangular

from repro.core.gp import GaussianProcess
from repro.telemetry import runtime as telemetry


@dataclass
class EngineStats:
    """Counters for the posterior hot path (surfaced in run logs).

    All counters are dimensionless tallies except ``wall_time_s``
    (seconds, monotonic clock).  The same sweep is also visible as the
    ``engine.posterior`` telemetry span when telemetry is enabled.
    """

    #: Number of :meth:`SurrogateEngine.posterior` calls.
    queries: int = 0
    #: Per-head posterior evaluations (``queries`` times heads asked).
    head_queries: int = 0
    #: Cross-kernel entries computed (full rebuilds + extensions).
    kernel_evals: int = 0
    #: Head states served fully from cache (no kernel work at all).
    cache_hits: int = 0
    #: Head states extended by the rows added since the last query.
    extensions: int = 0
    #: Head states rebuilt from scratch (cold cache or invalidation).
    rebuilds: int = 0
    #: Context entries dropped by the LRU bound.
    lru_evictions: int = 0
    #: Wall-clock seconds spent inside the engine.
    wall_time_s: float = 0.0

    def snapshot(self) -> dict:
        """Plain-dict copy for logging/serialisation."""
        return {
            "queries": self.queries,
            "head_queries": self.head_queries,
            "kernel_evals": self.kernel_evals,
            "cache_hits": self.cache_hits,
            "extensions": self.extensions,
            "rebuilds": self.rebuilds,
            "lru_evictions": self.lru_evictions,
            "wall_time_s": self.wall_time_s,
        }


@dataclass
class PosteriorBatch:
    """Per-head posterior moments over one shared joint grid.

    ``means``/``variances`` map head names to arrays of length
    ``joint_grid.shape[0]``.  Moments carry the unit of the head's
    training targets — weighted watts for ``"cost"`` (eq. 1), seconds
    for ``"delay"``, mAP in [0, 1] for ``"map"``; variances are the
    unit squared.  Standard deviations are derived lazily and cached
    (most consumers want either moments but not both copies).
    """

    joint_grid: np.ndarray
    means: dict[str, np.ndarray]
    variances: dict[str, np.ndarray]
    _stds: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    @property
    def n_points(self) -> int:
        return int(self.joint_grid.shape[0])

    @property
    def heads(self) -> tuple[str, ...]:
        return tuple(self.means)

    def mean(self, head: str) -> np.ndarray:
        return self.means[head]

    def variance(self, head: str) -> np.ndarray:
        return self.variances[head]

    def std(self, head: str) -> np.ndarray:
        cached = self._stds.get(head)
        if cached is None:
            cached = np.sqrt(self.variances[head])
            self._stds[head] = cached
        return cached

    def moments(self, head: str) -> tuple[np.ndarray, np.ndarray]:
        """``(mean, std)`` — the :meth:`GaussianProcess.predict_std` pair."""
        return self.means[head], self.std(head)


class _HeadState:
    """Cached cross-kernel solves of one head against one joint grid.

    ``cross`` and ``v`` are capacity-doubled row buffers so per-period
    extensions append without reallocating the full ``N x M`` block.
    """

    __slots__ = ("n", "factor_version", "cross", "v", "prior_var")

    def __init__(self, n_points: int, prior_var: np.ndarray) -> None:
        self.n = 0
        self.factor_version = -1
        self.cross = np.empty((0, n_points))
        self.v = np.empty((0, n_points))
        self.prior_var = prior_var

    def _reserve(self, rows: int) -> None:
        capacity = self.cross.shape[0]
        if rows <= capacity:
            return
        new_capacity = max(rows, 2 * capacity, 8)
        for name in ("cross", "v"):
            buffer = getattr(self, name)
            grown = np.empty((new_capacity, buffer.shape[1]))
            grown[: self.n] = buffer[: self.n]
            setattr(self, name, grown)


class SurrogateEngine:
    """Shared posterior evaluator for a family of GP heads on one grid.

    Parameters
    ----------
    heads:
        Mapping of head name (``"cost"``, ``"delay"``, ...) to the GP
        surrogate.  All heads must share the input dimension
        ``context_dim + control dims``.
    control_grid:
        ``(M, d_control)`` discretised control space; fixed for the
        engine's lifetime.
    context_dim:
        Length of the normalised context vector prefixed to each grid
        row.
    max_cached_contexts:
        LRU bound on distinct contexts whose joint grid and per-head
        solves are retained.  Each entry costs
        ``O(heads * N * M)`` floats, so the bound caps memory on long
        runs with many distinct contexts.
    """

    def __init__(
        self,
        heads: Mapping[str, GaussianProcess],
        control_grid: np.ndarray,
        context_dim: int,
        max_cached_contexts: int = 16,
    ) -> None:
        if not heads:
            raise ValueError("at least one GP head is required")
        grid = np.ascontiguousarray(control_grid, dtype=float)
        if grid.ndim != 2 or grid.shape[0] == 0:
            raise ValueError(
                f"control_grid must be a non-empty 2-D array, got shape {grid.shape}"
            )
        if context_dim < 0:
            raise ValueError(f"context_dim must be >= 0, got {context_dim}")
        if max_cached_contexts < 1:
            raise ValueError(
                f"max_cached_contexts must be >= 1, got {max_cached_contexts}"
            )
        self._heads = dict(heads)
        n_dims = context_dim + grid.shape[1]
        for name, gp in self._heads.items():
            if gp.kernel.n_dims != n_dims:
                raise ValueError(
                    f"head {name!r} expects {gp.kernel.n_dims}-dim inputs, "
                    f"but context_dim {context_dim} + control grid width "
                    f"{grid.shape[1]} = {n_dims}"
                )
        self.control_grid = grid
        self.context_dim = int(context_dim)
        self.max_cached_contexts = int(max_cached_contexts)
        # context key -> (joint grid, head name -> _HeadState), LRU order.
        self._cache: OrderedDict[bytes, tuple[np.ndarray, dict[str, _HeadState]]]
        self._cache = OrderedDict()
        self.stats = EngineStats()

    # -- introspection --------------------------------------------------

    @property
    def heads(self) -> dict[str, GaussianProcess]:
        """Name-to-GP mapping (the dict is a copy; the GPs are live)."""
        return dict(self._heads)

    @property
    def n_cached_contexts(self) -> int:
        return len(self._cache)

    def reset_cache(self) -> None:
        """Drop every cached context (the GPs are untouched)."""
        self._cache.clear()

    # -- joint-grid assembly --------------------------------------------

    def _context_key(self, context: np.ndarray) -> tuple[np.ndarray, bytes]:
        arr = np.asarray(context, dtype=float).ravel()
        if arr.size != self.context_dim:
            raise ValueError(
                f"context must have {self.context_dim} entries, got {arr.size}"
            )
        if not np.all(np.isfinite(arr)):
            raise ValueError("context must be finite")
        return arr, arr.tobytes()

    def _entry(self, context: np.ndarray):
        arr, key = self._context_key(context)
        entry = self._cache.get(key)
        if entry is None:
            m = self.control_grid.shape[0]
            joint = np.empty((m, self.context_dim + self.control_grid.shape[1]))
            joint[:, : self.context_dim] = arr
            joint[:, self.context_dim:] = self.control_grid
            entry = (joint, {})
            self._cache[key] = entry
            while len(self._cache) > self.max_cached_contexts:
                self._cache.popitem(last=False)
                self.stats.lru_evictions += 1
        else:
            self._cache.move_to_end(key)
        return entry

    def joint_grid(self, context: np.ndarray) -> np.ndarray:
        """The cached ``(M, context_dim + d_control)`` joint grid.

        The returned array is shared with the cache — treat as
        read-only.
        """
        return self._entry(context)[0]

    # -- posterior sweep -------------------------------------------------

    def _head_moments(
        self,
        name: str,
        joint: np.ndarray,
        states: dict[str, _HeadState],
    ) -> tuple[np.ndarray, np.ndarray]:
        gp = self._heads[name]
        state = states.get(name)
        if state is None:
            state = _HeadState(joint.shape[0], gp.kernel.diag(joint))
            states[name] = state

        x, chol, alpha, factor_version = gp._posterior_state()
        if x is None:
            if state.factor_version != factor_version:
                # Covers a kernel/noise swap while the head is empty.
                state.prior_var = gp.kernel.diag(joint)
                state.factor_version = factor_version
            state.n = 0
            mean = np.full(joint.shape[0], gp.prior_mean)
            return mean, state.prior_var.copy()
        if chol is None:
            from repro.core.numerics import NumericalInstabilityError

            raise NumericalInstabilityError(
                f"head '{name}' has no usable Cholesky factor (a "
                "refactorisation exhausted the jitter ladder); refit the "
                "surrogate before sweeping the grid"
            )

        n = x.shape[0]
        if state.factor_version != factor_version:
            # Cold cache, or the factor lineage broke (fit / eviction /
            # hyperparameter change): rebuild this entry exactly.
            state.prior_var = gp.kernel.diag(joint)
            state._reserve(n)
            state.cross[:n] = gp.kernel(x, joint)
            state.v[:n] = solve_triangular(chol, state.cross[:n], lower=True)
            state.n = n
            state.factor_version = factor_version
            self.stats.kernel_evals += n * joint.shape[0]
            self.stats.rebuilds += 1
        elif state.n < n:
            # Same factor lineage, k new rank-1 rows: extend the solves.
            k0 = state.n
            state._reserve(n)
            state.cross[k0:n] = gp.kernel(x[k0:], joint)
            block = state.cross[k0:n] - chol[k0:n, :k0] @ state.v[:k0]
            state.v[k0:n] = solve_triangular(
                chol[k0:n, k0:n], block, lower=True
            )
            state.n = n
            self.stats.kernel_evals += (n - k0) * joint.shape[0]
            self.stats.extensions += 1
        else:
            self.stats.cache_hits += 1

        cross = state.cross[:n]
        v = state.v[:n]
        mean = gp.prior_mean + cross.T @ alpha
        variance = np.maximum(state.prior_var - np.sum(v**2, axis=0), 0.0)
        return mean, variance

    def posterior(
        self,
        context: np.ndarray,
        heads: Iterable[str] | None = None,
    ) -> PosteriorBatch:
        """Evaluate the selected heads over the context's joint grid.

        Parameters
        ----------
        context:
            Normalised context vector of length ``context_dim``.
        heads:
            Head names to evaluate; defaults to every head.

        Returns
        -------
        PosteriorBatch
            Per-head mean/variance arrays over the shared joint grid,
            numerically matching ``gp.predict(joint_grid)`` per head.
        """
        with telemetry.span("engine.posterior") as sp:
            started = time.perf_counter()
            joint, states = self._entry(context)
            names = tuple(self._heads) if heads is None else tuple(heads)
            means: dict[str, np.ndarray] = {}
            variances: dict[str, np.ndarray] = {}
            for name in names:
                if name not in self._heads:
                    raise KeyError(
                        f"unknown head {name!r}; engine heads are {tuple(self._heads)}"
                    )
                means[name], variances[name] = self._head_moments(name, joint, states)
            self.stats.queries += 1
            self.stats.head_queries += len(names)
            self.stats.wall_time_s += time.perf_counter() - started
            if sp:
                sp.set("heads", len(names))
                sp.set("points", int(joint.shape[0]))
            return PosteriorBatch(joint_grid=joint, means=means, variances=variances)
