"""GP calibration diagnostics.

Safe exploration is only as safe as the surrogates' confidence
intervals; a GP whose intervals under-cover will certify unsafe
controls.  These diagnostics quantify coverage and sharpness on held
observations:

* :func:`interval_coverage` — the fraction of held-out targets inside
  ``mu +/- z * sqrt(sigma^2 + zeta^2)``; for a calibrated model this
  approaches the Gaussian mass of ``z``.
* :func:`standardised_errors` — ``(y - mu) / sqrt(sigma^2 + zeta^2)``,
  ~N(0, 1) for a calibrated model.
* :func:`calibration_report` — both, plus mean interval width, as a
  dict for logging.
* :class:`RunningCalibration` — a streaming accumulator of the same
  coverage statistic, fed one standardised error per round; this is
  what per-round decision traces report (``docs/OBSERVABILITY.md``)
  without ever re-touching held-out data.

Each helper accepts an optional precomputed ``posterior`` —
``(mean, variance)`` arrays such as one head of a
:class:`~repro.core.posterior.SurrogateEngine` sweep — so grid-wide
calibration checks reuse the hot path instead of issuing fresh
``predict`` calls.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.gp import GaussianProcess


def _predictive_std(
    gp: GaussianProcess,
    x: np.ndarray,
    posterior: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    if posterior is None:
        mean, var = gp.predict(x)
    else:
        mean = np.asarray(posterior[0], dtype=float).ravel()
        var = np.asarray(posterior[1], dtype=float).ravel()
        if mean.size != x.shape[0] or var.size != x.shape[0]:
            raise ValueError(
                f"posterior moments cover {mean.size} points but got "
                f"{x.shape[0]} inputs"
            )
    return mean, np.sqrt(var + gp.noise_variance)


def standardised_errors(
    gp: GaussianProcess,
    x: np.ndarray,
    y: np.ndarray,
    posterior: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Per-point z-scores of held-out targets under the predictive law."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if x.ndim == 1:
        x = x[None, :]
    if x.shape[0] != y.size:
        raise ValueError(f"got {x.shape[0]} inputs but {y.size} targets")
    mean, std = _predictive_std(gp, x, posterior=posterior)
    return (y - mean) / np.maximum(std, 1e-12)


def interval_coverage(
    gp: GaussianProcess,
    x: np.ndarray,
    y: np.ndarray,
    z: float = 2.0,
    posterior: tuple[np.ndarray, np.ndarray] | None = None,
) -> float:
    """Empirical coverage of the +/- z predictive interval."""
    if z <= 0:
        raise ValueError(f"z must be positive, got {z}")
    errors = standardised_errors(gp, x, y, posterior=posterior)
    return float(np.mean(np.abs(errors) <= z))


def expected_coverage(z: float) -> float:
    """Gaussian mass within +/- z standard deviations."""
    return float(math.erf(z / math.sqrt(2.0)))


class RunningCalibration:
    """Streaming z-score coverage of one surrogate head.

    Each round contributes one standardised error
    ``(y - mu) / sqrt(sigma^2 + zeta^2)`` computed from the posterior
    the agent *already evaluated* to make its decision (one-step-ahead,
    so the update that follows the observation never leaks into the
    score).  The running coverage converges to
    :func:`expected_coverage` for a calibrated model; a persistent gap
    below nominal is the "GP certifies unsafe controls" alarm.

    Parameters
    ----------
    z:
        Half-width of the monitored interval in predictive standard
        deviations (2.0 matches the default of
        :func:`interval_coverage`).
    """

    __slots__ = ("z", "n", "within", "error_sum", "error_sq_sum")

    def __init__(self, z: float = 2.0) -> None:
        """Start with no observed errors."""
        if z <= 0:
            raise ValueError(f"z must be positive, got {z}")
        self.z = float(z)
        self.n = 0
        self.within = 0
        self.error_sum = 0.0
        self.error_sq_sum = 0.0

    def update(self, error: float) -> None:
        """Fold in one standardised error (non-finite values rejected)."""
        error = float(error)
        if not math.isfinite(error):
            raise ValueError(f"standardised error must be finite, got {error!r}")
        self.n += 1
        if abs(error) <= self.z:
            self.within += 1
        self.error_sum += error
        self.error_sq_sum += error * error

    @property
    def coverage(self) -> float:
        """Fraction of errors inside +/- z so far (NaN before any)."""
        return self.within / self.n if self.n else float("nan")

    @property
    def expected(self) -> float:
        """Nominal coverage of a calibrated model at this z."""
        return expected_coverage(self.z)

    def snapshot(self) -> dict:
        """JSON-ready running statistics (coverage, z-moments, n)."""
        if self.n:
            mean = self.error_sum / self.n
            var = max(self.error_sq_sum / self.n - mean * mean, 0.0)
        else:
            mean = var = float("nan")
        return {
            "n": self.n,
            "z": self.z,
            "coverage": self.coverage,
            "expected": self.expected,
            "error_mean": mean,
            "error_std": math.sqrt(var) if self.n else float("nan"),
        }


def calibration_report(
    gp: GaussianProcess,
    x: np.ndarray,
    y: np.ndarray,
    z: float = 2.0,
    posterior: tuple[np.ndarray, np.ndarray] | None = None,
) -> dict:
    """Coverage, z-score moments and sharpness on held-out data."""
    x_arr = np.asarray(x, dtype=float)
    if x_arr.ndim == 1:
        x_arr = x_arr[None, :]
    errors = standardised_errors(gp, x_arr, y, posterior=posterior)
    _, std = _predictive_std(gp, x_arr, posterior=posterior)
    return {
        "n": int(errors.size),
        "coverage": float(np.mean(np.abs(errors) <= z)),
        "expected_coverage": expected_coverage(z),
        "z": float(z),
        "error_mean": float(errors.mean()),
        "error_std": float(errors.std()),
        "mean_interval_width": float(2.0 * z * std.mean()),
    }
