"""Deterministic fault injection against one layer of the stack.

A :class:`FaultInjector` owns the specs of a single fault *kind* plus a
dedicated RNG stream: firing decisions never touch the experiment's
KPI-noise generators, so a run with a fault plan installed differs from
the fault-free run only by the injected faults themselves.  Every
firing increments both a local ``counts`` dict (assertable without
telemetry) and the ``faults.<kind>.<mode>`` telemetry counters.

Injectors are handed out by :mod:`repro.faults.runtime`, which seeds
them from the plan seed, the consuming layer and (inside sweep workers)
the cell's seed-tree spawn key — the same SeedSequence discipline as
:func:`repro.utils.rng.seed_tree`, so chaos runs are bit-identical for
a given seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.numerics import MAX_JITTER_RETRIES
from repro.faults.plan import FaultSpec
from repro.telemetry import runtime as telemetry
from repro.utils.rng import ensure_rng

__all__ = ["FaultInjector", "InjectedWorkerCrash"]


class InjectedWorkerCrash(RuntimeError):
    """A sweep-worker crash forced by the fault plan.

    Raised inside the worker before the cell body runs; the sweep
    engine's retry path treats it like any other cell failure (it is
    picklable, so it survives the process boundary intact).
    """


class FaultInjector:
    """Decides, deterministically, whether each fault opportunity fires.

    Parameters
    ----------
    specs:
        The fault specs of one kind (see :class:`repro.faults.plan.FaultSpec`).
    rng:
        Seed or generator for the probabilistic firing decisions.
    kind:
        The fault kind this injector serves (labels its counters).
    """

    def __init__(self, specs, rng=None, kind: str = "") -> None:
        self._specs: tuple[FaultSpec, ...] = tuple(specs)
        self._rng = ensure_rng(rng)
        self.kind = kind
        self._opportunities = [0] * len(self._specs)
        self._fired = [0] * len(self._specs)
        #: Firing counts keyed ``"<kind>.<mode>"`` (live, test-assertable).
        self.counts: dict[str, int] = {}
        self._gp_raise_budget = 0

    @property
    def fired_total(self) -> int:
        """Total faults injected so far, across all specs."""
        return sum(self._fired)

    def _decide(self, index: int, spec: FaultSpec,
                opportunity: int | None = None) -> bool:
        """One opportunity of ``spec``: fire or not (records the firing).

        ``opportunity`` overrides the spec's internal opportunity
        counter (worker faults index opportunities by cell, not call).
        Probability draws happen only for probabilistic specs so adding
        an ``at``-based spec never shifts another spec's RNG stream.
        """
        if opportunity is None:
            opportunity = self._opportunities[index]
            self._opportunities[index] += 1
        if spec.max_events is not None and self._fired[index] >= spec.max_events:
            return False
        fire = opportunity in spec.at
        if not fire and spec.probability > 0.0:
            fire = bool(self._rng.random() < spec.probability)
        if fire:
            self._fired[index] += 1
            key = f"{spec.kind}.{spec.mode}"
            self.counts[key] = self.counts.get(key, 0) + 1
            telemetry.inc(f"faults.{key}")
            telemetry.inc("faults.injected")
        return fire

    # -- sensor faults ---------------------------------------------------

    def corrupt_reading(self, target: str, value: float) -> float:
        """Pass one noisy KPI reading through the sensor fault specs.

        ``target`` names the reading (``server_power``, ``bs_power``,
        ``delay``, ``map``); a spec with an empty target matches the two
        power readings (the paper's GPM-8213 meter).  Modes: ``nan``
        (garbage sample), ``dropout`` (sample lost — reads 0.0),
        ``spike`` (outlier, value × magnitude).
        """
        for index, spec in enumerate(self._specs):
            matches = (
                spec.target == target
                or (spec.target == "" and target in ("server_power", "bs_power"))
            )
            if not matches:
                continue
            if not self._decide(index, spec):
                continue
            if spec.mode == "nan":
                return float("nan")
            if spec.mode == "dropout":
                return 0.0
            return float(value) * spec.magnitude  # spike
        return float(value)

    # -- GP numerical faults ---------------------------------------------

    def gp_hook(self, site: str, attempt: int) -> None:
        """Fault hook for the GP factorisation degradation ladder.

        Called before every Cholesky attempt (sites ``"rank1"``,
        ``"refactorize"``, ``"likelihood"``).  Opportunity index = new
        factorisation *event* (an ``attempt == 0`` call).  A firing
        ``transient`` spec fails only the bare attempt, so jitter
        escalation (or the rank-1 → refactorize fallback) recovers; a
        ``persistent`` spec arms a raise budget covering exactly one
        full ladder — including the refactorize a failed rank-1 chains
        into — so ``NumericalInstabilityError`` propagates, after which
        the fault clears and a recovery refit can succeed.
        """
        if self._gp_raise_budget > 0:
            self._gp_raise_budget -= 1
            raise np.linalg.LinAlgError(
                f"injected GP fault at site '{site}' (attempt {attempt})"
            )
        if attempt != 0:
            return
        for index, spec in enumerate(self._specs):
            if spec.target and spec.target != site:
                continue
            if not self._decide(index, spec):
                continue
            ladder = MAX_JITTER_RETRIES + 1
            if spec.mode == "persistent":
                budget = ladder + (1 if site == "rank1" else 0)
            else:
                budget = 1
            self._gp_raise_budget = budget - 1  # this raise consumes one
            raise np.linalg.LinAlgError(
                f"injected GP fault ({spec.mode}) at site '{site}'"
            )

    # -- O-RAN bus faults ------------------------------------------------

    def bus_decision(self, topic: str) -> FaultSpec | None:
        """Fate of one published bus message: ``None`` delivers it.

        Returns the firing spec — mode ``loss`` drops the message, mode
        ``delay`` holds it for ``magnitude`` subsequent publishes on the
        topic.  A spec with an empty target matches every topic.
        """
        for index, spec in enumerate(self._specs):
            if spec.target and spec.target != topic:
                continue
            if self._decide(index, spec):
                return spec
        return None

    # -- sweep-worker faults ---------------------------------------------

    def worker_decision(self, cell_index: int, attempt: int) -> FaultSpec | None:
        """Fault for one sweep cell execution (``None`` = run normally).

        Opportunity index is the *cell index* so ``at`` entries name
        cells directly.  Faults fire only on the first attempt
        (``attempt == 0``) — the whole point of the retry ladder is that
        a re-run of the cell succeeds.
        """
        if attempt != 0:
            return None
        for index, spec in enumerate(self._specs):
            if self._decide(index, spec, opportunity=cell_index):
                return spec
        return None

    # -- fleet supervision faults ----------------------------------------

    def supervisor_decision(self, target: str,
                            opportunity: int | None = None) -> FaultSpec | None:
        """Fault for one supervised fleet opportunity (``None`` = healthy).

        Serves the ``cell``/``loop``/``mailbox`` kinds, where ``target``
        is the cell id and ``opportunity`` the period index (so ``at``
        entries name periods directly), and the ``snapshot`` kind, where
        ``opportunity`` is left ``None`` and each checkpoint write
        advances the spec's internal counter.  A spec with an empty
        target matches every cell.
        """
        for index, spec in enumerate(self._specs):
            if spec.target and spec.target != target:
                continue
            if self._decide(index, spec, opportunity=opportunity):
                return spec
        return None
