"""Typed fault specifications and the JSON-serialisable fault plan.

A :class:`FaultPlan` is a seed plus an ordered list of
:class:`FaultSpec` entries.  Each spec names a fault *kind* (which layer
it strikes), a kind-specific *mode*, and when it fires: either
deterministically at given opportunity indices (``at``) or as a
Bernoulli draw per opportunity (``probability``), optionally bounded by
``max_events``.  Plans are plain data — they serialise to/from JSON so
one committed file drives the CLI (``--faults plan.json``), the chaos
test suite and worker processes identically.

Fault taxonomy (see ``docs/ROBUSTNESS.md`` for the full contract):

======== ============================== ========================================
kind     modes                          opportunity
======== ============================== ========================================
sensor   ``nan``/``dropout``/``spike``  one noisy KPI reading (per target)
gp       ``transient``/``persistent``   one Cholesky factorisation event
bus      ``loss``/``delay``             one published O-RAN bus message
worker   ``crash``/``hang``             one sweep cell (opportunity = cell index)
cell     ``crash``                      one fleet cell-period (opportunity = t)
loop     ``stall``                      one fleet cell-period (opportunity = t)
snapshot ``corrupt``                    one supervisor checkpoint write
mailbox  ``overflow``                   one fleet cell-period (opportunity = t)
======== ============================== ========================================

The four fleet kinds (``cell``/``loop``/``snapshot``/``mailbox``) are
consumed by the fleet supervisor (:mod:`repro.oran.supervisor`); their
``target`` field names a cell (``cell003``, empty = every cell).  New
kinds are appended to :data:`KINDS` — the per-kind SeedSequence spawn
key is the kind's *index*, so appending preserves every existing plan's
firing streams bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.validation import check_non_negative, check_probability

__all__ = ["FaultSpec", "FaultPlan", "KINDS", "MODES"]

#: Recognised fault kinds, by the layer they strike.  Append-only: the
#: kind's index seeds its injector stream (:mod:`repro.faults.runtime`).
KINDS = ("sensor", "gp", "bus", "worker", "cell", "loop", "snapshot",
         "mailbox")

#: Kind-specific modes.
MODES = {
    "sensor": ("nan", "dropout", "spike"),
    "gp": ("transient", "persistent"),
    "bus": ("loss", "delay"),
    "worker": ("crash", "hang"),
    "cell": ("crash",),
    "loop": ("stall",),
    "snapshot": ("corrupt",),
    "mailbox": ("overflow",),
}

#: Sensor targets the testbed environment can corrupt ('' = any power).
SENSOR_TARGETS = ("", "server_power", "bs_power", "delay", "map")


@dataclass(frozen=True)
class FaultSpec:
    """One typed fault: what to inject, where, and when.

    Attributes
    ----------
    kind:
        Layer the fault strikes — one of :data:`KINDS`.
    mode:
        Kind-specific failure mode — see :data:`MODES`.
    target:
        Scope filter: a sensor reading name (``server_power``,
        ``bs_power``, ``delay``, ``map``), a bus topic, or empty for
        "any opportunity of this kind".
    probability:
        Per-opportunity Bernoulli firing probability in [0, 1].
    at:
        Deterministic opportunity indices that always fire (0-based;
        for ``worker`` faults the opportunity index is the cell index).
    magnitude:
        Mode parameter: spike multiplier (``sensor``/``spike``),
        publishes to hold a delayed message (``bus``/``delay``),
        seconds to sleep (``worker``/``hang``), flood messages to post
        (``mailbox``/``overflow``).
    max_events:
        Cap on total firings of this spec (``None`` = unbounded).
    """

    kind: str
    mode: str
    target: str = ""
    probability: float = 0.0
    at: tuple[int, ...] = ()
    magnitude: float = 8.0
    max_events: int | None = None

    def __post_init__(self) -> None:
        """Validate the kind/mode pair and the firing parameters."""
        if self.kind not in KINDS:
            raise ValueError(
                f"fault kind must be one of {KINDS}, got {self.kind!r}"
            )
        if self.mode not in MODES[self.kind]:
            raise ValueError(
                f"fault mode for kind '{self.kind}' must be one of "
                f"{MODES[self.kind]}, got {self.mode!r}"
            )
        check_probability(self.probability, "probability")
        check_non_negative(self.magnitude, "magnitude")
        object.__setattr__(
            self, "at", tuple(sorted(int(i) for i in self.at))
        )
        for index in self.at:
            if index < 0:
                raise ValueError(f"'at' indices must be >= 0, got {index}")
        if self.max_events is not None and self.max_events < 1:
            raise ValueError(
                f"max_events must be >= 1 when set, got {self.max_events}"
            )
        if self.kind == "sensor" and self.target not in SENSOR_TARGETS:
            raise ValueError(
                f"sensor target must be one of {SENSOR_TARGETS}, "
                f"got {self.target!r}"
            )
        if self.probability == 0.0 and not self.at:
            raise ValueError(
                f"fault ({self.kind}/{self.mode}) never fires: give a "
                "probability > 0 or explicit 'at' indices"
            )

    def to_dict(self) -> dict:
        """Plain-dict form (JSON manifest / process-boundary layout)."""
        spec = {
            "kind": self.kind,
            "mode": self.mode,
            "target": self.target,
            "probability": self.probability,
            "at": list(self.at),
            "magnitude": self.magnitude,
        }
        if self.max_events is not None:
            spec["max_events"] = self.max_events
        return spec

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultSpec":
        """Build a spec from its :meth:`to_dict` form, validating keys."""
        known = {
            "kind", "mode", "target", "probability", "at", "magnitude",
            "max_events",
        }
        unknown = set(raw) - known
        if unknown:
            raise ValueError(
                f"unknown fault-spec field(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        if "kind" not in raw or "mode" not in raw:
            raise ValueError("fault spec requires 'kind' and 'mode'")
        return cls(
            kind=raw["kind"],
            mode=raw["mode"],
            target=raw.get("target", ""),
            probability=float(raw.get("probability", 0.0)),
            at=tuple(raw.get("at", ())),
            magnitude=float(raw.get("magnitude", 8.0)),
            max_events=raw.get("max_events"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the ordered fault specs of one chaos scenario.

    The ``seed`` roots the plan's own SeedSequence tree (combined with
    the per-cell spawn key inside sweep workers), so every probabilistic
    firing decision is reproducible from the plan file alone and
    independent of the experiment's KPI-noise streams.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        """Normalise the spec container to a tuple."""
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def for_kind(self, kind: str) -> tuple[FaultSpec, ...]:
        """Specs of one fault kind, in plan order."""
        if kind not in KINDS:
            raise ValueError(f"fault kind must be one of {KINDS}, got {kind!r}")
        return tuple(s for s in self.specs if s.kind == kind)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON round trip / process boundary)."""
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultPlan":
        """Rebuild a plan from its :meth:`to_dict` form."""
        if not isinstance(raw, dict):
            raise ValueError(f"fault plan must be a JSON object, got {type(raw)}")
        unknown = set(raw) - {"seed", "faults"}
        if unknown:
            raise ValueError(
                f"unknown fault-plan field(s) {sorted(unknown)}; "
                "known: ['faults', 'seed']"
            )
        specs = tuple(
            FaultSpec.from_dict(entry) for entry in raw.get("faults", ())
        )
        return cls(specs=specs, seed=int(raw.get("seed", 0)))

    def to_json(self, path: "str | Path") -> Path:
        """Write the plan as an indented JSON file; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def from_json(cls, path: "str | Path") -> "FaultPlan":
        """Load a plan from a ``--faults`` JSON file."""
        path = Path(path)
        try:
            raw = json.loads(path.read_text())
        except FileNotFoundError:
            raise FileNotFoundError(f"fault plan not found: {path}") from None
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(raw)
