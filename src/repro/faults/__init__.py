"""Seedable, deterministic fault injection for chaos testing.

The subsystem has three parts:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`,
  the typed, JSON-serialisable description of *what* to inject
  (KPI sensor corruption, GP numerical failure, O-RAN bus loss/delay,
  sweep-worker crash/hang, fleet cell crash/stall, snapshot corruption,
  mailbox overflow) and *when* it fires;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the seeded
  per-layer decision engine with telemetry counters;
* :mod:`repro.faults.runtime` — process-local plan installation, the
  hook every instrumented layer consults at construction time.

Every experiment CLI accepts ``--faults plan.json``; the degradation
paths the faults exercise are documented in ``docs/ROBUSTNESS.md``.
"""

from repro.faults.injector import FaultInjector, InjectedWorkerCrash
from repro.faults.plan import KINDS, MODES, FaultPlan, FaultSpec
from repro.faults.runtime import (
    active_plan,
    install,
    make_injector,
    uninstall,
    use,
)

__all__ = [
    "FaultInjector",
    "InjectedWorkerCrash",
    "FaultPlan",
    "FaultSpec",
    "KINDS",
    "MODES",
    "active_plan",
    "install",
    "make_injector",
    "uninstall",
    "use",
]
