"""Process-local fault-plan state and injector hand-out.

Mirrors the :mod:`repro.telemetry.runtime` pattern: a fault plan is
*installed* process-wide, and instrumented layers ask for an injector
at construction time::

    from repro.faults import runtime as faults

    with faults.use(plan):
        env = EdgeAIEnvironment(...)   # picks up a 'sensor' injector
        agent = EdgeBOL(...)           # picks up a 'gp' injector

With no plan installed (the default), :func:`make_injector` returns
``None`` and every consumer takes its zero-overhead fault-free path —
experiment results are bit-identical with and without this module
imported.

Seeding: each injector draws from
``SeedSequence(plan.seed, spawn_key=(kind_id, *seed_path, instance))``
where ``seed_path`` is the sweep cell's spawn key inside worker
processes (installed by :mod:`repro.experiments.parallel`) — the same
spawn-tree discipline as :func:`repro.utils.rng.seed_tree`, so firing
decisions are reproducible per (plan seed, cell, construction order)
and independent of the experiment's own noise streams.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import KINDS, FaultPlan

__all__ = [
    "install", "uninstall", "use", "active_plan", "make_injector",
]


class _State:
    """Mutable process-local fault state (one instance per process)."""

    __slots__ = ("plan", "seed_path", "instances")

    def __init__(self) -> None:
        """Start with no plan installed."""
        self.plan: FaultPlan | None = None
        self.seed_path: tuple[int, ...] = ()
        self.instances: dict[str, int] = {}


_STATE = _State()


def active_plan() -> FaultPlan | None:
    """The currently installed plan (``None`` when fault-free)."""
    return _STATE.plan


def install(plan: FaultPlan | None, seed_path: tuple[int, ...] = ()) -> None:
    """Install ``plan`` process-wide (``None`` clears it).

    ``seed_path`` namespaces the injector seed tree — sweep workers pass
    the cell's spawn key so each cell gets independent, reproducible
    fault streams.  Installing resets the per-layer instance counters,
    so two identical runs hand out identical injectors.
    """
    if plan is not None and not isinstance(plan, FaultPlan):
        raise TypeError(f"expected a FaultPlan or None, got {type(plan)!r}")
    _STATE.plan = plan
    _STATE.seed_path = tuple(int(k) for k in seed_path)
    _STATE.instances = {}


def uninstall() -> None:
    """Clear any installed plan (no-op when none is active)."""
    install(None)


@contextmanager
def use(plan: FaultPlan | None, seed_path: tuple[int, ...] = ()):
    """Install ``plan`` for the duration of the block, then restore.

    The previous plan (and seed path) is reinstated on exit, so nested
    scopes compose — e.g. a chaos test wrapping a sweep whose workers
    re-install the plan per cell.
    """
    previous = (_STATE.plan, _STATE.seed_path)
    install(plan, seed_path=seed_path)
    try:
        yield
    finally:
        install(previous[0], seed_path=previous[1])


def make_injector(kind: str) -> FaultInjector | None:
    """An injector for one layer, or ``None`` when no fault applies.

    Consumers call this once at construction.  Returns ``None`` when no
    plan is installed or the plan has no specs of ``kind``, so the
    fault-free hot path stays allocation-free.
    """
    if kind not in KINDS:
        raise ValueError(f"fault kind must be one of {KINDS}, got {kind!r}")
    plan = _STATE.plan
    if plan is None:
        return None
    specs = plan.for_kind(kind)
    if not specs:
        return None
    instance = _STATE.instances.get(kind, 0)
    _STATE.instances[kind] = instance + 1
    seed = np.random.SeedSequence(
        plan.seed,
        spawn_key=(KINDS.index(kind), *_STATE.seed_path, instance),
    )
    return FaultInjector(specs, rng=np.random.default_rng(seed), kind=kind)
