"""Fleet observability: metrics store, causal tracing and SLO/energy ledger.

The pipeline is in-process and dependency-free (stdlib only), built to
answer the operational questions the paper's headline claim raises:
*how much energy is this fleet saving right now, and which cells are
burning their violation budget?*

* :class:`~repro.fleetobs.store.MetricStore` — idempotent ingestion of
  telemetry records (KPI samples, decision traces, alerts, supervision
  events, spans) into per-``(cell, series)`` ring buffers keyed by
  virtual-time period, with multi-resolution rollups and a query API.
* :mod:`repro.fleetobs.tracing` — causal trace propagation through the
  async O-RAN bus so one BO round stitches into a single
  cross-component span tree, plus the critical-path report.
* :mod:`repro.fleetobs.ledger` — per-cell and fleet-wide error-budget
  burn rates and cumulative energy saved vs the fixed-max-power
  baseline the paper compares against.
* :mod:`repro.fleetobs.status` — the ``repro fleet-status`` ASCII
  dashboard over a dumped metrics JSONL.

Everything is keyed on virtual time and never touches an RNG, so a
``--metrics`` run stays bit-identical to an uninstrumented run at the
same seed (asserted in ``tests/test_fleetobs.py``).  See
``docs/OBSERVABILITY.md``, "Fleet metrics & SLOs".
"""

from repro.fleetobs.ledger import FleetLedger, fixed_max_baseline_w
from repro.fleetobs.status import render_status, status_payload
from repro.fleetobs.store import MetricStore
from repro.fleetobs.tracing import RoundTracer, critical_path_report

__all__ = [
    "MetricStore",
    "FleetLedger",
    "fixed_max_baseline_w",
    "RoundTracer",
    "critical_path_report",
    "render_status",
    "status_payload",
]
