"""The fleet metrics store: idempotent ingestion, ring buffers, queries.

A :class:`MetricStore` consumes the *record* dialect every observability
layer in this repo already speaks — plain dicts with a ``"type"`` key
(``kpi``, ``decision``, ``alert``, ``span``, ``metrics``) plus the
supervision events of :mod:`repro.oran.supervisor` (records with an
``event`` field) — and organises the numeric payload into
per-``(cell, series)`` ring buffers keyed by virtual-time period.

Ingestion is **idempotent**: every record maps to a dedupe key
(``(kpi, cell, t)``, ``(alert, rule, cell, t)``, span ids, ...), and a
record whose key was already seen is counted as a duplicate and
otherwise ignored.  Supervisor restarts and crash-recovery replays can
therefore re-emit periods freely without double-counting — re-ingesting
a whole dumped file is a no-op.

Two resolutions are kept per series: the raw ``(t, value)`` ring
(bounded by ``raw_capacity``) and per-``rollup_every``-period rollup
buckets (mean/min/max/p50/p95/count, bounded by ``max_buckets``).  The
query API covers range queries, cross-cell aggregation and top-k cells
by any series.

The store is sink-compatible (``emit``/``close``), so it can be
installed directly as a telemetry sink
(:func:`repro.telemetry.runtime.add_sink`) and as a decision sink
(:func:`repro.obs.runtime.use`) at the same time.
"""

from __future__ import annotations

import json
import math
from collections import deque
from pathlib import Path

from repro.telemetry.export import _jsonable

__all__ = ["MetricStore"]

#: Series extracted from one ``type: "kpi"`` record (field -> series).
_KPI_SERIES = (
    "cost", "delay_s", "map_score", "server_power_w", "bs_power_w",
    "delay_violation", "map_violation", "baseline_power_w",
)

#: Series extracted from one ``type: "decision"`` record.  KPI records
#: are authoritative for outcome series; decisions contribute only the
#: learner-side series so the two never double-count one period.
_DECISION_SERIES = {
    "safe_fraction": lambda r: (r.get("safe_set") or {}).get("fraction"),
    "delay_slack_s": lambda r: (r.get("margins") or {}).get("delay_slack_s"),
    "map_slack": lambda r: (r.get("margins") or {}).get("map_slack"),
}


def _percentile(ordered: list, fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted value list."""
    if not ordered:
        return float("nan")
    rank = max(1, math.ceil(fraction * len(ordered)))
    return float(ordered[rank - 1])


def _summary(values: list) -> dict:
    """count/mean/min/max/p50/p95 over ``values`` (empty-safe)."""
    if not values:
        return {"count": 0, "mean": None, "min": None, "max": None,
                "p50": None, "p95": None}
    ordered = sorted(values)
    return {
        "count": len(values),
        "mean": float(sum(values) / len(values)),
        "min": float(ordered[0]),
        "max": float(ordered[-1]),
        "p50": _percentile(ordered, 0.50),
        "p95": _percentile(ordered, 0.95),
    }


class SeriesBuffer:
    """One ``(cell, series)`` pair: raw ring + rollup buckets."""

    __slots__ = ("raw", "rollup_every", "_buckets", "max_buckets")

    def __init__(self, raw_capacity: int = 512, rollup_every: int = 10,
                 max_buckets: int = 4096) -> None:
        """Create an empty buffer with the given bounds."""
        self.raw: deque = deque(maxlen=raw_capacity)
        self.rollup_every = int(rollup_every)
        self.max_buckets = int(max_buckets)
        self._buckets: dict[int, list] = {}

    def add(self, t: int, value: float) -> None:
        """Append one ``(t, value)`` point (raw ring + its rollup bucket)."""
        self.raw.append((t, value))
        index = t // self.rollup_every
        bucket = self._buckets.get(index)
        if bucket is None:
            if len(self._buckets) >= self.max_buckets:
                self._buckets.pop(min(self._buckets))
            bucket = self._buckets[index] = []
        bucket.append(value)

    def values(self, t_min: "int | None" = None,
               t_max: "int | None" = None) -> list:
        """Raw ``(t, value)`` points with ``t_min <= t <= t_max``."""
        return [
            (t, v) for t, v in self.raw
            if (t_min is None or t >= t_min) and (t_max is None or t <= t_max)
        ]

    def rollups(self) -> list:
        """One summary dict per rollup bucket, oldest first."""
        out = []
        for index in sorted(self._buckets):
            entry = _summary(self._buckets[index])
            entry["t_start"] = index * self.rollup_every
            entry["t_end"] = (index + 1) * self.rollup_every - 1
            out.append(entry)
        return out


class MetricStore:
    """Idempotent fleet-wide time-series store over observability records.

    Parameters
    ----------
    raw_capacity:
        Raw points retained per ``(cell, series)`` ring.
    rollup_every:
        Periods per rollup bucket (the coarse resolution).
    max_spans:
        Span records retained for critical-path analysis.
    max_records:
        Raw records retained for :meth:`dump_jsonl` re-export.
    """

    #: Label used for records that carry no cell/agent attribution.
    FLEET_CELL = "_fleet"

    def __init__(self, raw_capacity: int = 512, rollup_every: int = 10,
                 max_spans: int = 20000, max_records: int = 200000) -> None:
        """Create an empty store with the given retention bounds."""
        self.raw_capacity = int(raw_capacity)
        self.rollup_every = int(rollup_every)
        self._series: dict[tuple, SeriesBuffer] = {}
        self._seen: set = set()
        self._spans: deque = deque(maxlen=int(max_spans))
        self._alerts: list[dict] = []
        self._events: list[dict] = []
        self._records: deque = deque(maxlen=int(max_records))
        self.last_metrics: "dict | None" = None
        self.ingested = 0
        self.duplicates = 0
        self.by_type: dict[str, int] = {}

    # -- sink surface ----------------------------------------------------

    def emit(self, record: dict) -> None:
        """Sink-compatible alias of :meth:`ingest` (return value dropped)."""
        self.ingest(record)

    def close(self) -> None:
        """No-op (memory needs no flushing)."""

    # -- ingestion -------------------------------------------------------

    def _cell_of(self, record: dict) -> str:
        """The cell a record belongs to (``agent`` label as fallback)."""
        cell = record.get("cell") or record.get("agent")
        return str(cell) if cell else self.FLEET_CELL

    def _key_of(self, record: dict) -> tuple:
        """The record's dedupe key (identity for replay idempotency)."""
        kind = record.get("type")
        t = record.get("t")
        if "event" in record:
            return ("event", str(record.get("event")), self._cell_of(record), t)
        if kind == "kpi":
            return ("kpi", self._cell_of(record), t)
        if kind == "decision":
            return ("decision", self._cell_of(record), t)
        if kind == "alert":
            return ("alert", str(record.get("rule")), self._cell_of(record), t)
        if kind == "span":
            return ("span", record.get("id"))
        # Metrics snapshots (and unknown types) key on content: the
        # only way to identify "the same snapshot seen twice".
        return (str(kind), json.dumps(_jsonable(record), sort_keys=True))

    def _add_point(self, cell: str, series: str, t, value) -> None:
        """File one numeric point, creating the series buffer on demand."""
        if isinstance(value, bool):
            value = float(value)
        elif not isinstance(value, (int, float)):
            return
        if isinstance(value, float) and not math.isfinite(value):
            return
        key = (cell, series)
        buffer = self._series.get(key)
        if buffer is None:
            buffer = self._series[key] = SeriesBuffer(
                raw_capacity=self.raw_capacity,
                rollup_every=self.rollup_every,
            )
        buffer.add(int(t) if isinstance(t, (int, float)) else 0, float(value))

    def ingest(self, record) -> bool:
        """Ingest one record; returns False for non-dicts and duplicates."""
        if not isinstance(record, dict):
            return False
        key = self._key_of(record)
        if key in self._seen:
            self.duplicates += 1
            return False
        self._seen.add(key)
        self.ingested += 1
        kind = "event" if "event" in record else str(record.get("type"))
        self.by_type[kind] = self.by_type.get(kind, 0) + 1
        self._records.append(record)

        cell = self._cell_of(record)
        t = record.get("t", 0)
        if kind == "kpi":
            for field in _KPI_SERIES:
                self._add_point(cell, field, t, record.get(field))
        elif kind == "decision":
            for series, getter in _DECISION_SERIES.items():
                self._add_point(cell, series, t, getter(record))
            self._add_point(cell, "regret",
                            t, (record.get("regret") or {}).get("cumulative"))
        elif kind == "alert":
            self._alerts.append(record)
            self._add_point(cell, "alerts", t, 1)
        elif kind == "event":
            self._events.append(record)
        elif kind == "span":
            self._spans.append(record)
        elif kind == "metrics":
            self.last_metrics = record
        return True

    def ingest_jsonl(self, path: "str | Path") -> int:
        """Ingest every record of a JSONL file; returns records accepted.

        Blank lines are skipped; a malformed line raises ``ValueError``
        naming the line number.  Re-ingesting a file the store already
        holds is a no-op (every record dedupes).
        """
        accepted = 0
        with Path(path).open() as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}:{lineno}: invalid JSON in metrics file "
                        f"({exc})"
                    ) from exc
                if self.ingest(record):
                    accepted += 1
        return accepted

    def dump_jsonl(self, path: "str | Path") -> Path:
        """Write every retained record to ``path`` (one JSON per line)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for record in self._records:
                json.dump(_jsonable(record), handle, separators=(",", ":"))
                handle.write("\n")
        return path

    # -- queries ---------------------------------------------------------

    def cells(self) -> list:
        """Every cell with at least one series point, sorted."""
        return sorted({cell for cell, _ in self._series})

    def series_names(self, cell: "str | None" = None) -> list:
        """Series names (for one cell, or across the fleet), sorted."""
        return sorted({
            name for c, name in self._series if cell is None or c == cell
        })

    def series(self, cell: str, name: str, t_min: "int | None" = None,
               t_max: "int | None" = None) -> list:
        """Raw ``(t, value)`` points of one cell's series (range query)."""
        buffer = self._series.get((cell, name))
        return buffer.values(t_min, t_max) if buffer is not None else []

    def rollups(self, cell: str, name: str) -> list:
        """Per-bucket rollup summaries of one cell's series."""
        buffer = self._series.get((cell, name))
        return buffer.rollups() if buffer is not None else []

    def aggregate(self, name: str, t_min: "int | None" = None,
                  t_max: "int | None" = None) -> dict:
        """Cross-cell summary of ``name`` over every cell's raw points."""
        values: list = []
        for (cell, series), buffer in self._series.items():
            if series == name:
                values.extend(v for _, v in buffer.values(t_min, t_max))
        return _summary(values)

    def top_k(self, name: str, k: int = 5, agg: str = "mean",
              reverse: bool = True) -> list:
        """Top-``k`` ``(cell, value)`` by a per-cell aggregate of ``name``.

        ``agg`` is one of ``mean``/``min``/``max``/``p50``/``p95``/
        ``count``/``sum``; ties break on the cell id so the ranking is
        deterministic.
        """
        ranked = []
        for (cell, series), buffer in self._series.items():
            if series != name:
                continue
            values = [v for _, v in buffer.raw]
            if not values:
                continue
            if agg == "sum":
                value = float(sum(values))
            else:
                stats = _summary(values)
                if agg not in stats:
                    raise ValueError(f"unknown aggregate {agg!r}")
                value = stats[agg]
            ranked.append((cell, value))
        ranked.sort(key=lambda item: (-item[1] if reverse else item[1],
                                      item[0]))
        return ranked[:k]

    def alerts(self) -> list:
        """Every ingested alert record, in ingestion order."""
        return list(self._alerts)

    def events(self) -> list:
        """Every ingested supervision event, in ingestion order."""
        return list(self._events)

    def spans(self) -> list:
        """Retained span records (bounded), in ingestion order."""
        return list(self._spans)

    def summary(self) -> dict:
        """Ingestion accounting: totals, duplicates, per-type counts."""
        return {
            "ingested": self.ingested,
            "duplicates": self.duplicates,
            "by_type": dict(sorted(self.by_type.items())),
            "cells": len(self.cells()),
            "series": len(self._series),
        }

    def metrics_snapshot(self) -> dict:
        """The store's own accounting in metrics-snapshot shape.

        Render with
        :func:`repro.telemetry.export.prometheus_exposition` to expose
        the store alongside the runtime's registry.
        """
        counters = {
            "fleetobs.ingested": self.ingested,
            "fleetobs.duplicates": self.duplicates,
        }
        for kind, count in sorted(self.by_type.items()):
            counters[f"fleetobs.records.{kind}"] = count
        return {
            "counters": counters,
            "gauges": {
                "fleetobs.cells": float(len(self.cells())),
                "fleetobs.series": float(len(self._series)),
            },
            "histograms": {},
        }
