"""Causal tracing of fleet rounds across the async O-RAN control plane.

The async bus breaks span parentage by design: a publish enqueues into
per-subscriber mailboxes and the handler runs later inside a consumer
task, far from the publisher's stack.  Two pieces stitch it back
together:

* The bus propagates the publisher's span context inside the message
  envelope (:class:`repro.oran.bus.AsyncMessageBus` wraps messages in a
  traced envelope whenever telemetry is recording and a span is open)
  and the consumer installs that context around the handler under a
  ``bus.deliver`` span — so every hop of a control message (A1 -> xApp
  -> E2 -> node, E2 indication -> KPI xApp -> O1 -> collector) parents
  under the span that published it.
* :class:`RoundTracer` gives every ``(cell, period)`` of a fleet run
  its own root span (``fleet.round``) and keeps a per-cell span
  context across the interleaved fleet stages, so one BO round is one
  trace tree even though the runtime batches cells per stage.

:func:`critical_path_report` reconstructs the round trees from emitted
span records and aggregates where round time goes per hop — the tool
for explaining the 1→32-cell per-cell throughput collapse measured in
``BENCH_control_plane.json``.
"""

from __future__ import annotations

import re
from contextlib import contextmanager

from repro.telemetry import runtime as telemetry
from repro.telemetry import spans

__all__ = ["RoundTracer", "critical_path_report"]

#: Per-cell topic prefixes (``cell003.e2.indication``) normalised away
#: so hops aggregate across the fleet.
_CELL_PREFIX = re.compile(r"cell\d+\.")


class RoundTracer:
    """Per-cell ``fleet.round`` root spans across interleaved stages.

    The fleet runtime batches cells per stage (decide for every cell,
    drain, actuate for every cell, drain, ...), so a cell's round is
    not one contiguous stack scope.  The tracer keeps one private span
    context per cell: :meth:`begin` opens the root span inside it,
    :meth:`stage` swaps it in around each stage slice, and :meth:`end`
    closes the root.  Publishes made inside a stage slice capture the
    cell's context (via the loop's task-context capture), which is what
    threads the bus hops into the right round tree.
    """

    def __init__(self) -> None:
        """Create a tracer with no open rounds."""
        self._contexts: dict[str, list] = {}
        self._roots: dict[str, object] = {}

    def begin(self, cell_id: str, t: int) -> None:
        """Open the ``fleet.round`` root span for ``cell_id`` at ``t``."""
        context: list = []
        self._contexts[cell_id] = context
        saved = spans.set_context(context)
        try:
            root = telemetry.span("fleet.round", cell=cell_id, t=t)
            root.__enter__()
            self._roots[cell_id] = root
        finally:
            spans.set_context(saved)

    @contextmanager
    def stage(self, cell_id: str):
        """Run one stage slice under ``cell_id``'s round context."""
        saved = spans.set_context(self._contexts.setdefault(cell_id, []))
        try:
            yield
        finally:
            spans.set_context(saved)

    def end(self, cell_id: str) -> None:
        """Close ``cell_id``'s round span (no-op when not open)."""
        root = self._roots.pop(cell_id, None)
        if root is None:
            return
        saved = spans.set_context(self._contexts.get(cell_id, []))
        try:
            root.__exit__(None, None, None)
        finally:
            spans.set_context(saved)
            self._contexts.pop(cell_id, None)

    def close(self) -> None:
        """Close any rounds still open (crash-tolerant cleanup)."""
        for cell_id in list(self._roots):
            self.end(cell_id)


def _hop_name(record: dict) -> str:
    """A span record's aggregation key (topic-qualified, cell-stripped)."""
    name = str(record.get("name"))
    topic = (record.get("attrs") or {}).get("topic")
    if topic:
        return f"{name}:{_CELL_PREFIX.sub('', str(topic))}"
    return name


def critical_path_report(span_records) -> dict:
    """Aggregate round trees into hop totals and the modal critical path.

    ``span_records`` are ``type: "span"`` dicts (any other types are
    ignored).  Trees are grouped by ``trace`` id and only trees rooted
    at a ``fleet.round`` span count as rounds.  Returns::

        {
          "rounds": <number of round trees>,
          "round_mean_s": <mean root duration>,
          "hops": [{"hop", "count", "total_s", "mean_s", "share"} ...],
          "critical_path": [{"hop", "mean_s"} ...],
          "critical_path_share": <fraction of rounds on the modal path>,
        }

    The per-round critical path follows the slowest child at every
    level; the report keeps the modal path across rounds with its mean
    per-hop durations.
    """
    records = [
        r for r in span_records
        if r.get("type") == "span" and r.get("duration_s") is not None
    ]
    by_id = {r["id"]: r for r in records}
    children: dict[int, list] = {}
    roots = []
    for r in records:
        parent = r.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(r)
        if r.get("name") == "fleet.round" and (
            parent is None or parent not in by_id
        ):
            roots.append(r)

    hops: dict[str, list] = {}
    total_round_s = 0.0
    path_counts: dict[tuple, int] = {}
    path_durations: dict[tuple, dict] = {}
    for root in roots:
        total_round_s += float(root["duration_s"])
        # Hop totals: every span in this round tree.
        stack = [root]
        while stack:
            node = stack.pop()
            hops.setdefault(_hop_name(node), []).append(
                float(node["duration_s"])
            )
            stack.extend(children.get(node["id"], ()))
        # Critical path: slowest child at each level (root excluded).
        path = []
        node = root
        durations = {}
        while True:
            kids = children.get(node["id"], ())
            if not kids:
                break
            node = max(kids, key=lambda r: (float(r["duration_s"]),
                                            -int(r["id"])))
            hop = _hop_name(node)
            path.append(hop)
            durations.setdefault(hop, []).append(float(node["duration_s"]))
        key = tuple(path)
        path_counts[key] = path_counts.get(key, 0) + 1
        merged = path_durations.setdefault(key, {})
        for hop, values in durations.items():
            merged.setdefault(hop, []).extend(values)

    hop_rows = [
        {
            "hop": hop,
            "count": len(values),
            "total_s": float(sum(values)),
            "mean_s": float(sum(values) / len(values)),
            "share": (
                float(sum(values) / total_round_s) if total_round_s else 0.0
            ),
        }
        for hop, values in hops.items()
        if hop != "fleet.round"
    ]
    hop_rows.sort(key=lambda row: (-row["total_s"], row["hop"]))

    modal_path: list = []
    modal_share = 0.0
    if path_counts:
        key = max(sorted(path_counts), key=lambda k: path_counts[k])
        durations = path_durations[key]
        modal_path = [
            {
                "hop": hop,
                "mean_s": float(
                    sum(durations[hop]) / len(durations[hop])
                ),
            }
            for hop in key
        ]
        modal_share = path_counts[key] / len(roots)

    return {
        "rounds": len(roots),
        "round_mean_s": (total_round_s / len(roots)) if roots else None,
        "hops": hop_rows,
        "critical_path": modal_path,
        "critical_path_share": modal_share,
    }
