"""SLO error budgets and the energy-savings ledger over a metric store.

Two rolling accounts per cell, fed by the ``type: "kpi"`` records the
fleet runtime ingests each period:

* **SLO burn** — the paper's service constraints (``delay_s <= d_max``,
  ``mAP >= rho_min``) are treated as SLOs with an allowed violation
  budget.  The *burn rate* is the observed violation rate divided by
  the budget: 1.0 means the cell spends its error budget exactly as
  fast as allowed, >1 means it will exhaust the budget early.  Both a
  whole-run rate and a rolling-window rate are reported (the window
  catches cells that went bad recently).
* **Energy ledger** — cumulative energy saved vs the fixed-max-power
  baseline the paper compares against: every period contributes
  ``(baseline_w - (bs_power_w + server_power_w)) * period_s`` joules,
  where the baseline is the deterministic rated maximum of the cell's
  hardware config (:func:`fixed_max_baseline_w`).

Nothing here touches an RNG; the ledger is pure arithmetic over stored
series, so it can run live during a fleet run or offline over a dumped
``metrics.jsonl``.
"""

from __future__ import annotations

from repro.ran import phy

__all__ = ["FleetLedger", "fixed_max_baseline_w",
           "DEFAULT_DELAY_BUDGET", "DEFAULT_MAP_BUDGET"]

#: Default allowed delay-violation rate (fraction of periods).
DEFAULT_DELAY_BUDGET = 0.10
#: Default allowed mAP-violation rate (fraction of periods).
DEFAULT_MAP_BUDGET = 0.10


def fixed_max_baseline_w(config) -> float:
    """Rated fixed-max-power draw (W) of one cell's hardware config.

    The paper's energy-savings baseline: the BS serving at 100% airtime
    on the top MCS (:attr:`repro.ran.power.BSPowerModel.max_power_w`)
    plus the edge server with the GPU at its maximum power cap on an
    idle-powered host.  Derived purely from :class:`TestbedConfig`
    fields, so it is deterministic per config.
    """
    bs_max = (
        float(config.bs_idle_power_w)
        + float(config.bs_base_busy_power_w)
        + float(config.bs_mcs_busy_power_w) * phy.mcs_efficiency(phy.MAX_MCS)
    )
    server_max = float(config.host_idle_power_w) + float(
        config.gpu_max_power_cap_w
    )
    return bs_max + server_max


def _burn(violations: int, periods: int, budget: float) -> "float | None":
    """Error-budget burn rate (violation rate over allowed rate)."""
    if periods <= 0:
        return None
    return (violations / periods) / budget if budget > 0 else None


class FleetLedger:
    """SLO and energy accounting over a :class:`MetricStore`.

    Parameters
    ----------
    store:
        The :class:`~repro.fleetobs.store.MetricStore` holding the
        fleet's KPI series.
    delay_budget, map_budget:
        Allowed violation rates (error budgets) for the two SLOs.
    window:
        Rolling-window length in periods for the recent burn rates.
    period_s:
        Wall seconds one virtual period represents (energy conversion
        factor; the default 1.0 reports watt-periods as joules).
    """

    def __init__(self, store, delay_budget: float = DEFAULT_DELAY_BUDGET,
                 map_budget: float = DEFAULT_MAP_BUDGET, window: int = 20,
                 period_s: float = 1.0) -> None:
        """Bind the ledger to ``store`` with the given budgets."""
        if delay_budget <= 0 or map_budget <= 0:
            raise ValueError("SLO budgets must be positive fractions")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.store = store
        self.delay_budget = float(delay_budget)
        self.map_budget = float(map_budget)
        self.window = int(window)
        self.period_s = float(period_s)

    def _windowed(self, points: list) -> list:
        """The last ``window`` values of a ``(t, value)`` point list."""
        return [v for _, v in points[-self.window:]]

    def cell_report(self, cell: str) -> dict:
        """One cell's SLO burn rates and energy ledger (plain dict)."""
        delay_points = self.store.series(cell, "delay_violation")
        map_points = self.store.series(cell, "map_violation")
        bs_points = self.store.series(cell, "bs_power_w")
        server_points = self.store.series(cell, "server_power_w")
        baseline_points = self.store.series(cell, "baseline_power_w")
        cost_points = self.store.series(cell, "cost")

        periods = len(delay_points)
        delay_viols = int(sum(v for _, v in delay_points))
        map_viols = int(sum(v for _, v in map_points))

        power_by_t = {t: v for t, v in bs_points}
        total_power = [
            (t, v + power_by_t.get(t, 0.0)) for t, v in server_points
        ]
        baseline = baseline_points[-1][1] if baseline_points else None
        saved_j = None
        mean_power = None
        if total_power:
            mean_power = sum(v for _, v in total_power) / len(total_power)
            if baseline is not None:
                saved_j = sum(
                    (baseline - v) * self.period_s for _, v in total_power
                )

        recent_delay = self._windowed(delay_points)
        recent_map = self._windowed(map_points)
        return {
            "cell": cell,
            "periods": periods,
            "mean_cost": (
                sum(v for _, v in cost_points) / len(cost_points)
                if cost_points else None
            ),
            "delay_violations": delay_viols,
            "map_violations": map_viols,
            "delay_burn": _burn(delay_viols, periods, self.delay_budget),
            "map_burn": _burn(map_viols, periods, self.map_budget),
            "delay_burn_recent": _burn(
                int(sum(recent_delay)), len(recent_delay), self.delay_budget
            ),
            "map_burn_recent": _burn(
                int(sum(recent_map)), len(recent_map), self.map_budget
            ),
            "mean_power_w": mean_power,
            "baseline_power_w": baseline,
            "energy_saved_j": saved_j,
            "savings_fraction": (
                1.0 - mean_power / baseline
                if mean_power is not None and baseline else None
            ),
        }

    def report(self) -> dict:
        """Per-cell reports plus the fleet-wide roll-up."""
        cells = [self.cell_report(cell) for cell in self.store.cells()]
        cells = [c for c in cells if c["periods"] > 0]
        total_periods = sum(c["periods"] for c in cells)
        delay_viols = sum(c["delay_violations"] for c in cells)
        map_viols = sum(c["map_violations"] for c in cells)
        saved = [
            c["energy_saved_j"] for c in cells
            if c["energy_saved_j"] is not None
        ]
        fractions = [
            c["savings_fraction"] for c in cells
            if c["savings_fraction"] is not None
        ]
        worst = max(
            (c for c in cells if c["delay_burn"] is not None),
            key=lambda c: (c["delay_burn"], c["cell"]),
            default=None,
        )
        return {
            "window": self.window,
            "delay_budget": self.delay_budget,
            "map_budget": self.map_budget,
            "period_s": self.period_s,
            "cells": cells,
            "fleet": {
                "n_cells": len(cells),
                "periods": total_periods,
                "delay_burn": _burn(
                    delay_viols, total_periods, self.delay_budget
                ),
                "map_burn": _burn(map_viols, total_periods, self.map_budget),
                "energy_saved_j": sum(saved) if saved else None,
                "mean_savings_fraction": (
                    sum(fractions) / len(fractions) if fractions else None
                ),
                "worst_delay_burn_cell": (
                    worst["cell"] if worst is not None else None
                ),
            },
        }
