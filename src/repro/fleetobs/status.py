"""The ``repro fleet-status`` dashboard over a dumped metric store.

Renders one fleet run's ``metrics.jsonl`` (written by ``repro run fleet
--set metrics=DIR``) as a plain-text operator view: per-cell SLO burn
rates and energy ledger, fleet totals, the worst cells by cost, and the
critical-path breakdown of traced rounds.  :func:`status_payload`
returns the same content as a JSON-friendly dict (``--json``).
"""

from __future__ import annotations

from repro.fleetobs.ledger import (
    DEFAULT_DELAY_BUDGET,
    DEFAULT_MAP_BUDGET,
    FleetLedger,
)
from repro.fleetobs.tracing import critical_path_report
from repro.utils.ascii import render_table

__all__ = ["status_payload", "render_status"]


def _alert_counts(store) -> "tuple[dict, dict]":
    """Alert counts keyed by cell and by rule."""
    by_cell: dict[str, int] = {}
    by_rule: dict[str, int] = {}
    for alert in store.alerts():
        cell = str(alert.get("cell", store.FLEET_CELL))
        rule = str(alert.get("rule", "?"))
        by_cell[cell] = by_cell.get(cell, 0) + 1
        by_rule[rule] = by_rule.get(rule, 0) + 1
    return by_cell, by_rule


def status_payload(store, delay_budget: float = DEFAULT_DELAY_BUDGET,
                   map_budget: float = DEFAULT_MAP_BUDGET, window: int = 20,
                   top: int = 5) -> dict:
    """The dashboard's content as one JSON-friendly dict.

    Combines the store's ingestion accounting, the
    :class:`~repro.fleetobs.ledger.FleetLedger` report (SLO burn +
    energy savings), alert/event tallies, the top-``top`` cells by mean
    cost, and the :func:`critical_path_report` over retained spans.
    """
    ledger = FleetLedger(store, delay_budget=delay_budget,
                         map_budget=map_budget, window=window)
    alerts_by_cell, alerts_by_rule = _alert_counts(store)
    return {
        "summary": store.summary(),
        "ledger": ledger.report(),
        "alerts": {
            "total": len(store.alerts()),
            "by_rule": dict(sorted(alerts_by_rule.items())),
            "by_cell": dict(sorted(alerts_by_cell.items())),
        },
        "events": len(store.events()),
        "top_cost": store.top_k("cost", k=top, agg="mean"),
        "critical_path": critical_path_report(store.spans()),
    }


def _fmt(value, spec: str = "{:.4g}") -> str:
    """Format a possibly-missing numeric cell (``-`` for None)."""
    if value is None:
        return "-"
    return spec.format(value)


def _burn_flag(burn) -> str:
    """Annotate a burn rate: ``!`` marks budget overspend (>1)."""
    if burn is None:
        return "-"
    return f"{burn:.3g}{'!' if burn > 1.0 else ''}"


def render_status(store, delay_budget: float = DEFAULT_DELAY_BUDGET,
                  map_budget: float = DEFAULT_MAP_BUDGET, window: int = 20,
                  top: int = 5) -> str:
    """Render the fleet dashboard as plain text.

    Sections: ingestion header, per-cell SLO/energy table, fleet
    roll-up, worst cells by mean cost, alert rules, and the traced
    critical path (omitted when the run recorded no spans).
    """
    payload = status_payload(store, delay_budget=delay_budget,
                             map_budget=map_budget, window=window, top=top)
    summary = payload["summary"]
    ledger = payload["ledger"]
    fleet = ledger["fleet"]
    lines = [
        "fleet status",
        "============",
        (
            f"records ingested: {summary['ingested']}  "
            f"(duplicates dropped: {summary['duplicates']})  "
            f"cells: {summary['cells']}  series: {summary['series']}"
        ),
        "by type: " + ", ".join(
            f"{kind}={count}" for kind, count in summary["by_type"].items()
        ),
        "",
        (
            f"SLO budgets: delay<={ledger['delay_budget']:g} "
            f"mAP<={ledger['map_budget']:g} of periods; "
            f"burn>1 means the error budget is overspent "
            f"(recent = last {ledger['window']} periods)"
        ),
    ]

    rows = []
    for cell in ledger["cells"]:
        rows.append([
            cell["cell"],
            cell["periods"],
            _fmt(cell["mean_cost"]),
            _fmt(cell["mean_power_w"], "{:.1f}"),
            _fmt(cell["baseline_power_w"], "{:.1f}"),
            _fmt(cell["energy_saved_j"], "{:.0f}"),
            _fmt(cell["savings_fraction"], "{:.1%}"),
            _burn_flag(cell["delay_burn"]),
            _burn_flag(cell["delay_burn_recent"]),
            _burn_flag(cell["map_burn"]),
            payload["alerts"]["by_cell"].get(cell["cell"], 0),
        ])
    if rows:
        lines.append(render_table(
            ["cell", "periods", "cost", "power W", "baseline W", "saved J",
             "saved %", "delay burn", "recent", "mAP burn", "alerts"],
            rows,
        ))
    else:
        lines.append("(no per-cell KPI series in this store)")

    lines += [
        "",
        (
            f"fleet: {fleet['n_cells']} cells, {fleet['periods']} "
            f"cell-periods | energy saved "
            f"{_fmt(fleet['energy_saved_j'], '{:.0f}')} J "
            f"(mean {_fmt(fleet['mean_savings_fraction'], '{:.1%}')} vs "
            f"fixed-max) | delay burn {_burn_flag(fleet['delay_burn'])} "
            f"mAP burn {_burn_flag(fleet['map_burn'])} | worst cell: "
            f"{fleet['worst_delay_burn_cell'] or '-'}"
        ),
    ]

    if payload["top_cost"]:
        lines += ["", f"top {len(payload['top_cost'])} cells by mean cost:"]
        lines.append(render_table(
            ["cell", "mean cost"],
            [[cell, value] for cell, value in payload["top_cost"]],
        ))

    if payload["alerts"]["total"]:
        rules = ", ".join(
            f"{rule}={count}"
            for rule, count in payload["alerts"]["by_rule"].items()
        )
        lines += ["", f"alerts: {payload['alerts']['total']} ({rules})"]
    if payload["events"]:
        lines += ["", f"supervision events: {payload['events']}"]

    path = payload["critical_path"]
    if path["rounds"]:
        lines += [
            "",
            (
                f"traced rounds: {path['rounds']} "
                f"(mean {_fmt(path['round_mean_s'], '{:.6f}')} s)"
            ),
            "slowest hops:",
            render_table(
                ["hop", "count", "total s", "mean s", "share"],
                [
                    [row["hop"], row["count"], row["total_s"], row["mean_s"],
                     f"{row['share']:.1%}"]
                    for row in path["hops"][:8]
                ],
            ),
        ]
        if path["critical_path"]:
            chain = " -> ".join(
                f"{step['hop']} ({step['mean_s']:.6f}s)"
                for step in path["critical_path"]
            )
            lines += [
                (
                    f"modal critical path "
                    f"({path['critical_path_share']:.0%} of rounds): {chain}"
                ),
            ]
    return "\n".join(lines)
