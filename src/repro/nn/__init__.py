"""Minimal neural-network framework (numpy only).

Supports the DDPG benchmark of Section 6.5: dense layers with
backpropagation, common activations, mean-squared-error loss, the Adam
optimiser and a sequential MLP container.  No external deep-learning
dependency is available in this environment, so the framework is
implemented from scratch with gradient-checked correctness.
"""

from repro.nn.layers import Dense, Identity, ReLU, Sigmoid, Tanh
from repro.nn.losses import mse_loss
from repro.nn.mlp import MLP
from repro.nn.optim import Adam, SGD

__all__ = [
    "Dense",
    "Identity",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "mse_loss",
    "MLP",
    "Adam",
    "SGD",
]
