"""Loss functions returning (value, gradient) pairs."""

from __future__ import annotations

import numpy as np


def mse_loss(predictions: np.ndarray, targets: np.ndarray):
    """Mean squared error and its gradient w.r.t. the predictions.

    Returns
    -------
    (loss, grad):
        Scalar loss and an array shaped like ``predictions``.
    """
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
        )
    diff = predictions - targets
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad
