"""Differentiable layers with explicit forward/backward passes.

Each layer caches what it needs during ``forward`` and consumes it in
``backward``, returning the gradient with respect to its input.
Parameters and their gradients are exposed as parallel lists so any
optimiser can update them in place.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.rng import ensure_rng


class Layer(abc.ABC):
    """Base layer: stateless by default (no parameters)."""

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute outputs for a batch ``(n, d_in)`` and cache state."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``dL/dy`` and return ``dL/dx``."""

    def parameters(self) -> list[np.ndarray]:
        """Trainable arrays (updated in place by optimisers)."""
        return []

    def gradients(self) -> list[np.ndarray]:
        """Gradients aligned with :meth:`parameters`."""
        return []


class Dense(Layer):
    """Fully connected layer ``y = x W + b``.

    Weights use He-uniform initialisation scaled for the fan-in, which
    behaves well for both ReLU and saturating activations at the scale
    of our small actor/critic networks.
    """

    def __init__(self, n_in: int, n_out: int, rng=None) -> None:
        if n_in < 1 or n_out < 1:
            raise ValueError(f"layer dims must be >= 1, got {n_in}, {n_out}")
        generator = ensure_rng(rng)
        bound = np.sqrt(6.0 / n_in)
        self.weight = generator.uniform(-bound, bound, size=(n_in, n_out))
        self.bias = np.zeros(n_out)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise ValueError(
                f"expected input (n, {self.weight.shape[0]}), got {x.shape}"
            )
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight[...] = self._x.T @ grad_output
        self.grad_bias[...] = grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._y**2)


class Sigmoid(Layer):
    """Logistic activation (the paper's actor output squashing)."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable piecewise formulation.
        out = np.empty_like(x, dtype=float)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        self._y = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._y * (1.0 - self._y)


class Identity(Layer):
    """Pass-through (linear output head)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output
