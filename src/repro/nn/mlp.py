"""Sequential multi-layer perceptron container."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.layers import Dense, Identity, Layer, ReLU, Sigmoid, Tanh
from repro.utils.rng import ensure_rng

_ACTIVATIONS = {
    "relu": ReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "linear": Identity,
}


class MLP:
    """Feed-forward network built from :class:`repro.nn.layers.Layer`.

    Parameters
    ----------
    layer_sizes:
        ``[n_in, h1, ..., n_out]``.
    hidden_activation:
        Activation between hidden layers (``relu``/``tanh``).
    output_activation:
        Activation of the final layer (``linear``/``sigmoid``/``tanh``).
    rng:
        Seed or generator for weight initialisation.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        hidden_activation: str = "relu",
        output_activation: str = "linear",
        rng=None,
    ) -> None:
        sizes = list(layer_sizes)
        if len(sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if hidden_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown hidden activation {hidden_activation!r}")
        if output_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown output activation {output_activation!r}")
        generator = ensure_rng(rng)
        self.layers: list[Layer] = []
        for i, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            self.layers.append(Dense(n_in, n_out, rng=generator))
            is_last = i == len(sizes) - 2
            activation = output_activation if is_last else hidden_activation
            self.layers.append(_ACTIVATIONS[activation]())

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Batch forward pass; caches activations for backward."""
        out = np.asarray(x, dtype=float)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            out = layer.forward(out)
        return out

    __call__ = forward

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate through every layer; returns ``dL/dx``."""
        grad = np.asarray(grad_output, dtype=float)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[np.ndarray]:
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> list[np.ndarray]:
        grads: list[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    def copy_weights_from(self, other: "MLP", tau: float = 1.0) -> None:
        """Polyak-average weights from ``other``: ``w <- tau*w' + (1-tau)*w``.

        ``tau = 1`` is a hard copy (target-network initialisation).
        """
        if not 0.0 <= tau <= 1.0:
            raise ValueError(f"tau must be in [0, 1], got {tau}")
        mine, theirs = self.parameters(), other.parameters()
        if len(mine) != len(theirs):
            raise ValueError("networks have different parameter structures")
        for w, w_other in zip(mine, theirs):
            if w.shape != w_other.shape:
                raise ValueError("parameter shape mismatch between networks")
            w *= 1.0 - tau
            w += tau * w_other
