"""First-order optimisers operating on parameter/gradient lists."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


class SGD:
    """Vanilla stochastic gradient descent (optionally with momentum)."""

    def __init__(self, parameters, learning_rate: float = 1e-2,
                 momentum: float = 0.0) -> None:
        check_positive(learning_rate, "learning_rate")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in self.parameters]

    def step(self, gradients) -> None:
        """Apply one update given gradients aligned with the parameters."""
        gradients = list(gradients)
        if len(gradients) != len(self.parameters):
            raise ValueError("gradients must align with parameters")
        for p, g, v in zip(self.parameters, gradients, self._velocity):
            v *= self.momentum
            v -= self.learning_rate * g
            p += v


class Adam:
    """Adam optimiser (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        parameters,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        check_positive(learning_rate, "learning_rate")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1/beta2 must be in [0, 1)")
        check_positive(epsilon, "epsilon")
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = [np.zeros_like(p) for p in self.parameters]
        self._v = [np.zeros_like(p) for p in self.parameters]
        self._t = 0

    def step(self, gradients) -> None:
        """Apply one Adam update."""
        gradients = list(gradients)
        if len(gradients) != len(self.parameters):
            raise ValueError("gradients must align with parameters")
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.parameters, gradients, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g**2
            m_hat = m / bias1
            v_hat = v / bias2
            p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
