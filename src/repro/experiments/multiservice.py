"""Per-slice EdgeBOL on a multi-service deployment (Section 4.4).

The paper argues that running one EdgeBOL instance per pre-configured
slice is the practical alternative to the intractable joint
formulation.  This experiment validates the claim on the shared-GPU /
shared-cell substrate: two slices with different service requirements,
each steered by an independent EdgeBOL agent that only sees its own
slice's context and KPIs; the coupling (GPU contention, airtime
admission control) appears to each agent as environment behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping
from pathlib import Path

import numpy as np

from repro.core import EdgeBOL, EdgeBOLConfig
from repro.experiments import spec as spec_registry
from repro.experiments.recorder import RunLog, write_csv
from repro.experiments.spec import ExperimentSpec, ParamSpec
from repro.obs import runtime as obs
from repro.ran.channel import GaussMarkovChannel
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.multiservice import MultiServiceEnvironment, SliceSpec
from repro.utils.ascii import render_table
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass(frozen=True)
class MultiServiceSetting:
    """Two-slice scenario: a latency-critical AR slice and an
    accuracy-critical surveillance slice."""

    n_periods: int = 150
    n_levels: int = 7
    ar_users: int = 1
    surveillance_users: int = 2
    ar_constraints: ServiceConstraints = ServiceConstraints(0.45, 0.45)
    surveillance_constraints: ServiceConstraints = ServiceConstraints(1.0, 0.6)
    delta2: float = 4.0


def build_environment(
    setting: MultiServiceSetting, rng=None
) -> MultiServiceEnvironment:
    """The two-slice testbed with independent channels per slice."""
    parent = ensure_rng(rng)
    rngs = spawn_rngs(parent, setting.ar_users + setting.surveillance_users)
    ar_channels = tuple(
        GaussMarkovChannel(mean_snr_db=33.0, std_db=0.8, rng=r)
        for r in rngs[: setting.ar_users]
    )
    sv_channels = tuple(
        GaussMarkovChannel(mean_snr_db=28.0, std_db=0.8, rng=r)
        for r in rngs[setting.ar_users:]
    )
    config = TestbedConfig(n_levels=setting.n_levels)
    return MultiServiceEnvironment(
        slices=[
            SliceSpec(name="ar", channels=ar_channels),
            SliceSpec(name="surveillance", channels=sv_channels, priority=0.8),
        ],
        config=config,
        rng=parent,
    )


def run_per_slice_edgebol(
    setting: MultiServiceSetting | None = None,
    seed: int = 0,
    agent_config: EdgeBOLConfig | None = None,
) -> tuple[RunLog, RunLog]:
    """Two independent agents, one per slice; returns their logs."""
    setting = setting if setting is not None else MultiServiceSetting()
    env = build_environment(setting, rng=seed)
    config = TestbedConfig(n_levels=setting.n_levels)
    weights = CostWeights(1.0, setting.delta2)
    agents = [
        EdgeBOL(config.control_grid(), setting.ar_constraints, weights,
                config=agent_config),
        EdgeBOL(config.control_grid(), setting.surveillance_constraints,
                weights, config=agent_config),
    ]
    logs = [RunLog(), RunLog()]
    constraints = [setting.ar_constraints, setting.surveillance_constraints]
    # One labelled tracer per slice: both emit into the shared sink,
    # records distinguished by their "agent" field.
    tracers = [
        obs.make_tracer(agent, label=name)
        for agent, name in zip(agents, ("ar", "surveillance"))
    ]
    for agent, tracer in zip(agents, tracers):
        if tracer is not None:
            agent.attach_tracer(tracer)
    try:
        for _ in range(setting.n_periods):
            contexts = env.observe_contexts()
            policies = [
                agent.select(context)
                for agent, context in zip(agents, contexts)
            ]
            observations = env.step(policies)
            for agent, context, policy, observation, log, limits in zip(
                agents, contexts, policies, observations, logs, constraints
            ):
                cost = agent.observe(context, policy, observation)
                log.append(
                    cost=cost,
                    policy=policy,
                    observation=observation,
                    safe_set_size=agent.last_safe_set_size,
                    snr_db=float("nan"),
                    d_max_s=limits.d_max_s,
                    rho_min=limits.rho_min,
                )
    finally:
        for agent, tracer in zip(agents, tracers):
            if tracer is not None:
                agent.attach_tracer(None)
    for log, tracer in zip(logs, tracers):
        if tracer is not None:
            log.decisions = tracer.summary()
    return logs[0], logs[1]


def summary(ar_log: RunLog, sv_log: RunLog) -> list[dict]:
    """Per-slice convergence and feasibility summary."""
    rows = []
    for name, log in (("ar", ar_log), ("surveillance", sv_log)):
        delay_viol, map_viol = log.violation_rates(burn_in=len(log) // 3)
        rows.append({
            "slice": name,
            "initial_cost": float(np.mean(log.cost[:5])),
            "final_cost": log.tail_mean("cost", 20),
            "delay_violation_rate": delay_viol,
            "map_violation_rate": map_viol,
            "final_resolution": log.tail_mean("resolution", 20),
            "final_airtime": log.tail_mean("airtime", 20),
        })
    return rows


# -- the ``multiservice`` experiment spec -------------------------------


def run_multiservice_cell(params: Mapping, seed) -> list[dict]:
    """The two-slice §4.4 deployment (one cell, both slices)."""
    setting = MultiServiceSetting(
        n_periods=int(params["periods"]),
        n_levels=int(params["levels"]),
        delta2=float(params["delta2"]),
    )
    ar_log, sv_log = run_per_slice_edgebol(setting, seed=seed)
    return summary(ar_log, sv_log)


def report_multiservice(rows: list[dict], params: Mapping, out: Path) -> str:
    """Per-slice convergence table plus ``multiservice.csv``."""
    table = render_table(
        ["slice", "initial cost", "final cost", "delay viol.", "mAP viol."],
        [
            [r["slice"], r["initial_cost"], r["final_cost"],
             r["delay_violation_rate"], r["map_violation_rate"]]
            for r in rows
        ],
    )
    path = write_csv(Path(out) / "multiservice.csv", rows)
    return f"{table}\n\nwrote {path}"


SPEC = spec_registry.register(ExperimentSpec(
    name="multiservice",
    help="§4.4 per-slice EdgeBOL on a two-slice deployment",
    params=(
        ParamSpec("periods", type=int, default=150, help="periods to run"),
        ParamSpec("levels", type=int, default=7,
                  help="control-grid levels per dimension"),
        ParamSpec("delta2", type=float, default=4.0,
                  help="BS energy price shared by both slices"),
    ),
    run_cell=run_multiservice_cell,
    report=report_multiservice,
))
