"""Ablation studies of the EdgeBOL design choices.

Not figures of the paper, but experiments for the design decisions its
Section 5 discusses:

* **beta sweep** — the exploration/safety multiplier (the paper uses
  ``beta^{1/2} = 2.5`` citing good empirical performance);
* **kernel choice** — Matérn nu in {1/2, 3/2, 5/2} and RBF (the paper
  argues for Matérn-3/2);
* **safe set on/off** — EdgeBOL vs an unconstrained penalised GP
  bandit, quantifying how many constraint violations the safe set
  avoids during learning;
* **acquisition** — safe-LCB vs pure exploitation vs uncertainty
  sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping
from pathlib import Path

from repro.bandit.gp_ucb import PenalizedGPBandit
from repro.core import EdgeBOL, EdgeBOLConfig
from repro.experiments import spec as spec_registry
from repro.experiments.recorder import RunLog, write_csv
from repro.experiments.runner import run_agent
from repro.experiments.spec import ExperimentSpec, ParamSpec
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table


@dataclass(frozen=True)
class AblationResult:
    """Converged behaviour of one ablated variant."""

    variant: str
    tail_cost: float
    delay_violation_rate: float
    map_violation_rate: float

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def _summarise(variant: str, log: RunLog, burn_in: int = 0) -> AblationResult:
    delay_viol, map_viol = log.violation_rates(burn_in=burn_in)
    return AblationResult(
        variant=variant,
        tail_cost=log.tail_mean("cost"),
        delay_violation_rate=delay_viol,
        map_violation_rate=map_viol,
    )


def _default_problem(seed: int, testbed: TestbedConfig):
    env = static_scenario(mean_snr_db=35.0, rng=seed, config=testbed)
    constraints = ServiceConstraints(0.4, 0.5)
    weights = CostWeights(1.0, 1.0)
    return env, constraints, weights


def beta_ablation(
    betas=(1.0, 2.5, 4.0),
    n_periods: int = 100,
    seed: int = 0,
    testbed: TestbedConfig | None = None,
) -> list[AblationResult]:
    """Sweep the confidence multiplier beta."""
    testbed = testbed if testbed is not None else TestbedConfig()
    results = []
    for beta in betas:
        env, constraints, weights = _default_problem(seed, testbed)
        agent = EdgeBOL(
            testbed.control_grid(), constraints, weights,
            config=EdgeBOLConfig(beta=beta),
        )
        log = run_agent(env, agent, n_periods)
        results.append(_summarise(f"beta={beta}", log))
    return results


def kernel_ablation(
    nus=(0.5, 1.5, 2.5),
    n_periods: int = 100,
    seed: int = 0,
    testbed: TestbedConfig | None = None,
) -> list[AblationResult]:
    """Sweep the Matérn smoothness parameter."""
    testbed = testbed if testbed is not None else TestbedConfig()
    results = []
    for nu in nus:
        env, constraints, weights = _default_problem(seed, testbed)
        agent = EdgeBOL(
            testbed.control_grid(), constraints, weights,
            config=EdgeBOLConfig(matern_nu=nu),
        )
        log = run_agent(env, agent, n_periods)
        results.append(_summarise(f"matern_nu={nu}", log))
    return results


def safe_set_ablation(
    n_periods: int = 100,
    seed: int = 0,
    testbed: TestbedConfig | None = None,
) -> list[AblationResult]:
    """EdgeBOL (safe set) vs penalised unconstrained GP bandit."""
    testbed = testbed if testbed is not None else TestbedConfig()

    env, constraints, weights = _default_problem(seed, testbed)
    safe_agent = EdgeBOL(testbed.control_grid(), constraints, weights)
    safe_log = run_agent(env, safe_agent, n_periods)

    env, constraints, weights = _default_problem(seed, testbed)
    unsafe_agent = PenalizedGPBandit(
        testbed.control_grid(), constraints, weights
    )
    unsafe_log = run_agent(env, unsafe_agent, n_periods)

    return [
        _summarise("safe-set (EdgeBOL)", safe_log),
        _summarise("penalized GP (no safe set)", unsafe_log),
    ]


# -- the ``ablations`` experiment spec ----------------------------------

#: Variant labels per study — each (study, variant) pair is one cell.
STUDY_VARIANTS: dict[str, tuple[str, ...]] = {
    "beta": ("1.0", "2.5", "4.0"),
    "kernel": ("0.5", "1.5", "2.5"),
    "safeset": ("safe", "penalized"),
}


def run_ablation_variant(
    study: str,
    variant: str,
    n_periods: int = 100,
    seed=0,
    testbed: TestbedConfig | None = None,
) -> AblationResult:
    """Run one ablated agent variant (one sweep cell)."""
    testbed = testbed if testbed is not None else TestbedConfig()
    env, constraints, weights = _default_problem(seed, testbed)
    grid = testbed.control_grid()
    if study == "beta":
        agent = EdgeBOL(grid, constraints, weights,
                        config=EdgeBOLConfig(beta=float(variant)))
        label = f"beta={float(variant)}"
    elif study == "kernel":
        agent = EdgeBOL(grid, constraints, weights,
                        config=EdgeBOLConfig(matern_nu=float(variant)))
        label = f"matern_nu={float(variant)}"
    elif study == "safeset":
        if variant == "safe":
            agent = EdgeBOL(grid, constraints, weights)
            label = "safe-set (EdgeBOL)"
        else:
            agent = PenalizedGPBandit(grid, constraints, weights)
            label = "penalized GP (no safe set)"
    else:
        raise ValueError(
            f"unknown ablation study '{study}' "
            f"(known: {', '.join(STUDY_VARIANTS)})"
        )
    log = run_agent(env, agent, n_periods)
    return _summarise(label, log)


def expand_ablations(params: Mapping) -> list[dict]:
    """One cell per (study, variant) pair of the selected studies."""
    return [
        {"study": study, "variant": variant}
        for study in params["studies"]
        for variant in STUDY_VARIANTS[study]
    ]


def run_ablation_cell(params: Mapping, seed) -> list[dict]:
    """Execute one ablated variant and summarise it."""
    result = run_ablation_variant(
        str(params["study"]),
        str(params["variant"]),
        n_periods=int(params["periods"]),
        seed=seed,
        testbed=TestbedConfig(n_levels=int(params["levels"])),
    )
    return [{"study": params["study"], **result.as_dict()}]


def report_ablations(rows: list[dict], params: Mapping, out: Path) -> str:
    """Variant comparison table plus ``ablations.csv``."""
    table = render_table(
        ["study", "variant", "tail cost", "delay viol.", "mAP viol."],
        [
            [r["study"], r["variant"], r["tail_cost"],
             r["delay_violation_rate"], r["map_violation_rate"]]
            for r in rows
        ],
    )
    path = write_csv(Path(out) / "ablations.csv", rows)
    return f"{table}\n\nwrote {path}"


SPEC = spec_registry.register(ExperimentSpec(
    name="ablations",
    help="beta / kernel / safe-set design ablations (§5)",
    params=(
        ParamSpec("studies", type=str, default=("beta", "kernel", "safeset"),
                  sweep=True, choices=tuple(STUDY_VARIANTS),
                  help="which ablation studies to run"),
        ParamSpec("periods", type=int, default=100, help="periods per cell"),
        ParamSpec("levels", type=int, default=7,
                  help="control-grid levels per dimension"),
    ),
    run_cell=run_ablation_cell,
    report=report_ablations,
    expand=expand_ablations,
))
