"""Ablation studies of the EdgeBOL design choices.

Not figures of the paper, but experiments for the design decisions its
Section 5 discusses:

* **beta sweep** — the exploration/safety multiplier (the paper uses
  ``beta^{1/2} = 2.5`` citing good empirical performance);
* **kernel choice** — Matérn nu in {1/2, 3/2, 5/2} and RBF (the paper
  argues for Matérn-3/2);
* **safe set on/off** — EdgeBOL vs an unconstrained penalised GP
  bandit, quantifying how many constraint violations the safe set
  avoids during learning;
* **acquisition** — safe-LCB vs pure exploitation vs uncertainty
  sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bandit.gp_ucb import PenalizedGPBandit
from repro.core import EdgeBOL, EdgeBOLConfig
from repro.experiments.recorder import RunLog
from repro.experiments.runner import run_agent
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario


@dataclass(frozen=True)
class AblationResult:
    """Converged behaviour of one ablated variant."""

    variant: str
    tail_cost: float
    delay_violation_rate: float
    map_violation_rate: float

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def _summarise(variant: str, log: RunLog, burn_in: int = 0) -> AblationResult:
    delay_viol, map_viol = log.violation_rates(burn_in=burn_in)
    return AblationResult(
        variant=variant,
        tail_cost=log.tail_mean("cost"),
        delay_violation_rate=delay_viol,
        map_violation_rate=map_viol,
    )


def _default_problem(seed: int, testbed: TestbedConfig):
    env = static_scenario(mean_snr_db=35.0, rng=seed, config=testbed)
    constraints = ServiceConstraints(0.4, 0.5)
    weights = CostWeights(1.0, 1.0)
    return env, constraints, weights


def beta_ablation(
    betas=(1.0, 2.5, 4.0),
    n_periods: int = 100,
    seed: int = 0,
    testbed: TestbedConfig | None = None,
) -> list[AblationResult]:
    """Sweep the confidence multiplier beta."""
    testbed = testbed if testbed is not None else TestbedConfig()
    results = []
    for beta in betas:
        env, constraints, weights = _default_problem(seed, testbed)
        agent = EdgeBOL(
            testbed.control_grid(), constraints, weights,
            config=EdgeBOLConfig(beta=beta),
        )
        log = run_agent(env, agent, n_periods)
        results.append(_summarise(f"beta={beta}", log))
    return results


def kernel_ablation(
    nus=(0.5, 1.5, 2.5),
    n_periods: int = 100,
    seed: int = 0,
    testbed: TestbedConfig | None = None,
) -> list[AblationResult]:
    """Sweep the Matérn smoothness parameter."""
    testbed = testbed if testbed is not None else TestbedConfig()
    results = []
    for nu in nus:
        env, constraints, weights = _default_problem(seed, testbed)
        agent = EdgeBOL(
            testbed.control_grid(), constraints, weights,
            config=EdgeBOLConfig(matern_nu=nu),
        )
        log = run_agent(env, agent, n_periods)
        results.append(_summarise(f"matern_nu={nu}", log))
    return results


def safe_set_ablation(
    n_periods: int = 100,
    seed: int = 0,
    testbed: TestbedConfig | None = None,
) -> list[AblationResult]:
    """EdgeBOL (safe set) vs penalised unconstrained GP bandit."""
    testbed = testbed if testbed is not None else TestbedConfig()

    env, constraints, weights = _default_problem(seed, testbed)
    safe_agent = EdgeBOL(testbed.control_grid(), constraints, weights)
    safe_log = run_agent(env, safe_agent, n_periods)

    env, constraints, weights = _default_problem(seed, testbed)
    unsafe_agent = PenalizedGPBandit(
        testbed.control_grid(), constraints, weights
    )
    unsafe_log = run_agent(env, unsafe_agent, n_periods)

    return [
        _summarise("safe-set (EdgeBOL)", safe_log),
        _summarise("penalized GP (no safe set)", unsafe_log),
    ]
