"""EdgeBOL vs DDPG under constraint changes (Figure 14).

Section 6.5: both agents run for 3000 periods while the constraint
settings switch at t = 1000 and t = 2000:

* t in [0, 1000):    d_max = 0.5 s, rho_min = 0.4
* t in [1000, 2000): d_max = 0.4 s, rho_min = 0.6
* t in [2000, ...):  d_max = 0.5 s, rho_min = 0.5

The figure tracks cost, delay, mAP and the constraint-violation
magnitudes.  EdgeBOL re-converges almost instantly because its GPs
model the raw KPIs; the parametric DDPG must relearn its cost
landscape after every switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping
from pathlib import Path

import numpy as np

from repro.bandit.ddpg import DDPGConfig, DDPGController
from repro.core import EdgeBOL, EdgeBOLConfig
from repro.experiments import spec as spec_registry
from repro.experiments.recorder import RunLog, write_csv
from repro.experiments.runner import ConstraintSchedule, run_agent
from repro.experiments.spec import ExperimentSpec, ParamSpec
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table


@dataclass(frozen=True)
class ComparisonSetting:
    """Parameters of the Fig. 14 scenario.

    ``n_periods`` and the switch points scale together so reduced-cost
    runs preserve the three-phase structure.
    """

    n_periods: int = 3000
    first_switch: int = 1000
    second_switch: int = 2000
    delta1: float = 1.0
    delta2: float = 8.0
    mean_snr_db: float = 35.0
    #: EdgeBOL grid resolution (a slightly coarser grid keeps the
    #: 3000-period run tractable; the paper's |X| applies to Fig. 9-13).
    n_levels: int = 9
    #: Observation budget for the long run (subset-of-data).
    max_observations: int = 500

    def schedule(self) -> ConstraintSchedule:
        return ConstraintSchedule(
            initial=ServiceConstraints(0.5, 0.4),
            changes=(
                (self.first_switch, ServiceConstraints(0.4, 0.6)),
                (self.second_switch, ServiceConstraints(0.5, 0.5)),
            ),
        )


def run_edgebol_comparison(
    setting: ComparisonSetting | None = None, seed: int = 0
) -> RunLog:
    """EdgeBOL side of Fig. 14."""
    setting = setting if setting is not None else ComparisonSetting()
    testbed = TestbedConfig(n_levels=setting.n_levels)
    env = static_scenario(
        mean_snr_db=setting.mean_snr_db, rng=seed, config=testbed
    )
    agent = EdgeBOL(
        testbed.control_grid(),
        setting.schedule().initial,
        CostWeights(setting.delta1, setting.delta2),
        config=EdgeBOLConfig(max_observations=setting.max_observations),
    )
    return run_agent(
        env, agent, setting.n_periods, schedule=setting.schedule()
    )


def run_ddpg_comparison(
    setting: ComparisonSetting | None = None,
    seed: int = 0,
    ddpg_config: DDPGConfig | None = None,
) -> RunLog:
    """DDPG side of Fig. 14."""
    setting = setting if setting is not None else ComparisonSetting()
    testbed = TestbedConfig(n_levels=setting.n_levels)
    env = static_scenario(
        mean_snr_db=setting.mean_snr_db, rng=seed, config=testbed
    )
    agent = DDPGController(
        setting.schedule().initial,
        CostWeights(setting.delta1, setting.delta2),
        config=ddpg_config,
        min_resolution=testbed.min_resolution,
        min_airtime=testbed.min_airtime,
        rng=seed,
    )
    return run_agent(
        env, agent, setting.n_periods, schedule=setting.schedule()
    )


def violation_series(log: RunLog) -> dict[str, np.ndarray]:
    """Constraint-violation magnitudes over time (Fig. 14 bottom)."""
    delays = np.asarray(log.delay_s)
    maps = np.asarray(log.map_score)
    d_max = np.asarray(log.d_max_s)
    rho = np.asarray(log.rho_min)
    finite_delays = np.where(np.isfinite(delays), delays, d_max + 2.0)
    return {
        "delay_violation": np.maximum(finite_delays - d_max, 0.0),
        "map_violation": np.maximum(rho - maps, 0.0),
    }


def phase_summary(log: RunLog, setting: ComparisonSetting) -> list[dict]:
    """Per-phase averages (one row per constraint regime)."""
    boundaries = [0, setting.first_switch, setting.second_switch, len(log)]
    violations = violation_series(log)
    rows = []
    for phase, (start, end) in enumerate(zip(boundaries[:-1], boundaries[1:])):
        if end <= start:
            continue
        sl = slice(start, end)
        rows.append(
            {
                "phase": phase,
                "start": start,
                "end": end,
                "mean_cost": float(np.nanmean(log.cost[sl])),
                "mean_delay_violation": float(
                    np.mean(violations["delay_violation"][sl])
                ),
                "mean_map_violation": float(
                    np.mean(violations["map_violation"][sl])
                ),
            }
        )
    return rows


# -- the ``comparison`` experiment spec ---------------------------------


def expand_comparison(params: Mapping) -> list[dict]:
    """One cell per agent — EdgeBOL and DDPG run concurrently."""
    return [{"agent": "edgebol"}, {"agent": "ddpg"}]


def _comparison_setting(params: Mapping) -> ComparisonSetting:
    periods = int(params["periods"])
    return ComparisonSetting(
        n_periods=periods,
        first_switch=periods // 3,
        second_switch=2 * periods // 3,
        n_levels=int(params["levels"]),
    )


def run_comparison_cell(params: Mapping, seed) -> list[dict]:
    """One agent's side of Fig. 14 (a full constraint-switching run)."""
    setting = _comparison_setting(params)
    if params["agent"] == "edgebol":
        log = run_edgebol_comparison(setting, seed=seed)
    else:
        log = run_ddpg_comparison(setting, seed=seed)
    return log.as_rows(agent=params["agent"])


def report_comparison(rows: list[dict], params: Mapping, out: Path) -> str:
    """Per-phase summary table plus one CSV per agent."""
    setting = _comparison_setting(params)
    summary = []
    path = None
    for agent in ("edgebol", "ddpg"):
        log = RunLog.from_rows([r for r in rows if r["agent"] == agent])
        for p in phase_summary(log, setting):
            summary.append({"agent": agent, **p})
        path = write_csv(Path(out) / f"comparison_{agent}.csv", log.as_dict())
    table = render_table(
        ["agent", "phase", "mean cost", "delay viol.", "mAP viol."],
        [
            [r["agent"], r["phase"], r["mean_cost"],
             r["mean_delay_violation"], r["mean_map_violation"]]
            for r in summary
        ],
    )
    return f"{table}\n\nwrote {path.parent}/comparison_*.csv"


SPEC = spec_registry.register(ExperimentSpec(
    name="comparison",
    help="Fig. 14 EdgeBOL vs DDPG",
    params=(
        ParamSpec("periods", type=int, default=600,
                  help="periods per run (switches at 1/3 and 2/3)"),
        ParamSpec("levels", type=int, default=7,
                  help="control-grid levels per dimension"),
    ),
    run_cell=run_comparison_cell,
    report=report_comparison,
    expand=expand_comparison,
    artifacts=lambda params: ("comparison_edgebol.csv", "comparison_ddpg.csv"),
))
