"""Generic agent-environment loop used by every learning experiment."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from repro.experiments.recorder import RunLog
from repro.obs import runtime as obs
from repro.telemetry import runtime as telemetry
from repro.testbed.config import ServiceConstraints
from repro.testbed.env import EdgeAIEnvironment
from repro.utils.stats import percentile_band


@dataclass(frozen=True)
class ConstraintSchedule:
    """Piecewise-constant constraint settings over time.

    ``changes`` maps period indices to the constraints that become
    active *at* that period (Fig. 14 uses switches at t=1000 and
    t=2000).
    """

    initial: ServiceConstraints
    changes: tuple[tuple[int, ServiceConstraints], ...] = ()

    def __post_init__(self) -> None:
        """Validate change periods and sort the schedule once."""
        starts = [start for start, _ in self.changes]
        for start in starts:
            if start < 0:
                raise ValueError(
                    f"schedule change periods must be non-negative, got {start}"
                )
        if len(set(starts)) != len(starts):
            duplicates = sorted({s for s in starts if starts.count(s) > 1})
            raise ValueError(
                f"schedule change periods must be unique, got duplicate(s) "
                f"{duplicates}"
            )
        object.__setattr__(
            self,
            "changes",
            tuple(sorted(self.changes, key=lambda change: change[0])),
        )

    def at(self, t: int) -> ServiceConstraints:
        """Constraints active at period ``t``."""
        active = self.initial
        for start, constraints in self.changes:
            if t < start:
                break
            active = constraints
        return active


#: Transport planes `run_agent` can route decisions through.
PLANES = ("direct", "sync", "async")


def run_agent(
    env: EdgeAIEnvironment,
    agent,
    n_periods: int,
    schedule: ConstraintSchedule | None = None,
    track_safe_set: bool = False,
    oracle_cost: float | None = None,
    plane: str = "direct",
) -> RunLog:
    """Drive ``agent`` in ``env`` for ``n_periods`` and log everything.

    The agent must expose ``select`` / ``observe`` and, when a schedule
    is given, ``set_constraints``.  ``track_safe_set`` additionally logs
    |S_t| for agents exposing ``last_safe_set_size`` (EdgeBOL).

    ``plane`` selects the transport between agent and testbed:
    ``"direct"`` (default) applies decisions inline, ``"sync"`` routes
    every decision and KPI through the synchronous O-RAN plane
    (:class:`~repro.oran.smo.OranSystem`), ``"async"`` through the
    event-loop plane (:class:`~repro.oran.runtime.AsyncOranSystem`).
    Sync and async runs at the same seed are bit-identical (the
    determinism contract of ``docs/CONTROL_PLANE.md``); both differ
    from ``direct`` only by MCS quantisation through the A1 radio
    policy.  Constraint schedules require the direct plane.

    With telemetry enabled (:func:`repro.telemetry.record`), the run is
    traced as one ``experiment.run`` root span with one
    ``experiment.period`` child per period, and the log absorbs a
    metrics snapshot (``log.telemetry``) alongside ``engine_stats``.

    With a decision sink installed (:func:`repro.obs.use`), a
    :class:`~repro.obs.decision.DecisionTracer` is attached for the run
    and every period emits a ``type: "decision"`` record; the tracer's
    roll-up lands in ``log.decisions``.  ``oracle_cost`` (a clairvoyant
    per-period cost, when the caller knows one) enables the records'
    regret block.  Tracing never alters the run — KPIs stay
    bit-identical (``tests/test_obs.py``).
    """
    if n_periods < 0:
        raise ValueError(f"n_periods must be non-negative, got {n_periods}")
    if plane not in PLANES:
        raise ValueError(f"plane must be one of {PLANES}, got {plane!r}")
    if plane != "direct" and schedule is not None:
        raise ValueError("constraint schedules require plane='direct'")
    system = None
    if plane != "direct":
        # Deferred import: repro.oran pulls the experiment registry.
        from repro.oran.runtime import AsyncOranSystem
        from repro.oran.smo import OranSystem

        system = (OranSystem(env, agent) if plane == "sync"
                  else AsyncOranSystem(env, agent))
    log = RunLog()
    active = schedule.initial if schedule is not None else getattr(
        agent, "constraints", ServiceConstraints()
    )
    tracer = obs.make_tracer(agent, oracle_cost=oracle_cost)
    if tracer is not None:
        agent.attach_tracer(tracer)
    try:
        with telemetry.span("experiment.run") as run_sp:
            if run_sp:
                run_sp.set("periods", n_periods)
                run_sp.set("agent", type(agent).__name__)
            for t in range(n_periods):
                with telemetry.span("experiment.period"):
                    if schedule is not None:
                        new_constraints = schedule.at(t)
                        if new_constraints != active:
                            agent.set_constraints(new_constraints)
                            active = new_constraints
                    snr = float(np.mean(env.current_snrs_db))
                    if system is None:
                        context = env.observe_context()
                        policy = agent.select(context)
                        observation = env.step(policy)
                        cost = agent.observe(context, policy, observation)
                    else:
                        record = system.run_period()
                        policy = record.policy
                        observation = record.observation
                        cost = record.cost
                    safe_size = (
                        getattr(agent, "last_safe_set_size", None)
                        if track_safe_set else None
                    )
                    log.append(
                        cost=cost,
                        policy=policy,
                        observation=observation,
                        safe_set_size=safe_size,
                        snr_db=snr,
                        d_max_s=active.d_max_s,
                        rho_min=active.rho_min,
                    )
    finally:
        if tracer is not None:
            agent.attach_tracer(None)
    if tracer is not None:
        log.decisions = tracer.summary()
    engine = getattr(agent, "engine", None)
    if engine is not None and hasattr(engine, "stats"):
        log.engine_stats = engine.stats.snapshot()
    robustness = getattr(agent, "robustness_stats", None)
    if callable(robustness):
        log.robustness = robustness()
    if telemetry.enabled():
        log.telemetry = telemetry.metrics_snapshot()
    return log


def run_repetitions(
    make_env_and_agent: Callable[[int], tuple[EdgeAIEnvironment, object]],
    n_repetitions: int,
    n_periods: int,
    schedule: ConstraintSchedule | None = None,
    track_safe_set: bool = False,
) -> list[RunLog]:
    """Run independent repetitions (fresh env + agent per seed)."""
    if n_repetitions < 1:
        raise ValueError(f"n_repetitions must be >= 1, got {n_repetitions}")
    logs = []
    for seed in range(n_repetitions):
        env, agent = make_env_and_agent(seed)
        logs.append(
            run_agent(
                env, agent, n_periods, schedule=schedule,
                track_safe_set=track_safe_set,
            )
        )
    return logs


def band(logs: Sequence[RunLog], field_name: str,
         low: float = 10.0, high: float = 90.0):
    """Median and percentile band of one series across repetitions.

    This is the visual convention of the paper's plots (median with
    10th/90th percentile shading).

    Raises
    ------
    ValueError
        If ``logs`` is empty or the repetition logs have unequal
        lengths (the error names the offending log).
    """
    if not logs:
        raise ValueError(
            f"band('{field_name}') needs at least one run log, got an empty "
            "sequence"
        )
    series = [getattr(log, field_name) for log in logs]
    expected = len(series[0])
    for i, values in enumerate(series[1:], start=1):
        if len(values) != expected:
            raise ValueError(
                f"band('{field_name}'): log {i} has {len(values)} periods "
                f"but log 0 has {expected}; repetitions must be equal-length"
            )
    return percentile_band(np.array(series, dtype=float), low=low, high=high)
