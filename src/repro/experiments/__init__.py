"""Evaluation harness: declarative specs over a parallel sweep engine.

Every experiment registers an
:class:`~repro.experiments.spec.ExperimentSpec` (typed parameters, a
sweep-cell function, a report renderer) into the module registry;
importing this package loads them all.  The CLI generates one
subcommand per spec and :mod:`repro.experiments.parallel` expands,
schedules (optionally across processes) and checkpoints the cells.
Experiments still return plain data structures (lists of dict rows or
:class:`RunLog` objects); the ``benchmarks/`` tree wraps them into
pytest-benchmark targets, one per paper figure.
"""

from repro.experiments.recorder import RunLog, render_runlog, write_csv
from repro.experiments.runner import ConstraintSchedule, run_agent, run_repetitions
from repro.experiments.spec import ExperimentSpec, ParamSpec

# Importing the experiment modules registers their specs (order defines
# the ``repro list`` / subcommand order).
from repro.experiments import profiling  # noqa: E402,F401
from repro.experiments import convergence  # noqa: E402,F401
from repro.experiments import static  # noqa: E402,F401
from repro.experiments import heterogeneous  # noqa: E402,F401
from repro.experiments import dynamic  # noqa: E402,F401
from repro.experiments import comparison  # noqa: E402,F401
from repro.experiments import tariff  # noqa: E402,F401
from repro.experiments import multiservice  # noqa: E402,F401
from repro.experiments import regret  # noqa: E402,F401
from repro.experiments import ablations  # noqa: E402,F401
from repro.experiments import fleet  # noqa: E402,F401

__all__ = [
    "RunLog",
    "render_runlog",
    "write_csv",
    "ConstraintSchedule",
    "run_agent",
    "run_repetitions",
    "ExperimentSpec",
    "ParamSpec",
]
