"""Evaluation harness: one module per figure of the paper.

Every experiment returns plain data structures (lists of dict rows or
:class:`RunLog` objects) plus helpers that render them as text tables /
ASCII charts and CSV.  The ``benchmarks/`` tree wraps these into
pytest-benchmark targets, one per paper figure.
"""

from repro.experiments.recorder import RunLog, render_runlog, write_csv
from repro.experiments.runner import ConstraintSchedule, run_agent, run_repetitions

__all__ = [
    "RunLog",
    "render_runlog",
    "write_csv",
    "ConstraintSchedule",
    "run_agent",
    "run_repetitions",
]
