"""Process-parallel sweep engine over declarative experiment specs.

:func:`run_sweep` expands an :class:`~repro.experiments.spec.ExperimentSpec`
into independent cells and executes them:

* **seeding** — one :class:`numpy.random.SeedSequence` root per sweep,
  spawned into one child per cell *by cell index*, so per-cell
  randomness is independent of execution order and worker count
  (``--jobs 1`` and ``--jobs N`` produce identical results);
* **scheduling** — ``jobs == 1`` runs cells in-process (telemetry spans
  nest under the caller's trace as ``sweep.cell``); ``jobs > 1``
  dispatches cells to a :class:`concurrent.futures.ProcessPoolExecutor`
  by spec *name* — workers re-import the registry, so only plain data
  crosses the process boundary;
* **checkpointing** — completed cells are appended to a JSONL manifest
  under the output directory; re-running the same sweep resumes by
  skipping cells already in the manifest (a changed seed or parameter
  set invalidates it);
* **content-addressed caching** — with a ``store`` configured
  (``--store DIR`` / ``REPRO_STORE``), every cell not already resumed
  from the manifest is looked up in the
  :class:`~repro.store.store.ExperimentStore` by its canonical
  configuration hash (spec + params + seed node + fault plan +
  numerics + code fingerprint, see :func:`repro.store.key.cell_key`);
  a hit returns the stored rows bit-identically without dispatching a
  worker (``CellResult.store_hit``, counted in
  :attr:`SweepResult.store_hits`), a miss is written through on
  completion — so cross-sweep reruns of identical cells are near-free
  (see ``docs/STORE.md``);
* **telemetry** — when the parent records a trace, worker cells collect
  their own metrics snapshots which are merged (counters summed,
  histograms bucket-wise) into the parent registry so the final report
  covers the whole sweep;
* **robustness** — a crashing cell is retried with exponential backoff
  (``sweep.cell.retries``); with ``cell_timeout_s`` set, a hung worker
  cell is abandoned and retried (``sweep.cell.timeouts``); a cell that
  still fails after ``max_retries`` is *quarantined* — recorded in the
  manifest with its error instead of aborting the sweep
  (``sweep.cell.quarantined``, re-run on resume).  When a fault plan is
  installed (or passed via ``fault_plan``) it is re-installed inside
  every cell scope with the cell's spawn key, so chaos runs are
  bit-identical per seed at any ``--jobs`` (see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.backend import active_numerics
from repro.experiments import spec as registry
from repro.experiments.spec import ExperimentSpec
from repro.faults import runtime as faults
from repro.faults.injector import InjectedWorkerCrash
from repro.faults.plan import FaultPlan
from repro.obs import runtime as obs
from repro.store import ExperimentStore, cell_key, code_fingerprint
from repro.telemetry import runtime as telemetry
from repro.telemetry.export import JsonlSink

__all__ = ["SweepCell", "CellResult", "SweepResult", "run_sweep", "merge_metrics"]


@dataclass(frozen=True)
class SweepCell:
    """One schedulable point of a sweep (plain data, picklable)."""

    index: int
    cell_id: str
    params: dict
    #: Root entropy + spawn key identifying this cell's SeedSequence
    #: node inside the sweep's spawn tree.
    entropy: int
    spawn_key: tuple[int, ...]

    def seed_sequence(self) -> np.random.SeedSequence:
        """Reconstruct this cell's node of the sweep's seed tree."""
        return np.random.SeedSequence(
            entropy=self.entropy, spawn_key=self.spawn_key
        )


@dataclass
class CellResult:
    """Outcome of one executed (or resumed) cell.

    ``attempts`` counts executions including retries; a non-``None``
    ``error`` marks a quarantined cell (all attempts failed — ``rows``
    is empty and the manifest records the failure for a later re-run).
    """

    index: int
    cell_id: str
    params: dict
    rows: list
    pid: int
    metrics: dict | None = None
    cached: bool = False
    attempts: int = 1
    error: str | None = None
    #: Per-period decision records the cell emitted while a decision
    #: sink was active (``--trace-decisions``); ``None`` when untraced.
    decisions: list | None = None
    #: Served from the content-addressed experiment store — the rows
    #: are a previous run's, replayed bit-identically (``pid == -1``).
    store_hit: bool = False


@dataclass
class SweepResult:
    """Merged outcome of one sweep, in cell-index order."""

    spec_name: str
    params: dict
    cells: list[CellResult] = field(default_factory=list)
    manifest_path: Path | None = None
    #: Root of the experiment store consulted, if any.
    store_path: Path | None = None

    @property
    def rows(self) -> list:
        """All cell rows concatenated in cell order."""
        return [row for cell in self.cells for row in cell.rows]

    @property
    def pids(self) -> tuple[int, ...]:
        """Distinct worker PIDs that executed (non-cached) cells."""
        return tuple(sorted({
            c.pid for c in self.cells if not c.cached and not c.store_hit
        }))

    @property
    def resumed(self) -> int:
        """How many cells were skipped thanks to the manifest."""
        return sum(1 for c in self.cells if c.cached)

    @property
    def store_hits(self) -> int:
        """How many cells were served from the experiment store."""
        return sum(1 for c in self.cells if c.store_hit)

    @property
    def retries(self) -> int:
        """Total extra attempts across all cells (0 in a clean sweep)."""
        return sum(max(0, c.attempts - 1) for c in self.cells)

    @property
    def quarantined(self) -> "list[CellResult]":
        """Cells whose every attempt failed (empty in a clean sweep)."""
        return [c for c in self.cells if c.error is not None]


def _build_cells(spec: ExperimentSpec, params: dict, seed: int,
                 sweep_overrides=None) -> list[SweepCell]:
    """Expand the grid and attach one seed-tree node per cell."""
    pairs = spec.cells(params, sweep_overrides)
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(pairs))
    return [
        SweepCell(
            index=i,
            cell_id=cid,
            params=cell_params,
            entropy=int(root.entropy),
            spawn_key=tuple(int(k) for k in child.spawn_key),
        )
        for i, ((cid, cell_params), child) in enumerate(zip(pairs, children))
    ]


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays for the JSONL manifest."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def _maybe_inject_worker_fault(cell: SweepCell, attempt: int) -> None:
    """Apply the plan's worker faults to this cell execution, if any.

    Mode ``crash`` raises :class:`InjectedWorkerCrash` before the cell
    body runs; mode ``hang`` sleeps for ``magnitude`` seconds first (a
    stuck worker — pair with ``cell_timeout_s`` to exercise the timeout
    path).  Faults fire only on ``attempt == 0``, so the retry ladder
    always recovers.
    """
    injector = faults.make_injector("worker")
    if injector is None:
        return
    spec = injector.worker_decision(cell.index, attempt)
    if spec is None:
        return
    if spec.mode == "hang":
        time.sleep(float(spec.magnitude))
        return
    raise InjectedWorkerCrash(
        f"injected worker crash in cell '{cell.cell_id}' (attempt {attempt})"
    )


def _execute_cell(spec_name: str, cell: SweepCell, collect_telemetry: bool,
                  fault_plan: dict | None = None,
                  attempt: int = 0,
                  collect_decisions: bool = False) -> CellResult:
    """Run one cell — the worker-process entry point.

    Top-level so it pickles under any multiprocessing start method;
    looks the spec up by name after (re-)loading the registry.  The
    fault plan crosses the process boundary as a plain dict and is
    installed for the cell scope with the cell's spawn key, so fault
    streams are per-cell reproducible regardless of which worker runs
    the cell.  With ``collect_decisions`` the cell runs under its own
    decision sink (labelled with the cell id) and the records ride back
    on the result for the parent to merge.
    """
    registry.load_all()
    spec = registry.get(spec_name)
    plan = FaultPlan.from_dict(fault_plan) if fault_plan is not None else None
    metrics = None
    decision_sink = obs.ListSink() if collect_decisions else None
    with faults.use(plan, seed_path=cell.spawn_key):
        _maybe_inject_worker_fault(cell, attempt)
        with obs.use(decision_sink) if decision_sink is not None \
                else nullcontext():
            with obs.scope(cell.cell_id) if decision_sink is not None \
                    else nullcontext():
                if collect_telemetry:
                    telemetry.reset_metrics()
                    telemetry.enable()
                    try:
                        rows = spec.run_cell(cell.params, cell.seed_sequence())
                        metrics = telemetry.metrics_snapshot()
                    finally:
                        telemetry.disable()
                else:
                    rows = spec.run_cell(cell.params, cell.seed_sequence())
    return CellResult(
        index=cell.index,
        cell_id=cell.cell_id,
        params=cell.params,
        rows=_jsonable(rows),
        pid=os.getpid(),
        metrics=metrics,
        attempts=attempt + 1,
        decisions=(
            _jsonable(decision_sink.records)
            if decision_sink is not None else None
        ),
    )


def _run_cell_inprocess(spec: ExperimentSpec, cell: SweepCell,
                        attempt: int = 0,
                        collect_decisions: bool = False) -> CellResult:
    """Serial path: telemetry spans nest under the caller's trace.

    Decision records are still buffered per cell (not streamed to the
    parent's sink) so serial and pool sweeps produce identically-merged
    traces in cell-index order.
    """
    decision_sink = obs.ListSink() if collect_decisions else None
    with telemetry.span("sweep.cell") as sp:
        if sp:
            sp.set("spec", spec.name)
            sp.set("cell", cell.cell_id)
        _maybe_inject_worker_fault(cell, attempt)
        with obs.use(decision_sink) if decision_sink is not None \
                else nullcontext():
            with obs.scope(cell.cell_id) if decision_sink is not None \
                    else nullcontext():
                rows = spec.run_cell(cell.params, cell.seed_sequence())
    return CellResult(
        index=cell.index,
        cell_id=cell.cell_id,
        params=cell.params,
        rows=_jsonable(rows),
        pid=os.getpid(),
        attempts=attempt + 1,
        decisions=(
            _jsonable(decision_sink.records)
            if decision_sink is not None else None
        ),
    )


# -- manifest checkpointing ---------------------------------------------


def _manifest_path(spec: ExperimentSpec, out: Path) -> Path:
    return Path(out) / f"{spec.name}_manifest.jsonl"


def _manifest_header(spec: ExperimentSpec, params: dict, seed: int) -> dict:
    return {
        "type": "sweep",
        "spec": spec.name,
        "seed": seed,
        "params": _jsonable(params),
    }


def _load_manifest(path: Path, header: dict) -> dict[str, dict]:
    """Completed-cell records of a matching previous run (empty on mismatch).

    A corrupt line — the classic failure being a truncated final append
    after a crash or full disk — invalidates only itself and the tail
    behind it: every intact record *before* it is still reused, and the
    skipped lines are counted as ``sweep.manifest.corrupt_lines``.
    """
    if not path.exists():
        return {}
    try:
        with path.open() as handle:
            lines = handle.readlines()
    except OSError:
        return {}
    if not lines:
        return {}
    try:
        first = json.loads(lines[0])
    except json.JSONDecodeError:
        return {}
    if first != header:
        return {}
    done: dict[str, dict] = {}
    for position, line in enumerate(lines[1:], start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
            cell_id = record["cell_id"]
        except (json.JSONDecodeError, KeyError, TypeError):
            telemetry.inc("sweep.manifest.corrupt_lines",
                          len(lines) - position)
            break
        done[cell_id] = record
    return done


def _resume_cells(cells: "list[SweepCell]",
                  records: dict[str, dict]) -> dict[str, CellResult]:
    """Recorded cells safe to reuse for this exact sweep.

    A record is only reused when its ``spawn_key`` and parameters match
    the cell being scheduled — cell seeds derive from the cell's index
    in the expanded grid, so a manifest from a differently-shaped sweep
    (e.g. other ``--sweep`` values) must not leak results across grids.
    """
    done: dict[str, CellResult] = {}
    for cell in cells:
        record = records.get(cell.cell_id)
        if record is None:
            continue
        if record.get("quarantined"):
            continue  # a poisoned cell gets a fresh chance on resume
        if record.get("spawn_key") != list(cell.spawn_key):
            continue
        if record.get("params") != _jsonable(cell.params):
            continue
        done[cell.cell_id] = CellResult(
            index=cell.index,
            cell_id=cell.cell_id,
            params=cell.params,
            rows=record["rows"],
            pid=record.get("pid", -1),
            metrics=record.get("metrics"),
            cached=True,
            attempts=record.get("attempts", 1),
            decisions=record.get("decisions"),
        )
    return done


# -- content-addressed store consultation -------------------------------


def _store_scan(store: ExperimentStore, spec: ExperimentSpec,
                cells: "list[SweepCell]", done: "dict[str, CellResult]",
                plan: "FaultPlan | None", collect_decisions: bool):
    """Consult the experiment store for every cell before dispatch.

    Returns ``(keys, hits, write_ids)``: each cell's content key, the
    store-served :class:`CellResult` per cell the store can satisfy
    (manifest-resumed cells are never double-served), and the ids of
    cells whose completion should be written through — misses, plus
    manifest-resumed cells the store has never seen (so resuming an
    older sweep back-fills the store).
    """
    numerics = active_numerics()
    fingerprint = code_fingerprint()
    plan_dict = plan.to_dict() if plan is not None else None
    keys: dict[str, str] = {}
    hits: dict[str, CellResult] = {}
    write_ids: set[str] = set()
    for cell in cells:
        key = cell_key(
            spec.name, cell.params,
            entropy=cell.entropy, spawn_key=cell.spawn_key,
            fault_plan=plan_dict, numerics=numerics, code=fingerprint,
        )
        keys[cell.cell_id] = key
        if cell.cell_id in done:
            if not store.contains(key):
                write_ids.add(cell.cell_id)
            continue
        result = _store_hit(store, key, cell, collect_decisions)
        if result is None:
            write_ids.add(cell.cell_id)
            telemetry.inc("sweep.store.misses")
        else:
            hits[cell.cell_id] = result
            telemetry.inc("sweep.store.hits")
    return keys, hits, write_ids


def _store_hit(store: ExperimentStore, key: str, cell: SweepCell,
               need_decisions: bool) -> "CellResult | None":
    """The stored result for ``cell``, or ``None`` when unusable.

    A blob without decision records cannot serve a run that collects
    them (``--trace-decisions``) — the cell recomputes and the write-
    through refreshes the blob with its trace.  Replayed decision
    records are stamped ``store_hit`` so downstream consumers
    (``repro diagnose``) can attribute them.
    """
    blob = store.get(key)
    if blob is None:
        return None
    result = blob.get("result")
    if not isinstance(result, dict) \
            or not isinstance(result.get("rows"), list):
        return None
    if result.get("recovered"):
        # Crash-recovered blobs never serve replays: the recompute is
        # the authority, and its write-through refreshes the blob.
        return None
    decisions = result.get("decisions")
    if need_decisions and decisions is None:
        return None
    if decisions is not None:
        decisions = [
            {**record, "store_hit": True}
            for record in decisions if isinstance(record, dict)
        ]
    return CellResult(
        index=cell.index,
        cell_id=cell.cell_id,
        params=cell.params,
        rows=result["rows"],
        pid=-1,
        metrics=result.get("metrics"),
        attempts=1,
        decisions=decisions,
        store_hit=True,
    )


class _ManifestWriter:
    """Append-only JSONL checkpoint of completed cells.

    Doubles as the store write-through point: every completion path
    (serial, pool, manifest re-append) funnels through :meth:`append`,
    so cells whose content key missed the experiment store are stored
    there exactly once, even when manifest checkpointing is disabled.
    """

    def __init__(self, path: Path | None, header: dict, fresh: bool,
                 store: "ExperimentStore | None" = None,
                 store_keys: "dict[str, str] | None" = None,
                 store_meta: "dict | None" = None) -> None:
        self.path = path
        self._handle = None
        self._spawn_keys: dict[str, tuple[int, ...]] = {}
        self._store = store
        self._store_keys = store_keys or {}
        self._store_meta = store_meta or {}
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        if fresh or not path.exists():
            self._handle = path.open("w")
            self._write(header)
        else:
            self._handle = path.open("a")

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def track(self, cells: "list[SweepCell]") -> None:
        """Remember each cell's seed-tree node for its checkpoint line."""
        self._spawn_keys = {c.cell_id: c.spawn_key for c in cells}

    def _store_put(self, result: CellResult) -> None:
        """Write one completed cell through to the experiment store.

        Only cells whose key missed during the pre-dispatch scan are
        written (``store_keys`` holds exactly those); quarantined cells
        never are — a failure is not a result.  Cells containing
        crash-recovered fleet rows (``recovered`` flag) are stamped
        ``recovered: true`` and never overwrite an existing blob, so a
        warm-restored run cannot shadow a clean result under the same
        key; serving such a blob is also refused (:func:`_store_hit`).
        Store I/O errors are downgraded to a telemetry counter: a
        broken cache must not fail the sweep that would populate it.
        """
        if self._store is None or result.error is not None \
                or result.store_hit:
            return
        key = self._store_keys.get(result.cell_id)
        if key is None:
            return
        recovered = any(
            isinstance(row, dict) and row.get("recovered")
            for row in result.rows
        )
        record = {
            "rows": result.rows,
            "metrics": result.metrics,
            "attempts": result.attempts,
        }
        if recovered:
            if self._store.contains(key):
                telemetry.inc("sweep.store.recovered_skips")
                return
            record["recovered"] = True
        if result.decisions is not None:
            record["decisions"] = result.decisions
        meta = {
            **{k: v for k, v in self._store_meta.items() if k != "entropy"},
            "cell_id": result.cell_id,
            "params": _jsonable(result.params),
            "seed": {
                "entropy": self._store_meta.get("entropy"),
                "spawn_key": list(self._spawn_keys.get(result.cell_id, ())),
            },
        }
        try:
            self._store.put(key, record, meta)
            telemetry.inc("sweep.store.writes")
        except OSError:
            telemetry.inc("sweep.store.write_errors")

    def append(self, result: CellResult) -> None:
        """Checkpoint one completed (or quarantined) cell."""
        self._store_put(result)
        if self._handle is None:
            return
        record = {
            "index": result.index,
            "cell_id": result.cell_id,
            "spawn_key": list(self._spawn_keys.get(result.cell_id, ())),
            "params": _jsonable(result.params),
            "rows": result.rows,
            "pid": result.pid,
            "metrics": result.metrics,
            "attempts": result.attempts,
        }
        if result.decisions is not None:
            record["decisions"] = result.decisions
        if result.error is not None:
            record["quarantined"] = True
            record["error"] = result.error
        self._write(record)

    def close(self) -> None:
        """Close the underlying file (no-op without a path)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# -- telemetry merging --------------------------------------------------


def merge_metrics(snapshots: "list[dict]") -> dict:
    """Combine per-cell metrics snapshots into one summary dict.

    Counters and histogram buckets are summed, gauges keep the last
    non-NaN value seen, histogram min/max/mean are recombined.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            if value == value:  # skip NaN
                gauges[name] = value
        for name, h in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {k: (list(v) if isinstance(v, list) else v)
                                    for k, v in h.items()}
                continue
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], h["counts"])
            ]
            merged["count"] += h["count"]
            merged["sum"] += h["sum"]
            mins = [v for v in (merged["min"], h["min"]) if v is not None]
            maxs = [v for v in (merged["max"], h["max"]) if v is not None]
            merged["min"] = min(mins) if mins else None
            merged["max"] = max(maxs) if maxs else None
            merged["mean"] = (
                merged["sum"] / merged["count"] if merged["count"] else None
            )
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def _merge_decisions(ordered: "list[CellResult]",
                     decision_path: "Path | str | None") -> None:
    """Re-emit every cell's decision records in cell-index order.

    With a ``decision_path`` the merged trace is written there as one
    JSONL file (records already carry their ``cell`` label from the
    worker's scope); otherwise each record goes through
    :func:`repro.obs.emit` into the caller's installed sink, keeping
    interleaving with any recording telemetry sinks.
    """
    records = [
        record for result in ordered for record in (result.decisions or [])
    ]
    if decision_path is not None:
        sink = JsonlSink(decision_path)
        try:
            for record in records:
                sink.emit(record)
        finally:
            sink.close()
        return
    for record in records:
        obs.emit(record)


def _fold_into_parent_registry(merged: dict) -> None:
    """Add merged worker counters/gauges to the parent's registry."""
    reg = telemetry.get_registry()
    for name, value in merged.get("counters", {}).items():
        reg.counter(name).inc(int(value))
    for name, value in merged.get("gauges", {}).items():
        reg.gauge(name).set(value)


# -- the engine ---------------------------------------------------------


def _quarantined_result(cell: SweepCell, attempts: int,
                        error: BaseException) -> CellResult:
    """Poison-cell record: every attempt failed; the sweep carries on."""
    telemetry.inc("sweep.cell.quarantined")
    return CellResult(
        index=cell.index,
        cell_id=cell.cell_id,
        params=cell.params,
        rows=[],
        pid=-1,
        attempts=attempts,
        error=repr(error),
    )


def _backoff(retry_backoff_s: float, attempt: int) -> None:
    """Exponential pre-retry pause (attempt is the one that failed)."""
    telemetry.inc("sweep.cell.retries")
    if retry_backoff_s > 0.0:
        time.sleep(retry_backoff_s * (2.0 ** attempt))


def _run_serial(spec, pending, results, writer, plan, max_retries,
                retry_backoff_s, collect_decisions=False):
    """In-process execution with the same retry/quarantine ladder."""
    for cell in pending:
        result = None
        failure: BaseException | None = None
        for attempt in range(max_retries + 1):
            if attempt:
                _backoff(retry_backoff_s, attempt - 1)
            try:
                with faults.use(plan, seed_path=cell.spawn_key):
                    result = _run_cell_inprocess(
                        spec, cell, attempt,
                        collect_decisions=collect_decisions,
                    )
                break
            except Exception as exc:  # noqa: BLE001 — quarantine ladder
                failure = exc
        if result is None:
            result = _quarantined_result(cell, max_retries + 1, failure)
        results[cell.cell_id] = result
        writer.append(result)


def _run_pool(spec, pending, results, writer, plan_dict, collect_telemetry,
              jobs, max_retries, retry_backoff_s, cell_timeout_s,
              collect_decisions=False):
    """Pool execution: retries, per-cell deadlines, poison quarantine.

    A timed-out future cannot be preempted inside a
    :class:`ProcessPoolExecutor`; it is *abandoned* (stops being
    waited on) and the cell is resubmitted — the stuck worker frees
    itself when its cell body eventually returns.
    """
    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:

        def submit(cell: SweepCell, attempt: int) -> None:
            """Submit one cell attempt and start its deadline clock."""
            future = pool.submit(
                _execute_cell, spec.name, cell, collect_telemetry,
                plan_dict, attempt, collect_decisions,
            )
            deadline = (
                time.monotonic() + cell_timeout_s
                if cell_timeout_s is not None else None
            )
            tracked[future] = (cell, attempt, deadline)

        def handle_failure(cell: SweepCell, attempt: int,
                           error: BaseException) -> None:
            """Retry with backoff, or quarantine once the budget is spent."""
            if attempt < max_retries:
                _backoff(retry_backoff_s, attempt)
                submit(cell, attempt + 1)
                return
            result = _quarantined_result(cell, attempt + 1, error)
            results[cell.cell_id] = result
            writer.append(result)

        tracked: dict = {}
        for cell in pending:
            submit(cell, 0)
        while tracked:
            wait_s = None
            if cell_timeout_s is not None:
                deadlines = [d for (_, _, d) in tracked.values() if d is not None]
                if deadlines:
                    wait_s = max(0.0, min(deadlines) - time.monotonic())
            finished, _ = wait(
                set(tracked), timeout=wait_s, return_when=FIRST_COMPLETED
            )
            for future in finished:
                cell, attempt, _ = tracked.pop(future)
                try:
                    result = future.result()
                except Exception as exc:  # noqa: BLE001 — quarantine ladder
                    handle_failure(cell, attempt, exc)
                else:
                    results[result.cell_id] = result
                    writer.append(result)
            now = time.monotonic()
            for future, (cell, attempt, deadline) in list(tracked.items()):
                if deadline is None or now < deadline:
                    continue
                tracked.pop(future)
                future.cancel()
                telemetry.inc("sweep.cell.timeouts")
                handle_failure(
                    cell, attempt,
                    TimeoutError(
                        f"cell '{cell.cell_id}' exceeded "
                        f"{cell_timeout_s:.1f}s (attempt {attempt})"
                    ),
                )


def run_sweep(
    spec: ExperimentSpec,
    params: dict,
    *,
    seed: int = 0,
    jobs: int = 1,
    out: "Path | str | None" = None,
    resume: bool = True,
    sweep_overrides: dict | None = None,
    max_retries: int = 2,
    retry_backoff_s: float = 0.05,
    cell_timeout_s: float | None = None,
    fault_plan: "FaultPlan | None" = None,
    decision_path: "Path | str | None" = None,
    store: "ExperimentStore | Path | str | None" = None,
) -> SweepResult:
    """Execute every cell of ``spec`` for ``params`` (see module docs).

    Parameters
    ----------
    seed:
        Root of the sweep's SeedSequence spawn tree.
    jobs:
        Worker processes; ``1`` runs serially in-process.
    out:
        Directory for the resume manifest (``None`` disables
        checkpointing).
    resume:
        Skip cells already recorded in a matching manifest.
    sweep_overrides:
        Extra/replacement axis values (``repro run --sweep key=a,b,c``).
    max_retries:
        Extra attempts per failing cell before it is quarantined.
    retry_backoff_s:
        Base of the exponential pre-retry pause (0 disables sleeping).
    cell_timeout_s:
        Per-cell wall-clock deadline (pool mode only — a serial cell
        cannot be preempted); ``None`` disables it.
    fault_plan:
        Fault plan to install inside every cell scope; defaults to the
        process's active plan (``repro run --faults plan.json``).
    decision_path:
        JSONL file for the merged decision trace
        (``--trace-decisions``): every cell runs under its own decision
        sink, records come back on the :class:`CellResult` (persisting
        through the manifest, so resumed cells keep their traces) and
        are written here in cell-index order.  ``None`` falls back to
        the caller's installed :mod:`repro.obs` sink, if any; with
        neither, cells run untraced.
    store:
        Content-addressed experiment store (an
        :class:`~repro.store.store.ExperimentStore` or a directory
        path, ``repro run --store DIR``).  Cells whose canonical
        configuration hash is already stored are served from it
        without dispatching a worker and counted in
        :attr:`SweepResult.store_hits`; fresh completions are written
        through.  ``None`` disables the store (the CLI resolves
        ``REPRO_STORE`` before calling).  See ``docs/STORE.md``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    cells = _build_cells(spec, params, seed, sweep_overrides)
    header = _manifest_header(spec, params, seed)
    manifest_path = _manifest_path(spec, Path(out)) if out is not None else None
    plan = fault_plan if fault_plan is not None else faults.active_plan()

    done: dict[str, CellResult] = {}
    if manifest_path is not None and resume:
        done = _resume_cells(cells, _load_manifest(manifest_path, header))
    collect_telemetry = telemetry.enabled() and jobs > 1
    collect_decisions = decision_path is not None or obs.enabled()

    store_obj = (
        store if isinstance(store, ExperimentStore) or store is None
        else ExperimentStore(store)
    )
    store_keys: dict[str, str] = {}
    store_hits: dict[str, CellResult] = {}
    store_meta: dict = {}
    if store_obj is not None:
        store_keys, store_hits, write_ids = _store_scan(
            store_obj, spec, cells, done, plan, collect_decisions
        )
        store_keys = {
            cid: key for cid, key in store_keys.items() if cid in write_ids
        }
        store_meta = {
            "spec": spec.name,
            "numerics_mode": active_numerics().mode,
            "code": code_fingerprint(),
            "entropy": seed,
        }
    pending = [
        c for c in cells
        if c.cell_id not in done and c.cell_id not in store_hits
    ]

    # Rewrite the manifest from the reused records: a corrupt tail (or
    # a stale quarantine entry) must not sit beneath fresh appends.
    writer = _ManifestWriter(manifest_path, header, fresh=True,
                             store=store_obj, store_keys=store_keys,
                             store_meta=store_meta)
    writer.track(cells)
    results: dict[str, CellResult] = {**done, **store_hits}
    try:
        for cached in sorted(
            [*done.values(), *store_hits.values()], key=lambda r: r.index
        ):
            writer.append(cached)
        if jobs == 1 or len(pending) <= 1:
            _run_serial(spec, pending, results, writer, plan,
                        max_retries, retry_backoff_s,
                        collect_decisions=collect_decisions)
        else:
            _run_pool(spec, pending, results, writer,
                      plan.to_dict() if plan is not None else None,
                      collect_telemetry, jobs, max_retries,
                      retry_backoff_s, cell_timeout_s,
                      collect_decisions=collect_decisions)
    finally:
        writer.close()

    if collect_telemetry:
        merged = merge_metrics(
            [r.metrics for r in results.values() if r.metrics]
        )
        if merged["counters"] or merged["gauges"] or merged["histograms"]:
            _fold_into_parent_registry(merged)

    ordered = sorted(results.values(), key=lambda r: r.index)
    if collect_decisions:
        _merge_decisions(ordered, decision_path)
    return SweepResult(
        spec_name=spec.name,
        params=params,
        cells=ordered,
        manifest_path=manifest_path,
        store_path=store_obj.root if store_obj is not None else None,
    )
