"""Process-parallel sweep engine over declarative experiment specs.

:func:`run_sweep` expands an :class:`~repro.experiments.spec.ExperimentSpec`
into independent cells and executes them:

* **seeding** — one :class:`numpy.random.SeedSequence` root per sweep,
  spawned into one child per cell *by cell index*, so per-cell
  randomness is independent of execution order and worker count
  (``--jobs 1`` and ``--jobs N`` produce identical results);
* **scheduling** — ``jobs == 1`` runs cells in-process (telemetry spans
  nest under the caller's trace as ``sweep.cell``); ``jobs > 1``
  dispatches cells to a :class:`concurrent.futures.ProcessPoolExecutor`
  by spec *name* — workers re-import the registry, so only plain data
  crosses the process boundary;
* **checkpointing** — completed cells are appended to a JSONL manifest
  under the output directory; re-running the same sweep resumes by
  skipping cells already in the manifest (a changed seed or parameter
  set invalidates it);
* **telemetry** — when the parent records a trace, worker cells collect
  their own metrics snapshots which are merged (counters summed,
  histograms bucket-wise) into the parent registry so the final report
  covers the whole sweep.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.experiments import spec as registry
from repro.experiments.spec import ExperimentSpec
from repro.telemetry import runtime as telemetry

__all__ = ["SweepCell", "CellResult", "SweepResult", "run_sweep", "merge_metrics"]


@dataclass(frozen=True)
class SweepCell:
    """One schedulable point of a sweep (plain data, picklable)."""

    index: int
    cell_id: str
    params: dict
    #: Root entropy + spawn key identifying this cell's SeedSequence
    #: node inside the sweep's spawn tree.
    entropy: int
    spawn_key: tuple[int, ...]

    def seed_sequence(self) -> np.random.SeedSequence:
        """Reconstruct this cell's node of the sweep's seed tree."""
        return np.random.SeedSequence(
            entropy=self.entropy, spawn_key=self.spawn_key
        )


@dataclass
class CellResult:
    """Outcome of one executed (or resumed) cell."""

    index: int
    cell_id: str
    params: dict
    rows: list
    pid: int
    metrics: dict | None = None
    cached: bool = False


@dataclass
class SweepResult:
    """Merged outcome of one sweep, in cell-index order."""

    spec_name: str
    params: dict
    cells: list[CellResult] = field(default_factory=list)
    manifest_path: Path | None = None

    @property
    def rows(self) -> list:
        """All cell rows concatenated in cell order."""
        return [row for cell in self.cells for row in cell.rows]

    @property
    def pids(self) -> tuple[int, ...]:
        """Distinct worker PIDs that executed (non-cached) cells."""
        return tuple(sorted({c.pid for c in self.cells if not c.cached}))

    @property
    def resumed(self) -> int:
        """How many cells were skipped thanks to the manifest."""
        return sum(1 for c in self.cells if c.cached)


def _build_cells(spec: ExperimentSpec, params: dict, seed: int,
                 sweep_overrides=None) -> list[SweepCell]:
    """Expand the grid and attach one seed-tree node per cell."""
    pairs = spec.cells(params, sweep_overrides)
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(pairs))
    return [
        SweepCell(
            index=i,
            cell_id=cid,
            params=cell_params,
            entropy=int(root.entropy),
            spawn_key=tuple(int(k) for k in child.spawn_key),
        )
        for i, ((cid, cell_params), child) in enumerate(zip(pairs, children))
    ]


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays for the JSONL manifest."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def _execute_cell(spec_name: str, cell: SweepCell,
                  collect_telemetry: bool) -> CellResult:
    """Run one cell — the worker-process entry point.

    Top-level so it pickles under any multiprocessing start method;
    looks the spec up by name after (re-)loading the registry.
    """
    registry.load_all()
    spec = registry.get(spec_name)
    metrics = None
    if collect_telemetry:
        telemetry.reset_metrics()
        telemetry.enable()
        try:
            rows = spec.run_cell(cell.params, cell.seed_sequence())
            metrics = telemetry.metrics_snapshot()
        finally:
            telemetry.disable()
    else:
        rows = spec.run_cell(cell.params, cell.seed_sequence())
    return CellResult(
        index=cell.index,
        cell_id=cell.cell_id,
        params=cell.params,
        rows=_jsonable(rows),
        pid=os.getpid(),
        metrics=metrics,
    )


def _run_cell_inprocess(spec: ExperimentSpec, cell: SweepCell) -> CellResult:
    """Serial path: telemetry spans nest under the caller's trace."""
    with telemetry.span("sweep.cell") as sp:
        if sp:
            sp.set("spec", spec.name)
            sp.set("cell", cell.cell_id)
        rows = spec.run_cell(cell.params, cell.seed_sequence())
    return CellResult(
        index=cell.index,
        cell_id=cell.cell_id,
        params=cell.params,
        rows=_jsonable(rows),
        pid=os.getpid(),
    )


# -- manifest checkpointing ---------------------------------------------


def _manifest_path(spec: ExperimentSpec, out: Path) -> Path:
    return Path(out) / f"{spec.name}_manifest.jsonl"


def _manifest_header(spec: ExperimentSpec, params: dict, seed: int) -> dict:
    return {
        "type": "sweep",
        "spec": spec.name,
        "seed": seed,
        "params": _jsonable(params),
    }


def _load_manifest(path: Path, header: dict) -> dict[str, dict]:
    """Completed-cell records of a matching previous run (empty on mismatch)."""
    if not path.exists():
        return {}
    done: dict[str, dict] = {}
    try:
        with path.open() as handle:
            first = json.loads(next(handle, "null"))
            if first != header:
                return {}
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                done[record["cell_id"]] = record
    except (json.JSONDecodeError, KeyError, OSError):
        return {}
    return done


def _resume_cells(cells: "list[SweepCell]",
                  records: dict[str, dict]) -> dict[str, CellResult]:
    """Recorded cells safe to reuse for this exact sweep.

    A record is only reused when its ``spawn_key`` and parameters match
    the cell being scheduled — cell seeds derive from the cell's index
    in the expanded grid, so a manifest from a differently-shaped sweep
    (e.g. other ``--sweep`` values) must not leak results across grids.
    """
    done: dict[str, CellResult] = {}
    for cell in cells:
        record = records.get(cell.cell_id)
        if record is None:
            continue
        if record.get("spawn_key") != list(cell.spawn_key):
            continue
        if record.get("params") != _jsonable(cell.params):
            continue
        done[cell.cell_id] = CellResult(
            index=cell.index,
            cell_id=cell.cell_id,
            params=cell.params,
            rows=record["rows"],
            pid=record.get("pid", -1),
            metrics=record.get("metrics"),
            cached=True,
        )
    return done


class _ManifestWriter:
    """Append-only JSONL checkpoint of completed cells."""

    def __init__(self, path: Path | None, header: dict, fresh: bool) -> None:
        self.path = path
        self._handle = None
        self._spawn_keys: dict[str, tuple[int, ...]] = {}
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        if fresh or not path.exists():
            self._handle = path.open("w")
            self._write(header)
        else:
            self._handle = path.open("a")

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def track(self, cells: "list[SweepCell]") -> None:
        """Remember each cell's seed-tree node for its checkpoint line."""
        self._spawn_keys = {c.cell_id: c.spawn_key for c in cells}

    def append(self, result: CellResult) -> None:
        """Checkpoint one completed cell."""
        if self._handle is None:
            return
        self._write({
            "index": result.index,
            "cell_id": result.cell_id,
            "spawn_key": list(self._spawn_keys.get(result.cell_id, ())),
            "params": _jsonable(result.params),
            "rows": result.rows,
            "pid": result.pid,
            "metrics": result.metrics,
        })

    def close(self) -> None:
        """Close the underlying file (no-op without a path)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# -- telemetry merging --------------------------------------------------


def merge_metrics(snapshots: "list[dict]") -> dict:
    """Combine per-cell metrics snapshots into one summary dict.

    Counters and histogram buckets are summed, gauges keep the last
    non-NaN value seen, histogram min/max/mean are recombined.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            if value == value:  # skip NaN
                gauges[name] = value
        for name, h in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {k: (list(v) if isinstance(v, list) else v)
                                    for k, v in h.items()}
                continue
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], h["counts"])
            ]
            merged["count"] += h["count"]
            merged["sum"] += h["sum"]
            mins = [v for v in (merged["min"], h["min"]) if v is not None]
            maxs = [v for v in (merged["max"], h["max"]) if v is not None]
            merged["min"] = min(mins) if mins else None
            merged["max"] = max(maxs) if maxs else None
            merged["mean"] = (
                merged["sum"] / merged["count"] if merged["count"] else None
            )
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def _fold_into_parent_registry(merged: dict) -> None:
    """Add merged worker counters/gauges to the parent's registry."""
    reg = telemetry.get_registry()
    for name, value in merged.get("counters", {}).items():
        reg.counter(name).inc(int(value))
    for name, value in merged.get("gauges", {}).items():
        reg.gauge(name).set(value)


# -- the engine ---------------------------------------------------------


def run_sweep(
    spec: ExperimentSpec,
    params: dict,
    *,
    seed: int = 0,
    jobs: int = 1,
    out: "Path | str | None" = None,
    resume: bool = True,
    sweep_overrides: dict | None = None,
) -> SweepResult:
    """Execute every cell of ``spec`` for ``params`` (see module docs).

    Parameters
    ----------
    seed:
        Root of the sweep's SeedSequence spawn tree.
    jobs:
        Worker processes; ``1`` runs serially in-process.
    out:
        Directory for the resume manifest (``None`` disables
        checkpointing).
    resume:
        Skip cells already recorded in a matching manifest.
    sweep_overrides:
        Extra/replacement axis values (``repro run --sweep key=a,b,c``).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    cells = _build_cells(spec, params, seed, sweep_overrides)
    header = _manifest_header(spec, params, seed)
    manifest_path = _manifest_path(spec, Path(out)) if out is not None else None

    done: dict[str, CellResult] = {}
    if manifest_path is not None and resume:
        done = _resume_cells(cells, _load_manifest(manifest_path, header))
    pending = [c for c in cells if c.cell_id not in done]

    writer = _ManifestWriter(manifest_path, header, fresh=not done)
    writer.track(cells)
    results: dict[str, CellResult] = dict(done)
    collect_telemetry = telemetry.enabled() and jobs > 1
    try:
        if jobs == 1 or len(pending) <= 1:
            for cell in pending:
                result = _run_cell_inprocess(spec, cell)
                results[cell.cell_id] = result
                writer.append(result)
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                futures = {
                    pool.submit(_execute_cell, spec.name, cell, collect_telemetry)
                    for cell in pending
                }
                while futures:
                    finished, futures = wait(futures, return_when=FIRST_COMPLETED)
                    for future in finished:
                        result = future.result()
                        results[result.cell_id] = result
                        writer.append(result)
    finally:
        writer.close()

    if collect_telemetry:
        merged = merge_metrics(
            [r.metrics for r in results.values() if r.metrics]
        )
        if merged["counters"] or merged["gauges"] or merged["histograms"]:
            _fold_into_parent_registry(merged)

    ordered = sorted(results.values(), key=lambda r: r.index)
    return SweepResult(
        spec_name=spec.name,
        params=params,
        cells=ordered,
        manifest_path=manifest_path,
    )
