"""Declarative experiment specs and the process-wide registry.

Every experiment of the reproduction is described by one
:class:`ExperimentSpec`: a name, typed parameter declarations, a
*cell* function that executes one independent point of the sweep, and a
report renderer that turns the merged cell rows back into the tables /
charts / CSV artifacts of the paper figure.  Specs are plain data — the
CLI generates one subcommand per registered spec (flags derived from
the :class:`ParamSpec` declarations) and the sweep engine
(:mod:`repro.experiments.parallel`) expands, schedules and checkpoints
the cells, so adding a scenario is ~30 lines of spec instead of a new
``cmd_*`` handler plus a hand-rolled for-loop.

Cell contract
-------------

``run_cell(params, seed)`` receives the fully-resolved parameter dict
for one cell (every sweep axis collapsed to a scalar) plus one node of
the sweep's :class:`numpy.random.SeedSequence` spawn tree, and returns
a list of JSON-serialisable row dicts.  Cells must be top-level
functions (they are dispatched to worker processes) and must derive
*all* randomness from the seed node so that ``--jobs 1`` and
``--jobs N`` produce identical results.

``report(rows, params, out)`` runs in the parent only: it renders the
experiment's text output and writes its CSV artifacts under ``out``,
returning the text to print.  ``artifacts(params)`` declares the CSV
file names the report writes, so smoke tests can assert them.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ParamSpec",
    "ExperimentSpec",
    "register",
    "get",
    "names",
    "all_specs",
    "load_all",
    "cell_id",
]


@dataclass(frozen=True)
class ParamSpec:
    """One typed, documented experiment parameter.

    ``sweep=True`` declares a *sweep axis*: the parameter's value is a
    sequence and the engine runs one independent cell per value (CLI
    flag becomes ``nargs='+'``).  Scalar parameters apply to every cell.
    """

    name: str
    type: Callable = float
    default: object = None
    help: str = ""
    sweep: bool = False
    choices: tuple | None = None
    required: bool = False

    def __post_init__(self) -> None:
        """Normalise sweep defaults to tuples."""
        if self.sweep and self.default is not None:
            object.__setattr__(self, "default", tuple(self.default))

    def add_argument(self, parser) -> None:
        """Register this parameter as an argparse flag on ``parser``."""
        kwargs: dict = {"help": self.help or None, "default": self.default}
        if self.choices is not None:
            kwargs["choices"] = self.choices
        if self.required:
            kwargs["required"] = True
        if self.sweep:
            kwargs["nargs"] = "+"
        parser.add_argument(f"--{self.name}", type=self.type, **kwargs)

    def parse_values(self, raw: "str | Sequence[str]") -> tuple:
        """Coerce ``--sweep name=a,b,c`` raw strings with this type."""
        if isinstance(raw, str):
            raw = [v for v in raw.split(",") if v]
        if not raw:
            raise ValueError(f"parameter '{self.name}': empty value list")
        values = tuple(self.type(v) for v in raw)
        if self.choices is not None:
            bad = [v for v in values if v not in self.choices]
            if bad:
                raise ValueError(
                    f"parameter '{self.name}': {bad[0]!r} not in {self.choices}"
                )
        return values


def _default_expand(spec: "ExperimentSpec", params: Mapping) -> list[dict]:
    """Cartesian product over the declared sweep parameters."""
    sweep_params = [p for p in spec.params if p.sweep]
    if not sweep_params:
        return [{}]
    axes = [[(p.name, v) for v in params[p.name]] for p in sweep_params]
    return [dict(combo) for combo in itertools.product(*axes)]


def cell_id(axis: Mapping) -> str:
    """Stable identifier of one cell from its axis coordinates."""
    if not axis:
        return "all"
    parts = []
    for key, value in axis.items():
        text = f"{value:g}" if isinstance(value, float) else str(value)
        parts.append(f"{key}={text}")
    return "/".join(parts)


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment (see module docstring).

    Attributes
    ----------
    name, help:
        CLI subcommand name and help text.
    params:
        Typed parameter declarations; sweep params expand into cells.
    run_cell:
        ``(cell_params, seed_sequence) -> list[dict]`` — one cell.
        Must be a picklable top-level function.
    report:
        ``(rows, params, out_dir) -> str`` — renders text output and
        writes the CSV artifacts from the merged cell rows.
    expand:
        Optional override producing the list of axis dicts for a
        resolved parameter set (defaults to the product of sweep
        params).  Use it to add non-flag axes such as the constraint
        settings of Figs. 10-11 or repetition indices.
    artifacts:
        ``(params) -> tuple[str, ...]`` of CSV file names the report
        writes (defaults to ``('<name>.csv',)``).
    """

    name: str
    help: str
    params: tuple[ParamSpec, ...]
    run_cell: Callable[[Mapping, object], list]
    report: Callable[[list, Mapping, Path], str]
    expand: Callable[[Mapping], list] | None = None
    artifacts: Callable[[Mapping], tuple] | None = None

    def param(self, name: str) -> ParamSpec:
        """Look up one declared parameter, raising a helpful error."""
        for p in self.params:
            if p.name == name:
                return p
        known = ", ".join(p.name for p in self.params) or "(none)"
        raise KeyError(
            f"experiment '{self.name}' has no parameter '{name}' (known: {known})"
        )

    def defaults(self) -> dict:
        """Default value of every declared parameter."""
        return {p.name: p.default for p in self.params}

    def resolve(self, overrides: Mapping | None = None) -> dict:
        """Merge ``overrides`` into the defaults, validating names."""
        params = self.defaults()
        for key, value in (overrides or {}).items():
            if value is None:
                continue
            p = self.param(key)
            params[key] = tuple(value) if p.sweep else value
        missing = [p.name for p in self.params if p.required and params[p.name] is None]
        if missing:
            raise ValueError(
                f"experiment '{self.name}': missing required parameter(s) "
                + ", ".join(missing)
            )
        return params

    def cells(
        self, params: Mapping, sweep_overrides: Mapping | None = None
    ) -> list[tuple[str, dict]]:
        """``(cell_id, cell_params)`` for every cell of the sweep.

        ``sweep_overrides`` maps parameter names to value sequences
        (the CLI's ``--sweep key=a,b,c``): declared sweep axes have
        their values replaced, scalar parameters are promoted to extra
        axes crossed with the base expansion.
        """
        params = dict(params)
        extra: dict[str, tuple] = {}
        for key, values in (sweep_overrides or {}).items():
            p = self.param(key)
            values = tuple(values)
            if p.sweep:
                params[key] = values
            else:
                extra[key] = values
        axes = (
            self.expand(params) if self.expand is not None
            else _default_expand(self, params)
        )
        for key, values in extra.items():
            axes = [{**axis, key: v} for axis in axes for v in values]
        return [(cell_id(axis), {**params, **axis}) for axis in axes]

    def artifact_names(self, params: Mapping) -> tuple[str, ...]:
        """CSV file names the report writes for ``params``."""
        if self.artifacts is not None:
            return tuple(self.artifacts(params))
        return (f"{self.name}.csv",)


# -- registry -----------------------------------------------------------

_REGISTRY: dict[str, ExperimentSpec] = {}

#: Subcommand names the CLI reserves for itself.
RESERVED_NAMES = ("list", "run", "telemetry-report", "diagnose", "results")


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add ``spec`` to the registry (idempotent per name); returns it."""
    if spec.name in RESERVED_NAMES:
        raise ValueError(f"'{spec.name}' is a reserved CLI command name")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ExperimentSpec:
    """Fetch a registered spec by name, loading the registry if empty."""
    if name not in _REGISTRY:
        load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no experiment spec named '{name}' (registered: {', '.join(names())})"
        ) from None


def names() -> tuple[str, ...]:
    """Registered spec names in registration order."""
    return tuple(_REGISTRY)


def all_specs() -> tuple[ExperimentSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())


def load_all() -> None:
    """Import every experiment module so its spec registers itself.

    Worker processes call this before executing a dispatched cell, so
    the registry is populated regardless of multiprocessing start
    method.
    """
    import repro.experiments  # noqa: F401  (import side effect)
