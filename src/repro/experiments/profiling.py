"""Section 3 profiling experiments (Figures 1-6).

Each function sweeps the configuration policies exactly as the paper's
measurement campaign does and returns one dict row per measurement
point (each point being the average over a 150-image batch, sampled
with the testbed's observation noise — the "dots" of the figures).

The module registers the ``profile`` experiment spec: one cell per
run, selected by ``--figure``, with the summary's group/value key
lists declared per figure in :data:`FIGURES` (so an empty sweep or a
schema change cannot crash the renderer).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from repro.experiments import spec as spec_registry
from repro.experiments.recorder import write_csv
from repro.experiments.spec import ExperimentSpec, ParamSpec
from repro.testbed.config import ControlPolicy, TestbedConfig
from repro.testbed.env import EdgeAIEnvironment
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table

#: The resolution levels highlighted in every Section 3 figure.
RESOLUTIONS = (0.25, 0.5, 0.75, 1.0)

#: Airtime panels of Figs. 2, 5 and 6.
AIRTIME_PANELS = (0.2, 0.5, 1.0)

#: GPU-speed panels of Fig. 3.
GPU_PANELS = (0.1, 0.45, 1.0)

#: MCS policy sweep of Figs. 5-6 (normalised levels).
MCS_LEVELS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def _profiling_env(
    rng=0, mean_snr_db: float = 35.0, config: TestbedConfig | None = None
) -> EdgeAIEnvironment:
    return static_scenario(mean_snr_db=mean_snr_db, rng=rng, config=config)


def fig1_precision_vs_delay(
    env: EdgeAIEnvironment | None = None,
    resolutions: Sequence[float] = RESOLUTIONS,
    dots_per_point: int = 8,
) -> list[dict]:
    """mAP vs service delay per image resolution (Fig. 1).

    The remaining policies are fixed to minimise delay (max airtime,
    GPU speed and MCS).
    """
    env = env if env is not None else _profiling_env()
    rows = []
    for resolution in resolutions:
        policy = ControlPolicy(resolution, 1.0, 1.0, 1.0)
        for _ in range(dots_per_point):
            obs = env.evaluate(policy, noisy=True)
            rows.append(
                {
                    "resolution": resolution,
                    "delay_ms": obs.delay_s * 1000.0,
                    "map": obs.map_score,
                }
            )
    return rows


def fig2_delay_vs_server_power(
    env: EdgeAIEnvironment | None = None,
    airtimes: Sequence[float] = AIRTIME_PANELS,
    resolutions: Sequence[float] = RESOLUTIONS,
    dots_per_point: int = 6,
) -> list[dict]:
    """Service delay vs server power across airtime panels (Fig. 2)."""
    env = env if env is not None else _profiling_env()
    rows = []
    for airtime in airtimes:
        for resolution in resolutions:
            policy = ControlPolicy(resolution, airtime, 1.0, 1.0)
            for _ in range(dots_per_point):
                obs = env.evaluate(policy, noisy=True)
                rows.append(
                    {
                        "airtime": airtime,
                        "resolution": resolution,
                        "server_power_w": obs.server_power_w,
                        "delay_ms": obs.delay_s * 1000.0,
                    }
                )
    return rows


def fig3_gpu_policies(
    env: EdgeAIEnvironment | None = None,
    gpu_speeds: Sequence[float] = GPU_PANELS,
    resolutions: Sequence[float] = RESOLUTIONS,
    dots_per_point: int = 6,
) -> list[dict]:
    """Service and GPU delay vs server power across GPU panels (Fig. 3).

    Airtime is fixed at 100% as in the paper.
    """
    env = env if env is not None else _profiling_env()
    rows = []
    for gpu_speed in gpu_speeds:
        for resolution in resolutions:
            policy = ControlPolicy(resolution, 1.0, gpu_speed, 1.0)
            for _ in range(dots_per_point):
                obs = env.evaluate(policy, noisy=True)
                rows.append(
                    {
                        "gpu_speed": gpu_speed,
                        "resolution": resolution,
                        "server_power_w": obs.server_power_w,
                        "delay_ms": obs.delay_s * 1000.0,
                        "gpu_delay_ms": obs.gpu_delay_s * 1000.0,
                    }
                )
    return rows


def fig4_precision_vs_server_power(
    env: EdgeAIEnvironment | None = None,
    resolutions: Sequence[float] = RESOLUTIONS,
    dots_per_point: int = 8,
) -> list[dict]:
    """mAP vs server power at maximum radio/compute resources (Fig. 4)."""
    env = env if env is not None else _profiling_env()
    rows = []
    for resolution in resolutions:
        policy = ControlPolicy(resolution, 1.0, 1.0, 1.0)
        for _ in range(dots_per_point):
            obs = env.evaluate(policy, noisy=True)
            rows.append(
                {
                    "resolution": resolution,
                    "server_power_w": obs.server_power_w,
                    "map": obs.map_score,
                }
            )
    return rows


def fig5_bs_power_vs_mcs(
    env: EdgeAIEnvironment | None = None,
    airtimes: Sequence[float] = AIRTIME_PANELS,
    resolutions: Sequence[float] = RESOLUTIONS,
    mcs_levels: Sequence[float] = MCS_LEVELS,
    dots_per_point: int = 4,
) -> list[dict]:
    """BS power vs mean MCS across airtime panels at 1x load (Fig. 5)."""
    env = env if env is not None else _profiling_env()
    rows = []
    for airtime in airtimes:
        for resolution in resolutions:
            for mcs in mcs_levels:
                policy = ControlPolicy(resolution, airtime, 1.0, mcs)
                for _ in range(dots_per_point):
                    obs = env.evaluate(policy, noisy=True)
                    rows.append(
                        {
                            "airtime": airtime,
                            "resolution": resolution,
                            "mcs_policy": mcs,
                            "mean_mcs": obs.mean_mcs,
                            "bs_power_w": obs.bs_power_w,
                        }
                    )
    return rows


def fig6_bs_power_vs_mcs_10x(
    airtimes: Sequence[float] = AIRTIME_PANELS,
    resolutions: Sequence[float] = RESOLUTIONS,
    mcs_levels: Sequence[float] = MCS_LEVELS,
    dots_per_point: int = 4,
    load_multiplier: float = 10.0,
    rng=0,
) -> list[dict]:
    """Fig. 5's sweep with 10x emulated load (Fig. 6)."""
    config = TestbedConfig(load_multiplier=load_multiplier)
    env = _profiling_env(rng=rng, config=config)
    rows = fig5_bs_power_vs_mcs(
        env=env,
        airtimes=airtimes,
        resolutions=resolutions,
        mcs_levels=mcs_levels,
        dots_per_point=dots_per_point,
    )
    for row in rows:
        row["load_multiplier"] = load_multiplier
    return rows


def summarize(rows: list[dict], group_keys: Sequence[str],
              value_keys: Sequence[str]) -> str:
    """Group rows and render mean values as a text table.

    With no rows the (empty) table still renders — callers need not
    special-case a sweep that produced nothing.
    """
    groups: dict[tuple, dict[str, list[float]]] = {}
    for row in rows:
        key = tuple(row[k] for k in group_keys)
        bucket = groups.setdefault(key, {v: [] for v in value_keys})
        for v in value_keys:
            bucket[v].append(float(row[v]))
    table_rows = []
    for key in sorted(groups):
        bucket = groups[key]
        means = [sum(vals) / len(vals) for vals in bucket.values()]
        table_rows.append([*key, *means])
    headers = [*group_keys, *[f"mean_{v}" for v in value_keys]]
    return render_table(headers, table_rows)


# -- the ``profile`` experiment spec ------------------------------------

#: Per-figure declaration: CSV stem, row builder and the explicit
#: group/value key lists the summary table uses (owned here, not
#: derived from row-key prefixes in the CLI).
FIGURES: dict[int, dict] = {
    1: {
        "csv": "fig01_precision_delay",
        "build": lambda rng: fig1_precision_vs_delay(_profiling_env(rng=rng)),
        "group_keys": ("resolution",),
        "value_keys": ("delay_ms", "map"),
    },
    2: {
        "csv": "fig02_delay_serverpower",
        "build": lambda rng: fig2_delay_vs_server_power(_profiling_env(rng=rng)),
        "group_keys": ("airtime", "resolution"),
        "value_keys": ("server_power_w", "delay_ms"),
    },
    3: {
        "csv": "fig03_gpu_policies",
        "build": lambda rng: fig3_gpu_policies(_profiling_env(rng=rng)),
        "group_keys": ("gpu_speed", "resolution"),
        "value_keys": ("server_power_w", "delay_ms", "gpu_delay_ms"),
    },
    4: {
        "csv": "fig04_precision_serverpower",
        "build": lambda rng: fig4_precision_vs_server_power(
            _profiling_env(rng=rng)
        ),
        "group_keys": ("resolution",),
        "value_keys": ("server_power_w", "map"),
    },
    5: {
        "csv": "fig05_bspower_mcs",
        "build": lambda rng: fig5_bs_power_vs_mcs(_profiling_env(rng=rng)),
        "group_keys": ("airtime", "resolution", "mcs_policy"),
        "value_keys": ("mean_mcs", "bs_power_w"),
    },
    6: {
        "csv": "fig06_bspower_10x",
        "build": lambda rng: fig6_bs_power_vs_mcs_10x(rng=rng),
        "group_keys": ("airtime", "resolution", "mcs_policy"),
        "value_keys": ("mean_mcs", "bs_power_w"),
    },
}


def run_profile_cell(params: Mapping, seed) -> list[dict]:
    """One profiling campaign (the single cell of the ``profile`` spec)."""
    figure = FIGURES[int(params["figure"])]
    return figure["build"](np.random.default_rng(seed))


def report_profile(rows: list[dict], params: Mapping, out: Path) -> str:
    """Summary table + the figure's CSV artifact."""
    figure = FIGURES[int(params["figure"])]
    path = write_csv(Path(out) / f"{figure['csv']}.csv", rows)
    parts = []
    if rows:
        parts.append(summarize(
            rows, list(figure["group_keys"]), list(figure["value_keys"])
        ))
    else:
        parts.append("profile: the sweep produced no measurement rows")
    parts.append(f"\nwrote {path}")
    return "\n".join(parts)


SPEC = spec_registry.register(ExperimentSpec(
    name="profile",
    help="Section 3 profiling sweeps (Figs. 1-6)",
    params=(
        ParamSpec("figure", type=int, required=True,
                  choices=tuple(range(1, 7)),
                  help="which profiling figure to regenerate"),
    ),
    run_cell=run_profile_cell,
    report=report_profile,
    artifacts=lambda params: (f"{FIGURES[int(params['figure'])]['csv']}.csv",),
))
