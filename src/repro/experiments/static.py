"""Static scenarios (Figures 10-11).

For each constraint setting — lax (0.5 s, 0.4), medium (0.4 s, 0.5),
stringent (0.3 s, 0.6) — and each delta2 in {1, 2, ..., 64}, EdgeBOL
runs to convergence in a fixed context; we report the converged power
consumptions, the converged (normalised) cost against the offline
exhaustive-search oracle (Fig. 10), and the converged mean policies
(Fig. 11).

Normalisation: within each delta2 the cost is divided by the maximum
cost over the whole control grid at that delta2, making values
comparable across delta2 as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from repro.bandit.oracle import ExhaustiveOracle
from repro.core import EdgeBOL, EdgeBOLConfig
from repro.experiments import spec as spec_registry
from repro.experiments.recorder import write_csv
from repro.experiments.runner import run_agent
from repro.experiments.spec import ExperimentSpec, ParamSpec
from repro.testbed.config import (
    ControlPolicy,
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table
from repro.utils.rng import seed_tree

#: The three constraint settings of Figs. 10-11.
CONSTRAINT_SETTINGS = (
    ServiceConstraints(d_max_s=0.5, rho_min=0.4),   # lax
    ServiceConstraints(d_max_s=0.4, rho_min=0.5),   # medium
    ServiceConstraints(d_max_s=0.3, rho_min=0.6),   # stringent
)

#: Names of the Figs. 10-11 constraint settings (sweep-axis labels).
CONSTRAINT_NAMES = ("lax", "medium", "stringent")

#: Setting-name to constraint mapping used by the spec's cells.
CONSTRAINTS_BY_NAME = dict(zip(CONSTRAINT_NAMES, CONSTRAINT_SETTINGS))

#: delta2 sweep of Figs. 10-11.
DELTA2_VALUES = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass(frozen=True)
class StaticResult:
    """Converged operating point for one (constraints, delta2) cell."""

    d_max_s: float
    rho_min: float
    delta2: float
    cost: float
    normalized_cost: float
    oracle_cost: float
    oracle_normalized_cost: float
    server_power_w: float
    bs_power_w: float
    resolution: float
    airtime: float
    gpu_speed: float
    mcs_fraction: float

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def _grid_cost_extremes(
    env, weights: CostWeights, control_grid: np.ndarray
) -> tuple[float, float]:
    """(min, max) noise-free cost over the control grid."""
    costs = []
    for row in control_grid:
        obs = env.evaluate(ControlPolicy.from_array(row), noisy=False)
        costs.append(weights.cost(obs.server_power_w, obs.bs_power_w))
    return float(min(costs)), float(max(costs))


def run_static_cell(
    constraints: ServiceConstraints,
    delta2: float,
    n_periods: int = 150,
    tail_window: int = 30,
    mean_snr_db: float = 35.0,
    seed: int = 0,
    testbed: TestbedConfig | None = None,
    agent_config: EdgeBOLConfig | None = None,
) -> StaticResult:
    """One converged EdgeBOL run plus the oracle for the same cell.

    ``seed`` may be an int, a :class:`numpy.random.SeedSequence` node
    or a generator; the environment and oracle-environment generators
    are spawned from it as one seed tree.
    """
    testbed = testbed if testbed is not None else TestbedConfig()
    weights = CostWeights(1.0, delta2)
    grid = testbed.control_grid()
    env_rng, oracle_rng = seed_tree(seed, 2)

    env = static_scenario(mean_snr_db=mean_snr_db, rng=env_rng, config=testbed)
    agent = EdgeBOL(grid, constraints, weights, config=agent_config)
    log = run_agent(env, agent, n_periods)

    oracle_env = static_scenario(
        mean_snr_db=mean_snr_db, rng=oracle_rng, config=testbed
    )
    oracle = ExhaustiveOracle(oracle_env, weights, control_grid=grid)
    oracle_result = oracle.best(constraints, snrs_db=[mean_snr_db] * env.n_users)
    _, max_cost = _grid_cost_extremes(
        oracle_env, weights, grid[:: max(1, grid.shape[0] // 512)]
    )

    cost = log.tail_mean("cost", window=tail_window)
    return StaticResult(
        d_max_s=constraints.d_max_s,
        rho_min=constraints.rho_min,
        delta2=delta2,
        cost=cost,
        normalized_cost=cost / max_cost if max_cost else float("nan"),
        oracle_cost=oracle_result.cost,
        oracle_normalized_cost=(
            oracle_result.cost / max_cost if max_cost else float("nan")
        ),
        server_power_w=log.tail_mean("server_power_w", window=tail_window),
        bs_power_w=log.tail_mean("bs_power_w", window=tail_window),
        resolution=log.tail_mean("resolution", window=tail_window),
        airtime=log.tail_mean("airtime", window=tail_window),
        gpu_speed=log.tail_mean("gpu_speed", window=tail_window),
        mcs_fraction=log.tail_mean("mcs_fraction", window=tail_window),
    )


def run_static_sweep(
    constraint_settings: Sequence[ServiceConstraints] = CONSTRAINT_SETTINGS,
    delta2_values: Sequence[float] = DELTA2_VALUES,
    **kwargs,
) -> list[StaticResult]:
    """The full Figs. 10-11 sweep."""
    results = []
    for constraints in constraint_settings:
        for delta2 in delta2_values:
            results.append(run_static_cell(constraints, delta2, **kwargs))
    return results


# -- the ``static`` experiment spec -------------------------------------


def expand_static(params: Mapping) -> list[dict]:
    """Cross the three Figs. 10-11 constraint settings with delta2."""
    return [
        {"setting": name, "delta2": delta2}
        for name in CONSTRAINT_NAMES
        for delta2 in params["delta2"]
    ]


def run_static_spec_cell(params: Mapping, seed) -> list[dict]:
    """One (constraint setting, delta2) cell of the static sweep."""
    result = run_static_cell(
        CONSTRAINTS_BY_NAME[params["setting"]],
        float(params["delta2"]),
        n_periods=int(params["periods"]),
        seed=seed,
        testbed=TestbedConfig(n_levels=int(params["levels"])),
    )
    return [result.as_dict()]


def report_static(rows: list[dict], params: Mapping, out: Path) -> str:
    """Figs. 10-11 summary table plus ``static.csv``."""
    table = render_table(
        ["d_max", "rho_min", "delta2", "cost", "oracle", "server W",
         "BS W", "res", "airtime", "gpu", "mcs"],
        [
            [r["d_max_s"], r["rho_min"], r["delta2"], r["cost"],
             r["oracle_cost"], r["server_power_w"], r["bs_power_w"],
             r["resolution"], r["airtime"], r["gpu_speed"],
             r["mcs_fraction"]]
            for r in rows
        ],
    )
    path = write_csv(Path(out) / "static.csv", rows)
    return f"{table}\n\nwrote {path}"


SPEC = spec_registry.register(ExperimentSpec(
    name="static",
    help="Figs. 10-11 static sweep",
    params=(
        ParamSpec("delta2", type=float, default=(1.0, 4.0, 16.0, 64.0),
                  sweep=True, help="BS energy prices to sweep"),
        ParamSpec("periods", type=int, default=150, help="periods per cell"),
        ParamSpec("levels", type=int, default=9,
                  help="control-grid levels per dimension"),
    ),
    run_cell=run_static_spec_cell,
    report=report_static,
    expand=expand_static,
))
