"""Offline hyperparameter fitting on profiling data.

The paper fits each GP's kernel lengthscales and noise variance by
maximum likelihood on *prior data* collected before deployment, then
freezes them (Section 5, "Kernel selection").  This module implements
that pipeline: drive the testbed with random controls to collect a
profiling dataset, then hand it to
:meth:`repro.core.edgebol.EdgeBOL.fit_hyperparameters`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.edgebol import EdgeBOL
from repro.testbed.config import ControlPolicy
from repro.testbed.env import EdgeAIEnvironment
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class ProfilingDataset:
    """Joint inputs and KPI targets collected from the testbed."""

    inputs: np.ndarray          # (n, context_dim + 4)
    costs: np.ndarray           # priced with the weights used to collect
    delays: np.ndarray
    maps: np.ndarray

    def __len__(self) -> int:
        return int(self.inputs.shape[0])


def collect_profiling_data(
    env: EdgeAIEnvironment,
    agent: EdgeBOL,
    n_samples: int,
    rng=None,
    delay_clip_s: float = 1.5,
) -> ProfilingDataset:
    """Random-control sweep of the testbed (pre-production phase).

    Controls are drawn uniformly from the agent's grid; contexts evolve
    naturally as the environment steps.  Delays are clipped as the
    agent would clip them.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    generator = ensure_rng(rng)
    inputs, costs, delays, maps = [], [], [], []
    grid = agent.control_grid
    for _ in range(n_samples):
        context = env.observe_context()
        policy = ControlPolicy.from_array(
            grid[int(generator.integers(0, grid.shape[0]))]
        )
        observation = env.step(policy)
        inputs.append(agent._joint_point(context, policy))
        costs.append(
            agent.cost_weights.cost(
                observation.server_power_w, observation.bs_power_w
            )
        )
        delays.append(float(np.clip(observation.delay_s, 0.0, delay_clip_s)))
        maps.append(float(np.clip(observation.map_score, 0.0, 1.0)))
    return ProfilingDataset(
        inputs=np.array(inputs),
        costs=np.array(costs),
        delays=np.array(delays),
        maps=np.array(maps),
    )


def fit_from_profiling(
    agent: EdgeBOL,
    env: EdgeAIEnvironment,
    n_samples: int = 60,
    n_restarts: int = 1,
    rng=None,
) -> ProfilingDataset:
    """Collect profiling data and fit the agent's hyperparameters.

    Returns the dataset so callers can inspect or persist it (the paper
    released its profiling measurements for reproducibility).
    """
    dataset = collect_profiling_data(env, agent, n_samples, rng=rng)
    agent.fit_hyperparameters(
        dataset.inputs,
        dataset.costs,
        dataset.delays,
        dataset.maps,
        n_restarts=n_restarts,
        rng=rng,
    )
    return dataset
