"""Multi-cell control-plane experiment: EdgeBOL fleets on one SMO.

One :class:`~repro.oran.runtime.FleetRuntime` per sweep cell: ``cells``
independent EdgeBOL agents (one per simulated cell, each with its own
testbed environment seeded from the cell's seed tree) sharing a single
event-loop control plane — one bus, one A1 policy service, per-cell
E2/O1 planes under topic prefixes — while the load harness
(:mod:`repro.oran.load`) drives per-cell offered load and the alert
router watches constraint violations and degraded-mode stretches.

Reported rows are *deterministic* (tail costs, violation and alert
counts, mailbox accounting); wall-clock throughput deliberately stays
out of them — that is the control-plane benchmark's job
(``benchmarks/test_perf_control_plane.py``).

``--set supervise=1`` (with ``--set snapshot_every=N``) enables the
fleet supervisor (:mod:`repro.oran.supervisor`): under a ``--faults``
plan with ``cell``/``loop``/``snapshot``/``mailbox`` specs, crashed or
stalled cells are warm-restored from snapshots and their rows replayed
bit-identically; each row then reports ``recovered``/``restarts``/
``partial`` accounting.
"""

from __future__ import annotations

from collections.abc import Mapping
from pathlib import Path

from repro.core import EdgeBOL
from repro.experiments import spec as spec_registry
from repro.experiments.recorder import write_csv
from repro.experiments.spec import ExperimentSpec, ParamSpec
from repro.obs import runtime as obs
from repro.oran.bus import MAILBOX_POLICIES
from repro.oran.load import LOAD_PROFILES, FleetLoadModel
from repro.oran.runtime import FleetResult, FleetRuntime
from repro.telemetry import runtime as telemetry
from repro.testbed.config import CostWeights, ServiceConstraints, TestbedConfig
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table
from repro.utils.rng import seed_tree


#: Round-span sampling cadence used by ``--metrics`` runs: every 4th
#: period is traced, which keeps the span/envelope cost well inside the
#: ingestion-overhead budget (``BENCH_observability.json``) while still
#: yielding hundreds of stitched round trees per run.
METRICS_TRACE_EVERY = 4


class _SpanFeed:
    """Telemetry sink feeding a metric store everything but decisions.

    Decision records reach the store through the decision-sink path
    (where crash-replay ``suppress`` scoping applies); forwarding them
    here too would count every record as an ingest + duplicate pair.
    """

    def __init__(self, store) -> None:
        self.store = store

    def emit(self, record: dict) -> None:
        """Ingest one telemetry record (spans, metrics snapshots)."""
        if record.get("type") != "decision":
            self.store.ingest(record)

    def close(self) -> None:
        """No-op (the store owns its buffers)."""


class _TeeSink:
    """Fan decision records to the store and any pre-installed sink."""

    def __init__(self, *sinks) -> None:
        self.sinks = [sink for sink in sinks if sink is not None]

    def emit(self, record: dict) -> None:
        """Emit to every underlying sink."""
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        """No-op (underlying sinks are closed by their owners)."""


def run_fleet_cell_sim(
    n_cells: int,
    n_periods: int,
    seed,
    levels: int = 5,
    n_users: int = 1,
    load_profile: str = "diurnal",
    mailbox_policy: str = "block",
    batch_size: int = 1,
    make_agent=None,
    supervise: bool = False,
    snapshot_every: int | None = None,
    metrics=None,
    trace_rounds_every: int = 1,
) -> FleetResult:
    """Run one fleet of ``n_cells`` EdgeBOL agents for ``n_periods``.

    ``seed`` (int / SeedSequence) roots one tree: one node per cell's
    environment plus one for the load model, so fleets are reproducible
    and per-cell streams independent.  ``make_agent`` overrides agent
    construction (the benchmark substitutes a trivial controller to
    isolate control-plane overhead).  ``supervise`` enables the fleet
    supervisor (snapshot checkpoints every ``snapshot_every`` periods,
    crash/stall recovery, mailbox circuit breaker — see
    :mod:`repro.oran.supervisor`); faults arrive via the process fault
    plan (``--faults``).  ``metrics`` wires a
    :class:`~repro.fleetobs.store.MetricStore` through the runtime —
    per-period KPI records, alerts, decision records, supervision
    events and (``trace_rounds_every``-sampled) stitched round spans
    all land in the store without perturbing the run (rows stay
    bit-identical; asserted in ``tests/test_fleetobs.py``).
    """
    testbed = TestbedConfig(n_levels=levels)
    grid = testbed.control_grid()
    if make_agent is None:
        def make_agent():
            return EdgeBOL(grid, ServiceConstraints(), CostWeights(1.0, 1.0))
    rngs = seed_tree(seed, n_cells + 1)
    cells = [
        (
            static_scenario(n_users=n_users, rng=rngs[i], config=testbed),
            make_agent(),
        )
        for i in range(n_cells)
    ]
    load = FleetLoadModel(n_cells, profile=load_profile, seed=rngs[n_cells])
    runtime = FleetRuntime(
        cells,
        load_model=load,
        indication_policy=mailbox_policy,
        batch_size=batch_size,
        supervise=supervise,
        snapshot_every=snapshot_every,
        metrics=metrics,
        trace_rounds_every=trace_rounds_every,
    )
    if metrics is None:
        return runtime.run(n_periods)

    # Observability wiring: the store doubles as decision sink (teed
    # with any sink an outer scope installed) and telemetry sink (spans
    # + metrics snapshots).  Telemetry itself is NOT enabled here: the
    # runtime turns it on per sampled period (``trace_rounds_every``),
    # so interior spans and counters cost nothing on unsampled periods
    # and the exposition's counters reflect the sampled periods only.
    feed = _SpanFeed(metrics)
    telemetry.add_sink(feed)
    try:
        with obs.use(_TeeSink(metrics, obs.current_sink())):
            return runtime.run(n_periods)
    finally:
        telemetry.remove_sink(feed)


def _fleet_rows(result: FleetResult, params: Mapping) -> list[dict]:
    """One deterministic row per cell of one fleet run."""
    tail = max(1, result.n_periods // 4)
    boxes = [s for subs in result.mailbox_stats.values() for s in subs]
    dropped = sum(s["dropped"] for s in boxes)
    coalesced = sum(s["coalesced"] for s in boxes)
    rows = []
    for cell_id, log in result.logs.items():
        delay_viol, map_viol = log.violation_rates()
        partial = result.partial_cells.get(cell_id)
        recovery = result.recovery.get(cell_id, {})
        rows.append({
            "cells": result.n_cells,
            "cell": cell_id,
            "load": str(params["load"]),
            "policy": str(params["policy"]),
            "cost": log.tail_mean("cost", window=tail),
            "bs_power_w": log.tail_mean("bs_power_w", window=tail),
            "server_power_w": log.tail_mean("server_power_w", window=tail),
            "delay_violation_rate": delay_viol,
            "map_violation_rate": map_viol,
            "decisions": result.n_periods,
            "rows": len(log),
            "partial": partial is not None,
            "missed": 0 if partial is None else int(partial["missed"]),
            "recovered": bool(recovery.get("recovered", False)),
            "restarts": int(recovery.get("restarts", 0)),
            "breaker_trips": int(recovery.get("breaker_trips", 0)),
            "alerts_raised": result.alert_counts["raised"],
            "alerts_suppressed": result.alert_counts["suppressed"],
            "bus_dropped": dropped,
            "bus_coalesced": coalesced,
            "loop_steps": result.loop_steps,
        })
    return rows


def _write_metrics_artifacts(store, metrics_dir: Path, n_cells: int) -> None:
    """Dump one fleet run's store: ``*_metrics.jsonl`` + exposition."""
    from repro.telemetry.export import prometheus_exposition

    stem = f"cells{n_cells:03d}_metrics"
    store.dump_jsonl(metrics_dir / f"{stem}.jsonl")
    exposition = (
        prometheus_exposition(telemetry.metrics_snapshot())
        + prometheus_exposition(store.metrics_snapshot())
    )
    (metrics_dir / f"{stem}.prom").write_text(exposition)


def run_fleet_spec_cell(params: Mapping, seed) -> list[dict]:
    """One fleet size of the sweep: run the fleet, emit per-cell rows.

    With ``--metrics DIR`` a :class:`~repro.fleetobs.store.MetricStore`
    rides along and the run dumps ``DIR/cellsNNN_metrics.jsonl``
    (render with ``repro fleet-status``) plus a Prometheus-style
    ``.prom`` exposition of the run's metric registry and the store's
    own accounting.  Reported rows are byte-identical with or without
    the store (CI gates on it).
    """
    metrics_dir = str(params.get("metrics", "") or "")
    store = None
    if metrics_dir:
        from repro.fleetobs import MetricStore

        store = MetricStore()
        telemetry.reset_metrics()
    result = run_fleet_cell_sim(
        n_cells=int(params["cells"]),
        n_periods=int(params["periods"]),
        seed=seed,
        levels=int(params["levels"]),
        n_users=int(params["users"]),
        load_profile=str(params["load"]),
        mailbox_policy=str(params["policy"]),
        batch_size=int(params["batch"]),
        supervise=bool(int(params.get("supervise", 0))),
        snapshot_every=int(params.get("snapshot_every", 10)),
        metrics=store,
        trace_rounds_every=METRICS_TRACE_EVERY,
    )
    if store is not None:
        directory = Path(metrics_dir)
        directory.mkdir(parents=True, exist_ok=True)
        _write_metrics_artifacts(store, directory, result.n_cells)
    return _fleet_rows(result, params)


def report_fleet(rows: list[dict], params: Mapping, out: Path) -> str:
    """Fleet summary table plus ``fleet.csv``."""
    table = render_table(
        ["cells", "cell", "load", "cost", "BS W", "delay viol",
         "mAP viol", "alerts", "suppressed", "dropped"],
        [
            [r["cells"], r["cell"], r["load"], r["cost"], r["bs_power_w"],
             r["delay_violation_rate"], r["map_violation_rate"],
             r["alerts_raised"], r["alerts_suppressed"], r["bus_dropped"]]
            for r in rows
        ],
    )
    path = write_csv(Path(out) / "fleet.csv", rows)
    return f"{table}\n\nwrote {path}"


def expand_fleet(params: Mapping) -> list[dict]:
    """One cell per fleet size."""
    return [{"cells": int(n)} for n in params["cells"]]


SPEC = spec_registry.register(ExperimentSpec(
    name="fleet",
    help="multi-cell event-loop control plane under load",
    params=(
        ParamSpec("cells", type=int, default=(1, 8), sweep=True,
                  help="fleet sizes to sweep"),
        ParamSpec("periods", type=int, default=40,
                  help="orchestration periods per fleet"),
        ParamSpec("levels", type=int, default=5,
                  help="control-grid levels per dimension"),
        ParamSpec("users", type=int, default=1, help="users per cell"),
        ParamSpec("load", type=str, default="diurnal",
                  choices=LOAD_PROFILES, help="fleet load profile"),
        ParamSpec("policy", type=str, default="block",
                  choices=MAILBOX_POLICIES,
                  help="E2 indication mailbox backpressure policy"),
        ParamSpec("batch", type=int, default=1,
                  help="E2 indication batch size"),
        ParamSpec("supervise", type=int, default=0,
                  help="1 = enable the fleet supervisor "
                       "(snapshots, crash/stall recovery, breaker)"),
        ParamSpec("snapshot_every", type=int, default=10,
                  help="supervisor checkpoint cadence in periods"),
        ParamSpec("metrics", type=str, default="",
                  help="directory for fleet metrics artifacts: per-run "
                       "metrics JSONL (render with 'repro fleet-status') "
                       "and Prometheus-style exposition (empty = off)"),
    ),
    run_cell=run_fleet_spec_cell,
    report=report_fleet,
    expand=expand_fleet,
))
