"""Convergence evaluation (Fig. 9).

A single static context (mean SNR 35 dB), delta1 = 1 mu/W,
rho_min = 0.5, d_max = 0.4 s; EdgeBOL runs 150 periods for each
delta2 in {1, 2, 4, 8, 16, 32, 64}, repeated over independent seeds.
The figure plots the median (10th/90th band) of cost, mAP, delay and
both power consumptions over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from repro.core import EdgeBOL, EdgeBOLConfig
from repro.experiments import spec as spec_registry
from repro.experiments.recorder import RunLog, write_csv
from repro.experiments.runner import run_agent
from repro.experiments.spec import ExperimentSpec, ParamSpec
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_chart
from repro.utils.stats import percentile_band

#: The delta2 sweep of Fig. 9.
DELTA2_VALUES = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass(frozen=True)
class ConvergenceSetting:
    """Parameters of the Fig. 9 scenario."""

    mean_snr_db: float = 35.0
    delta1: float = 1.0
    d_max_s: float = 0.4
    rho_min: float = 0.5
    n_periods: int = 150
    n_repetitions: int = 10
    n_levels: int = 11


def run_convergence(
    delta2: float,
    setting: ConvergenceSetting | None = None,
    seed: int = 0,
    agent_config: EdgeBOLConfig | None = None,
) -> RunLog:
    """One EdgeBOL run for a given delta2."""
    setting = setting if setting is not None else ConvergenceSetting()
    testbed = TestbedConfig(n_levels=setting.n_levels)
    env = static_scenario(
        mean_snr_db=setting.mean_snr_db, rng=seed, config=testbed
    )
    agent = EdgeBOL(
        testbed.control_grid(),
        ServiceConstraints(setting.d_max_s, setting.rho_min),
        CostWeights(setting.delta1, delta2),
        config=agent_config,
    )
    return run_agent(env, agent, setting.n_periods, track_safe_set=True)


def run_convergence_sweep(
    delta2_values: Sequence[float] = DELTA2_VALUES,
    setting: ConvergenceSetting | None = None,
    agent_config: EdgeBOLConfig | None = None,
) -> dict[float, list[RunLog]]:
    """All repetitions for every delta2 (the full Fig. 9 data)."""
    setting = setting if setting is not None else ConvergenceSetting()
    results: dict[float, list[RunLog]] = {}
    for delta2 in delta2_values:
        results[delta2] = [
            run_convergence(
                delta2, setting=setting, seed=seed, agent_config=agent_config
            )
            for seed in range(setting.n_repetitions)
        ]
    return results


def expand_convergence(params: Mapping) -> list[dict]:
    """One cell per (delta2, repetition) — repetitions parallelise too."""
    return [
        {"delta2": delta2, "rep": rep}
        for delta2 in params["delta2"]
        for rep in range(int(params["repetitions"]))
    ]


def run_convergence_cell(params: Mapping, seed) -> list[dict]:
    """One repetition of one delta2 (a single EdgeBOL run)."""
    setting = ConvergenceSetting(
        n_periods=int(params["periods"]),
        n_repetitions=1,
        n_levels=int(params["levels"]),
    )
    log = run_convergence(float(params["delta2"]), setting=setting, seed=seed)
    return [
        {"delta2": float(params["delta2"]), "rep": int(params["rep"]),
         "t": t, "cost": cost}
        for t, cost in enumerate(log.cost)
    ]


def report_convergence(rows: list[dict], params: Mapping, out: Path) -> str:
    """Per-delta2 median/p10/p90 bands, charts and ``convergence.csv``."""
    parts = []
    band_rows = []
    for delta2 in params["delta2"]:
        series = {}
        for row in rows:
            if row["delta2"] == delta2:
                series.setdefault(row["rep"], []).append(
                    (row["t"], row["cost"])
                )
        if not series:
            continue
        runs = np.array([
            [cost for _, cost in sorted(points)]
            for _, points in sorted(series.items())
        ], dtype=float)
        median, low, high = percentile_band(runs)
        for t in range(median.size):
            band_rows.append({
                "delta2": delta2, "t": t, "median": median[t],
                "p10": low[t], "p90": high[t],
            })
        parts.append(render_chart(
            {"median cost": median}, title=f"convergence, delta2={delta2:g}",
        ))
    path = write_csv(Path(out) / "convergence.csv", band_rows)
    parts.append(f"\nwrote {path}")
    return "\n".join(parts)


SPEC = spec_registry.register(ExperimentSpec(
    name="convergence",
    help="Fig. 9 convergence sweep",
    params=(
        ParamSpec("delta2", type=float, default=(1.0, 8.0, 64.0), sweep=True,
                  help="BS energy prices to sweep"),
        ParamSpec("periods", type=int, default=150, help="periods per run"),
        ParamSpec("repetitions", type=int, default=3,
                  help="independent repetitions per delta2"),
        ParamSpec("levels", type=int, default=9,
                  help="control-grid levels per dimension"),
    ),
    run_cell=run_convergence_cell,
    report=report_convergence,
    expand=expand_convergence,
))


def convergence_time(log: RunLog, tolerance: float = 0.1,
                     window: int = 10) -> int:
    """First period from which the cost stays within ``tolerance`` of
    its final tail mean (the paper reports ~25 periods)."""
    final = log.tail_mean("cost", window=30)
    if final != final:  # NaN
        return len(log)
    threshold = abs(final) * tolerance
    costs = log.cost
    for t in range(len(costs) - window):
        segment = costs[t:t + window]
        if all(abs(c - final) <= threshold for c in segment):
            return t
    return len(costs)
