"""Convergence evaluation (Fig. 9).

A single static context (mean SNR 35 dB), delta1 = 1 mu/W,
rho_min = 0.5, d_max = 0.4 s; EdgeBOL runs 150 periods for each
delta2 in {1, 2, 4, 8, 16, 32, 64}, repeated over independent seeds.
The figure plots the median (10th/90th band) of cost, mAP, delay and
both power consumptions over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core import EdgeBOL, EdgeBOLConfig
from repro.experiments.recorder import RunLog
from repro.experiments.runner import run_agent
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario

#: The delta2 sweep of Fig. 9.
DELTA2_VALUES = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass(frozen=True)
class ConvergenceSetting:
    """Parameters of the Fig. 9 scenario."""

    mean_snr_db: float = 35.0
    delta1: float = 1.0
    d_max_s: float = 0.4
    rho_min: float = 0.5
    n_periods: int = 150
    n_repetitions: int = 10
    n_levels: int = 11


def run_convergence(
    delta2: float,
    setting: ConvergenceSetting | None = None,
    seed: int = 0,
    agent_config: EdgeBOLConfig | None = None,
) -> RunLog:
    """One EdgeBOL run for a given delta2."""
    setting = setting if setting is not None else ConvergenceSetting()
    testbed = TestbedConfig(n_levels=setting.n_levels)
    env = static_scenario(
        mean_snr_db=setting.mean_snr_db, rng=seed, config=testbed
    )
    agent = EdgeBOL(
        testbed.control_grid(),
        ServiceConstraints(setting.d_max_s, setting.rho_min),
        CostWeights(setting.delta1, delta2),
        config=agent_config,
    )
    return run_agent(env, agent, setting.n_periods, track_safe_set=True)


def run_convergence_sweep(
    delta2_values: Sequence[float] = DELTA2_VALUES,
    setting: ConvergenceSetting | None = None,
    agent_config: EdgeBOLConfig | None = None,
) -> dict[float, list[RunLog]]:
    """All repetitions for every delta2 (the full Fig. 9 data)."""
    setting = setting if setting is not None else ConvergenceSetting()
    results: dict[float, list[RunLog]] = {}
    for delta2 in delta2_values:
        results[delta2] = [
            run_convergence(
                delta2, setting=setting, seed=seed, agent_config=agent_config
            )
            for seed in range(setting.n_repetitions)
        ]
    return results


def convergence_time(log: RunLog, tolerance: float = 0.1,
                     window: int = 10) -> int:
    """First period from which the cost stays within ``tolerance`` of
    its final tail mean (the paper reports ~25 periods)."""
    final = log.tail_mean("cost", window=30)
    if final != final:  # NaN
        return len(log)
    threshold = abs(final) * tolerance
    costs = log.cost
    for t in range(len(costs) - window):
        segment = costs[t:t + window]
        if all(abs(c - final) <= threshold for c in segment):
            return t
    return len(costs)
