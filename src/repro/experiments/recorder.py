"""Run logs and text/CSV rendering for experiments."""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping, Sequence

import numpy as np

from repro.testbed.config import ControlPolicy
from repro.testbed.env import TestbedObservation
from repro.utils.ascii import render_chart, render_table


@dataclass
class RunLog:
    """Per-period trajectory of one learning run.

    All lists are index-aligned; policies store the four normalised
    control coordinates.  ``engine_stats`` carries one end-of-run
    snapshot of the agent's :class:`~repro.core.posterior.EngineStats`
    counters (kernel evaluations, cache hits, rebuilds, wall time) when
    the agent exposes a posterior engine; ``telemetry`` carries one
    end-of-run :func:`repro.telemetry.metrics_snapshot` when the run
    executed with telemetry enabled; ``robustness`` carries the agent's
    quarantine/degradation counters
    (:meth:`~repro.core.edgebol.EdgeBOL.robustness_stats`) when the
    agent exposes them — see ``docs/ROBUSTNESS.md``; ``decisions``
    carries the decision tracer's run-level roll-up
    (:meth:`repro.obs.decision.DecisionTracer.summary`) when the run
    was traced — see ``docs/OBSERVABILITY.md``.

    Attributes
    ----------
    cost:
        Realised cost ``u_t = delta1 p_s + delta2 p_b`` per period
        (eq. 1), in weighted watts.
    delay_s:
        Worst-user service delay per period, seconds (PI 1).
    map_score:
        Worst-user detection accuracy per period, mAP in [0, 1] (PI 2).
    server_power_w, bs_power_w:
        Server / BS power draws, watts (PIs 3-4, the eq. 1 terms).
    safe_set_size:
        |S_t| from eq. 8 (−1 when the agent exposes no safe set).
    snr_db:
        Mean user SNR during the period, dB (the context driver).
    resolution, airtime, gpu_speed, mcs_fraction:
        The four applied controls in normalised [0, 1] coordinates
        (Policies 1-4, the ``x_t`` of Algorithm 1).
    d_max_s, rho_min:
        Constraint thresholds active that period: delay bound in
        seconds and mAP floor in [0, 1] (problem 2).
    """

    cost: list[float] = field(default_factory=list)
    delay_s: list[float] = field(default_factory=list)
    map_score: list[float] = field(default_factory=list)
    server_power_w: list[float] = field(default_factory=list)
    bs_power_w: list[float] = field(default_factory=list)
    safe_set_size: list[int] = field(default_factory=list)
    snr_db: list[float] = field(default_factory=list)
    resolution: list[float] = field(default_factory=list)
    airtime: list[float] = field(default_factory=list)
    gpu_speed: list[float] = field(default_factory=list)
    mcs_fraction: list[float] = field(default_factory=list)
    d_max_s: list[float] = field(default_factory=list)
    rho_min: list[float] = field(default_factory=list)
    engine_stats: dict | None = None
    telemetry: dict | None = None
    robustness: dict | None = None
    decisions: dict | None = None

    def append(
        self,
        cost: float,
        policy: ControlPolicy,
        observation: TestbedObservation,
        safe_set_size: int | None = None,
        snr_db: float = float("nan"),
        d_max_s: float = float("nan"),
        rho_min: float = float("nan"),
    ) -> None:
        """Record one period (units as documented on the class fields)."""
        self.cost.append(float(cost))
        self.delay_s.append(float(observation.delay_s))
        self.map_score.append(float(observation.map_score))
        self.server_power_w.append(float(observation.server_power_w))
        self.bs_power_w.append(float(observation.bs_power_w))
        self.safe_set_size.append(-1 if safe_set_size is None else int(safe_set_size))
        self.snr_db.append(float(snr_db))
        arr = policy.to_array()
        self.resolution.append(float(arr[0]))
        self.airtime.append(float(arr[1]))
        self.gpu_speed.append(float(arr[2]))
        self.mcs_fraction.append(float(arr[3]))
        self.d_max_s.append(float(d_max_s))
        self.rho_min.append(float(rho_min))

    def __len__(self) -> int:
        return len(self.cost)

    def tail_mean(self, field_name: str, window: int = 30) -> float:
        """Mean of the final ``window`` entries of one series.

        The "converged" statistic quoted for Figs. 10-12: NaN entries
        are dropped; the result keeps the series' own unit.
        """
        values = np.asarray(getattr(self, field_name), dtype=float)
        if values.size == 0:
            return float("nan")
        tail = values[-window:]
        finite = tail[np.isfinite(tail)]
        return float(finite.mean()) if finite.size else float("nan")

    def violation_rates(self, burn_in: int = 0) -> tuple[float, float]:
        """(delay, mAP) constraint violation rates after ``burn_in``.

        Fractions in [0, 1] of periods where ``delay_s > d_max_s`` or
        ``map_score < rho_min`` — the problem-2 constraints — among
        periods ``t >= burn_in``.
        """
        delays = np.asarray(self.delay_s[burn_in:])
        maps = np.asarray(self.map_score[burn_in:])
        d_max = np.asarray(self.d_max_s[burn_in:])
        rho = np.asarray(self.rho_min[burn_in:])
        if delays.size == 0:
            return float("nan"), float("nan")
        return (
            float(np.mean(delays > d_max)),
            float(np.mean(maps < rho)),
        )

    def as_rows(self, **extra) -> list[dict]:
        """One JSON-serialisable dict per period (sweep-cell layout).

        The row schema matches :meth:`as_dict` columns; ``extra``
        key/values are prepended to every row (e.g. the cell's sweep
        coordinates), which is how cells ship trajectories across the
        process boundary to the sweep engine.
        """
        columns = self.as_dict()
        names = list(columns)
        return [
            {**extra, **{name: columns[name][t] for name in names}}
            for t in range(len(self))
        ]

    @classmethod
    def from_rows(cls, rows: "Sequence[Mapping]") -> "RunLog":
        """Rebuild a log from :meth:`as_rows` output (extras ignored)."""
        log = cls()
        fields = [name for name in log.as_dict() if name != "t"]
        alias = {"map": "map_score"}
        for row in rows:
            for name in fields:
                getattr(log, alias.get(name, name)).append(row[name])
        return log

    def as_dict(self) -> dict[str, list]:
        """Column-name to series mapping (CSV layout)."""
        return {
            "t": list(range(len(self.cost))),
            "cost": self.cost,
            "delay_s": self.delay_s,
            "map": self.map_score,
            "server_power_w": self.server_power_w,
            "bs_power_w": self.bs_power_w,
            "safe_set_size": self.safe_set_size,
            "snr_db": self.snr_db,
            "resolution": self.resolution,
            "airtime": self.airtime,
            "gpu_speed": self.gpu_speed,
            "mcs_fraction": self.mcs_fraction,
            "d_max_s": self.d_max_s,
            "rho_min": self.rho_min,
        }


def write_csv(path: "str | Path", rows: "Sequence[Mapping] | Mapping[str, Sequence]") -> Path:
    """Write experiment output as CSV.

    Accepts either a list of row dicts or a column mapping.  Parent
    directories are created.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if isinstance(rows, Mapping):
        columns = list(rows)
        length = len(next(iter(rows.values()), []))
        records = [
            {col: rows[col][i] for col in columns} for i in range(length)
        ]
    else:
        records = [dict(r) for r in rows]
        columns = list(records[0]) if records else []
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        writer.writerows(records)
    return path


def render_runlog(log: RunLog, title: str = "run") -> str:
    """Text rendering of the headline series of one run."""
    parts = [
        render_chart({"cost": log.cost}, title=f"{title}: cost u_t"),
        render_chart(
            {"delay": log.delay_s, "d_max": log.d_max_s},
            title=f"{title}: service delay d_t",
        ),
        render_chart(
            {"mAP": log.map_score, "rho_min": log.rho_min},
            title=f"{title}: mAP rho_t",
        ),
    ]
    summary_rows = [
        ["tail mean cost", log.tail_mean("cost")],
        ["tail mean delay (s)", log.tail_mean("delay_s")],
        ["tail mean mAP", log.tail_mean("map_score")],
        ["tail mean server power (W)", log.tail_mean("server_power_w")],
        ["tail mean BS power (W)", log.tail_mean("bs_power_w")],
    ]
    parts.append(render_table(["metric", "value"], summary_rows))
    if log.engine_stats:
        stats_rows = [[key, value] for key, value in log.engine_stats.items()]
        parts.append(render_table(["engine counter", "value"], stats_rows))
    if log.robustness and any(log.robustness.values()):
        parts.append(render_table(
            ["robustness counter", "value"],
            [[key, value] for key, value in log.robustness.items()],
        ))
    if log.decisions:
        rows = []
        for key, value in log.decisions.items():
            if isinstance(value, dict):
                value = ", ".join(
                    f"{head}={cov:.3f}" if isinstance(cov, float) else
                    f"{head}={cov}"
                    for head, cov in value.items()
                )
            rows.append([key, value if value is not None else "n/a"])
        parts.append(render_table(["decision-trace stat", "value"], rows))
    if log.telemetry:
        counters = log.telemetry.get("counters") or {}
        if counters:
            parts.append(render_table(
                ["telemetry counter", "value"],
                [[key, value] for key, value in counters.items()],
            ))
    return "\n\n".join(parts)
