"""Tariff-tracking experiment (extension of Section 4.3).

The paper motivates the cost weights with time-varying energy prices
(day/night bands, solar-powered cells) but evaluates only static
weights.  This experiment closes that gap: EdgeBOL runs under a
:class:`repro.testbed.tariffs.EnergyTariff` whose weights switch at
runtime, comparing

* the **coupled** agent (the paper's formulation: one GP on the scalar
  cost, whose historical observations embed stale prices), against
* the **decoupled** extension (separate GPs on server and BS power;
  price changes recompose the cost LCB instantly).

The headline metric is the *price-weighted regret* versus the oracle
that knows the tariff: the decoupled agent tracks each price band
near-instantly while the coupled agent drags stale-cost data along.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping
from pathlib import Path

import numpy as np

from repro.core import EdgeBOL, EdgeBOLConfig
from repro.experiments import spec as spec_registry
from repro.experiments.recorder import RunLog, write_csv
from repro.experiments.spec import ExperimentSpec, ParamSpec
from repro.obs import runtime as obs
from repro.testbed.config import ServiceConstraints, TestbedConfig
from repro.testbed.env import EdgeAIEnvironment
from repro.testbed.scenarios import static_scenario
from repro.testbed.tariffs import DayNightTariff, EnergyTariff
from repro.utils.ascii import render_table


@dataclass(frozen=True)
class TariffSetting:
    """Parameters of the tariff-tracking scenario."""

    n_periods: int = 300
    mean_snr_db: float = 35.0
    d_max_s: float = 0.5
    rho_min: float = 0.4
    n_levels: int = 9


def default_tariff(setting: TariffSetting) -> EnergyTariff:
    """Two day/night cycles across the run."""
    return DayNightTariff(periods_per_day=setting.n_periods // 2)


def run_tariff_tracking(
    decoupled: bool,
    setting: TariffSetting | None = None,
    tariff: EnergyTariff | None = None,
    seed: int = 0,
) -> RunLog:
    """One agent run under a time-varying tariff.

    The logged ``cost`` column is priced with the tariff weights active
    at each period.
    """
    setting = setting if setting is not None else TariffSetting()
    tariff = tariff if tariff is not None else default_tariff(setting)
    testbed = TestbedConfig(n_levels=setting.n_levels)
    env: EdgeAIEnvironment = static_scenario(
        mean_snr_db=setting.mean_snr_db, rng=seed, config=testbed
    )
    agent = EdgeBOL(
        testbed.control_grid(),
        ServiceConstraints(setting.d_max_s, setting.rho_min),
        tariff.weights_at(0),
        config=EdgeBOLConfig(decoupled_power_gps=decoupled),
    )
    log = RunLog()
    active = tariff.weights_at(0)
    tracer = obs.make_tracer(agent)
    if tracer is not None:
        agent.attach_tracer(tracer)
    try:
        for t in range(setting.n_periods):
            weights = tariff.weights_at(t)
            if weights != active:
                agent.set_cost_weights(weights)
                active = weights
            snr = float(np.mean(env.current_snrs_db))
            context = env.observe_context()
            policy = agent.select(context)
            observation = env.step(policy)
            cost = agent.observe(context, policy, observation)
            log.append(
                cost=cost,
                policy=policy,
                observation=observation,
                safe_set_size=agent.last_safe_set_size,
                snr_db=snr,
                d_max_s=setting.d_max_s,
                rho_min=setting.rho_min,
            )
    finally:
        if tracer is not None:
            agent.attach_tracer(None)
    if tracer is not None:
        log.decisions = tracer.summary()
    return log


def band_costs(log: RunLog, tariff: EnergyTariff, setting: TariffSetting):
    """Mean cost per tariff band, excluding the first (cold-start) band."""
    bands: dict[tuple, list[float]] = {}
    order: list[tuple] = []
    for t, cost in enumerate(log.cost):
        weights = tariff.weights_at(t)
        key = (weights.delta1, weights.delta2)
        if key not in bands:
            bands[key] = []
            order.append(key)
        bands[key].append(cost)
    return {key: float(np.mean(values)) for key, values in bands.items()}


# -- the ``tariff`` experiment spec -------------------------------------


def expand_tariff(params: Mapping) -> list[dict]:
    """One cell per formulation: coupled vs decoupled power GPs."""
    return [{"decoupled": False}, {"decoupled": True}]


def run_tariff_cell(params: Mapping, seed) -> list[dict]:
    """One agent run under the day/night tariff, summarised per band."""
    setting = TariffSetting(
        n_periods=int(params["periods"]), n_levels=int(params["levels"])
    )
    tariff = default_tariff(setting)
    log = run_tariff_tracking(
        bool(params["decoupled"]), setting=setting, tariff=tariff, seed=seed
    )
    return [
        {"decoupled": bool(params["decoupled"]), "delta1": d1, "delta2": d2,
         "mean_cost": cost}
        for (d1, d2), cost in band_costs(log, tariff, setting).items()
    ]


def report_tariff(rows: list[dict], params: Mapping, out: Path) -> str:
    """Per-band cost table plus ``tariff.csv``."""
    table = render_table(
        ["decoupled", "delta1", "delta2", "mean cost"],
        [[r["decoupled"], r["delta1"], r["delta2"], r["mean_cost"]]
         for r in rows],
    )
    path = write_csv(Path(out) / "tariff.csv", rows)
    return f"{table}\n\nwrote {path}"


SPEC = spec_registry.register(ExperimentSpec(
    name="tariff",
    help="day/night tariff tracking (extension)",
    params=(
        ParamSpec("periods", type=int, default=300, help="periods per run"),
        ParamSpec("levels", type=int, default=9,
                  help="control-grid levels per dimension"),
    ),
    run_cell=run_tariff_cell,
    report=report_tariff,
    expand=expand_tariff,
))
