"""Dynamic contexts (Figure 13).

Section 6.5: an untrained EdgeBOL deployed in an environment whose SNR
swings between 5 and 38 dB, with delta1 = 1 and delta2 = 8.  The
figure tracks the SNR context, the safe-set size |S_t| over time, and
the four policy components; knowledge transfers across similar
contexts, so convergence takes only a few context cycles.

The |S_t| series comes from the per-period
:class:`~repro.core.posterior.SurrogateEngine` sweep inside
:meth:`EdgeBOL.select` — because contexts are CQI-quantised, the
sweeping SNR revisits a small set of joint grids and the engine's
per-context caches keep serving rank-1 extensions across cycles.  The
returned :class:`RunLog` carries the engine's cache/timing counters in
``engine_stats``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping
from pathlib import Path

from repro.core import EdgeBOL, EdgeBOLConfig
from repro.experiments import spec as spec_registry
from repro.experiments.recorder import RunLog, write_csv
from repro.experiments.runner import run_agent
from repro.experiments.spec import ExperimentSpec, ParamSpec
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import dynamic_scenario
from repro.utils.ascii import render_chart


@dataclass(frozen=True)
class DynamicSetting:
    """Parameters of the Fig. 13 scenario."""

    low_snr_db: float = 5.0
    high_snr_db: float = 38.0
    cycle_period: int = 50
    n_periods: int = 150
    delta1: float = 1.0
    delta2: float = 8.0
    d_max_s: float = 0.4
    rho_min: float = 0.5


def run_dynamic(
    setting: DynamicSetting | None = None,
    seed: int = 0,
    testbed: TestbedConfig | None = None,
    agent_config: EdgeBOLConfig | None = None,
) -> RunLog:
    """One untrained EdgeBOL run under fast context dynamics.

    The returned log includes the Fig.-13 |S_t| series and the
    posterior engine's ``engine_stats`` snapshot.
    """
    setting = setting if setting is not None else DynamicSetting()
    testbed = testbed if testbed is not None else TestbedConfig()
    env = dynamic_scenario(
        low_db=setting.low_snr_db,
        high_db=setting.high_snr_db,
        period=setting.cycle_period,
        length=setting.n_periods,
        config=testbed,
        rng=seed,
    )
    agent = EdgeBOL(
        testbed.control_grid(),
        ServiceConstraints(setting.d_max_s, setting.rho_min),
        CostWeights(setting.delta1, setting.delta2),
        config=agent_config,
    )
    return run_agent(env, agent, setting.n_periods, track_safe_set=True)


# -- the ``dynamic`` experiment spec ------------------------------------


def run_dynamic_cell(params: Mapping, seed) -> list[dict]:
    """The single Fig. 13 run (one cell)."""
    log = run_dynamic(
        DynamicSetting(n_periods=int(params["periods"])),
        seed=seed,
        testbed=TestbedConfig(n_levels=int(params["levels"])),
    )
    return log.as_rows()


def report_dynamic(rows: list[dict], params: Mapping, out: Path) -> str:
    """Fig. 13 context/safe-set charts plus ``dynamic.csv``."""
    parts = [
        render_chart({"SNR dB": [r["snr_db"] for r in rows]}, title="context"),
        render_chart(
            {"|S_t|": [r["safe_set_size"] for r in rows]},
            title="safe-set size",
        ),
    ]
    path = write_csv(Path(out) / "dynamic.csv", rows)
    parts.append(f"\nwrote {path}")
    return "\n".join(parts)


SPEC = spec_registry.register(ExperimentSpec(
    name="dynamic",
    help="Fig. 13 dynamic contexts",
    params=(
        ParamSpec("periods", type=int, default=150, help="periods to run"),
        ParamSpec("levels", type=int, default=9,
                  help="control-grid levels per dimension"),
    ),
    run_cell=run_dynamic_cell,
    report=report_dynamic,
))
