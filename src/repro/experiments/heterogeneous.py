"""Heterogeneous users (Figure 12).

Section 6.4: N users where user 1 averages SNR 30 dB and each
additional user has 20% lower SNR; constraints d_max = 2 s and
rho_min = 0.6 so even the 6-user case is feasible.  EdgeBOL (driven by
the *aggregated* CQI-statistics context) is trained, then its converged
cost is compared against the offline oracle for delta2 in {1, 2, 4, 8}.
The paper reports a gap within ~2% and constraint satisfaction 0.98.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.bandit.oracle import ExhaustiveOracle
from repro.core import EdgeBOL, EdgeBOLConfig
from repro.experiments import spec as spec_registry
from repro.experiments.recorder import write_csv
from repro.experiments.runner import run_agent
from repro.experiments.spec import ExperimentSpec, ParamSpec
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import heterogeneous_scenario
from repro.utils.ascii import render_table
from repro.utils.rng import seed_tree

#: User counts on the x-axis of Fig. 12.
USER_COUNTS = (2, 4, 6)

#: delta2 panels of Fig. 12.
DELTA2_VALUES = (1.0, 2.0, 4.0, 8.0)

#: The paper's Fig. 12 constraint setting.
CONSTRAINTS = ServiceConstraints(d_max_s=2.0, rho_min=0.6)


@dataclass(frozen=True)
class HeterogeneousResult:
    """EdgeBOL-vs-oracle comparison for one (n_users, delta2) cell."""

    n_users: int
    delta2: float
    edgebol_cost: float
    oracle_cost: float
    gap: float
    delay_violation_rate: float
    map_violation_rate: float

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def run_heterogeneous_cell(
    n_users: int,
    delta2: float,
    n_periods: int = 150,
    tail_window: int = 30,
    seed: int = 0,
    testbed: TestbedConfig | None = None,
    agent_config: EdgeBOLConfig | None = None,
) -> HeterogeneousResult:
    """Train EdgeBOL with N heterogeneous users and compare to oracle.

    ``seed`` may be an int, a :class:`numpy.random.SeedSequence` node
    or a generator; the environment and oracle-environment generators
    are spawned from it as one seed tree.
    """
    testbed = testbed if testbed is not None else TestbedConfig()
    weights = CostWeights(1.0, delta2)
    grid = testbed.control_grid()
    env_rng, oracle_rng = seed_tree(seed, 2)

    env = heterogeneous_scenario(n_users=n_users, rng=env_rng, config=testbed)
    agent = EdgeBOL(grid, CONSTRAINTS, weights, config=agent_config)
    log = run_agent(env, agent, n_periods)
    burn_in = min(n_periods // 4, max(n_periods - tail_window, 0))
    delay_viol, map_viol = log.violation_rates(burn_in=burn_in)

    oracle_env = heterogeneous_scenario(
        n_users=n_users, rng=oracle_rng, config=testbed
    )
    snrs = [30.0 * (0.8**i) for i in range(n_users)]
    oracle = ExhaustiveOracle(oracle_env, weights, control_grid=grid)
    oracle_result = oracle.best(CONSTRAINTS, snrs_db=snrs)

    cost = log.tail_mean("cost", window=tail_window)
    gap = (cost - oracle_result.cost) / oracle_result.cost if oracle_result.cost else float("nan")
    return HeterogeneousResult(
        n_users=n_users,
        delta2=delta2,
        edgebol_cost=cost,
        oracle_cost=oracle_result.cost,
        gap=gap,
        delay_violation_rate=delay_viol,
        map_violation_rate=map_viol,
    )


def run_heterogeneous_sweep(
    user_counts: Sequence[int] = USER_COUNTS,
    delta2_values: Sequence[float] = DELTA2_VALUES,
    **kwargs,
) -> list[HeterogeneousResult]:
    """The full Fig. 12 sweep."""
    results = []
    for delta2 in delta2_values:
        for n_users in user_counts:
            results.append(run_heterogeneous_cell(n_users, delta2, **kwargs))
    return results


# -- the ``heterogeneous`` experiment spec ------------------------------


def run_heterogeneous_spec_cell(params: Mapping, seed) -> list[dict]:
    """One (delta2, n_users) cell of the Fig. 12 sweep."""
    result = run_heterogeneous_cell(
        int(params["users"]),
        float(params["delta2"]),
        n_periods=int(params["periods"]),
        seed=seed,
        testbed=TestbedConfig(n_levels=int(params["levels"])),
    )
    return [result.as_dict()]


def report_heterogeneous(rows: list[dict], params: Mapping, out: Path) -> str:
    """Fig. 12 summary table plus ``heterogeneous.csv``."""
    table = render_table(
        ["delta2", "users", "EdgeBOL", "oracle", "gap", "delay viol."],
        [
            [r["delta2"], r["n_users"], r["edgebol_cost"], r["oracle_cost"],
             r["gap"], r["delay_violation_rate"]]
            for r in rows
        ],
    )
    path = write_csv(Path(out) / "heterogeneous.csv", rows)
    return f"{table}\n\nwrote {path}"


SPEC = spec_registry.register(ExperimentSpec(
    name="heterogeneous",
    help="Fig. 12 heterogeneous users",
    params=(
        ParamSpec("delta2", type=float, default=(1.0, 8.0), sweep=True,
                  help="BS energy prices to sweep"),
        ParamSpec("users", type=int, default=(2, 4, 6), sweep=True,
                  help="user counts to sweep"),
        ParamSpec("periods", type=int, default=150, help="periods per cell"),
        ParamSpec("levels", type=int, default=7,
                  help="control-grid levels per dimension"),
    ),
    run_cell=run_heterogeneous_spec_cell,
    report=report_heterogeneous,
))
