"""Regret analysis against the offline oracle.

The contextual-bandit objective (problem 2) minimises long-run average
cost; the natural learning-theoretic lens is *regret* versus the
context-dependent oracle.  These helpers compute:

* per-period regret ``u_t - u*(c_t)`` (clipped below at 0 — beating the
  noise-free oracle on a noisy draw is not negative regret),
* cumulative and average regret curves,
* *safety regret*: cumulative constraint-violation magnitude, the
  quantity safe exploration is supposed to keep near zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bandit.oracle import ExhaustiveOracle
from repro.experiments.recorder import RunLog
from repro.testbed.config import ServiceConstraints


@dataclass(frozen=True)
class RegretCurves:
    """Regret series of one run.

    Attributes
    ----------
    per_period:
        Clipped instantaneous regret per period.
    cumulative:
        Running sum of the per-period regret.
    average:
        Cumulative regret divided by elapsed periods.
    safety_cumulative:
        Running sum of constraint-violation magnitudes (delay seconds
        over the bound plus mAP shortfall below the floor).
    """

    per_period: np.ndarray
    cumulative: np.ndarray
    average: np.ndarray
    safety_cumulative: np.ndarray

    @property
    def final_cumulative(self) -> float:
        return float(self.cumulative[-1]) if self.cumulative.size else 0.0

    @property
    def final_average(self) -> float:
        return float(self.average[-1]) if self.average.size else 0.0

    def is_sublinear(self, split: float = 0.5) -> bool:
        """Whether the average regret of the tail beats the head.

        A crude sublinearity check: the mean per-period regret over the
        last ``1 - split`` fraction of the run is lower than over the
        first ``split`` fraction.
        """
        n = self.per_period.size
        if n < 4:
            return False
        cut = max(1, int(n * split))
        head = float(np.mean(self.per_period[:cut]))
        tail = float(np.mean(self.per_period[cut:]))
        return tail < head


def regret_against_constant_oracle(
    log: RunLog, oracle_cost: float
) -> RegretCurves:
    """Regret curves for a fixed-context run with a known oracle cost."""
    costs = np.asarray(log.cost, dtype=float)
    per_period = np.maximum(costs - float(oracle_cost), 0.0)
    cumulative = np.cumsum(per_period)
    steps = np.arange(1, per_period.size + 1)
    average = cumulative / steps

    delays = np.asarray(log.delay_s, dtype=float)
    maps = np.asarray(log.map_score, dtype=float)
    d_max = np.asarray(log.d_max_s, dtype=float)
    rho = np.asarray(log.rho_min, dtype=float)
    finite_delays = np.where(np.isfinite(delays), delays, d_max + 2.0)
    violations = np.maximum(finite_delays - d_max, 0.0) + np.maximum(
        rho - maps, 0.0
    )
    return RegretCurves(
        per_period=per_period,
        cumulative=cumulative,
        average=average,
        safety_cumulative=np.cumsum(violations),
    )


def regret_for_static_run(
    log: RunLog,
    oracle: ExhaustiveOracle,
    constraints: ServiceConstraints,
    snrs_db,
) -> RegretCurves:
    """Convenience: look up the oracle for a static context, then score."""
    best = oracle.best(constraints, snrs_db=snrs_db)
    return regret_against_constant_oracle(log, best.cost)
