"""Regret analysis against the offline oracle.

The contextual-bandit objective (problem 2) minimises long-run average
cost; the natural learning-theoretic lens is *regret* versus the
context-dependent oracle.  These helpers compute:

* per-period regret ``u_t - u*(c_t)`` (clipped below at 0 — beating the
  noise-free oracle on a noisy draw is not negative regret),
* cumulative and average regret curves,
* *safety regret*: cumulative constraint-violation magnitude, the
  quantity safe exploration is supposed to keep near zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping
from pathlib import Path

import numpy as np

from repro.bandit.oracle import ExhaustiveOracle
from repro.experiments import spec as spec_registry
from repro.experiments.recorder import RunLog, write_csv
from repro.experiments.spec import ExperimentSpec, ParamSpec
from repro.testbed.config import ServiceConstraints


@dataclass(frozen=True)
class RegretCurves:
    """Regret series of one run.

    Attributes
    ----------
    per_period:
        Clipped instantaneous regret per period.
    cumulative:
        Running sum of the per-period regret.
    average:
        Cumulative regret divided by elapsed periods.
    safety_cumulative:
        Running sum of constraint-violation magnitudes (delay seconds
        over the bound plus mAP shortfall below the floor).
    """

    per_period: np.ndarray
    cumulative: np.ndarray
    average: np.ndarray
    safety_cumulative: np.ndarray

    @property
    def final_cumulative(self) -> float:
        return float(self.cumulative[-1]) if self.cumulative.size else 0.0

    @property
    def final_average(self) -> float:
        return float(self.average[-1]) if self.average.size else 0.0

    def is_sublinear(self, split: float = 0.5) -> bool:
        """Whether the average regret of the tail beats the head.

        A crude sublinearity check: the mean per-period regret over the
        last ``1 - split`` fraction of the run is lower than over the
        first ``split`` fraction.
        """
        n = self.per_period.size
        if n < 4:
            return False
        cut = max(1, int(n * split))
        head = float(np.mean(self.per_period[:cut]))
        tail = float(np.mean(self.per_period[cut:]))
        return tail < head


def regret_against_constant_oracle(
    log: RunLog, oracle_cost: float
) -> RegretCurves:
    """Regret curves for a fixed-context run with a known oracle cost."""
    costs = np.asarray(log.cost, dtype=float)
    per_period = np.maximum(costs - float(oracle_cost), 0.0)
    cumulative = np.cumsum(per_period)
    steps = np.arange(1, per_period.size + 1)
    average = cumulative / steps

    delays = np.asarray(log.delay_s, dtype=float)
    maps = np.asarray(log.map_score, dtype=float)
    d_max = np.asarray(log.d_max_s, dtype=float)
    rho = np.asarray(log.rho_min, dtype=float)
    finite_delays = np.where(np.isfinite(delays), delays, d_max + 2.0)
    violations = np.maximum(finite_delays - d_max, 0.0) + np.maximum(
        rho - maps, 0.0
    )
    return RegretCurves(
        per_period=per_period,
        cumulative=cumulative,
        average=average,
        safety_cumulative=np.cumsum(violations),
    )


def regret_for_static_run(
    log: RunLog,
    oracle: ExhaustiveOracle,
    constraints: ServiceConstraints,
    snrs_db,
) -> RegretCurves:
    """Convenience: look up the oracle for a static context, then score."""
    best = oracle.best(constraints, snrs_db=snrs_db)
    return regret_against_constant_oracle(log, best.cost)


# -- the ``regret`` experiment spec -------------------------------------


def run_regret_cell(params: Mapping, seed) -> list[dict]:
    """One EdgeBOL run vs the offline oracle, scored as regret curves."""
    from repro.core import EdgeBOL
    from repro.experiments.runner import run_agent
    from repro.testbed.config import CostWeights, TestbedConfig
    from repro.testbed.scenarios import static_scenario
    from repro.utils.rng import seed_tree

    mean_snr_db = 35.0
    delta2 = float(params["delta2"])
    testbed = TestbedConfig(n_levels=int(params["levels"]))
    constraints = ServiceConstraints(0.4, 0.5)
    weights = CostWeights(1.0, delta2)
    grid = testbed.control_grid()
    env_rng, oracle_rng = seed_tree(seed, 2)

    env = static_scenario(mean_snr_db=mean_snr_db, rng=env_rng, config=testbed)
    agent = EdgeBOL(grid, constraints, weights)

    # Oracle first (its own RNG branch, so run order cannot leak into
    # the agent's streams): knowing u* up front lets a traced run put
    # per-period regret into its decision records.
    oracle_env = static_scenario(
        mean_snr_db=mean_snr_db, rng=oracle_rng, config=testbed
    )
    oracle = ExhaustiveOracle(oracle_env, weights, control_grid=grid)
    best = oracle.best(constraints, snrs_db=[mean_snr_db] * env.n_users)

    log = run_agent(
        env, agent, int(params["periods"]), oracle_cost=best.cost
    )
    curves = regret_against_constant_oracle(log, best.cost)
    return [
        {
            "delta2": delta2,
            "t": t,
            "regret": float(curves.per_period[t]),
            "cumulative": float(curves.cumulative[t]),
            "average": float(curves.average[t]),
            "safety_cumulative": float(curves.safety_cumulative[t]),
        }
        for t in range(curves.per_period.size)
    ]


def report_regret(rows: list[dict], params: Mapping, out: Path) -> str:
    """Final regret summary per delta2 plus ``regret.csv``."""
    from repro.utils.ascii import render_table

    summary = []
    for delta2 in params["delta2"]:
        cell = [r for r in rows if r["delta2"] == delta2]
        if not cell:
            continue
        final = cell[-1]
        per_period = np.array([r["regret"] for r in cell])
        n = per_period.size
        cut = max(1, n // 2)
        sublinear = (
            n >= 4 and float(np.mean(per_period[cut:]))
            < float(np.mean(per_period[:cut]))
        )
        summary.append([
            delta2, final["cumulative"], final["average"],
            final["safety_cumulative"], sublinear,
        ])
    table = render_table(
        ["delta2", "cum. regret", "avg regret", "cum. safety", "sublinear"],
        summary,
    )
    path = write_csv(Path(out) / "regret.csv", rows)
    return f"{table}\n\nwrote {path}"


SPEC = spec_registry.register(ExperimentSpec(
    name="regret",
    help="regret vs the offline oracle (learning-theoretic lens)",
    params=(
        ParamSpec("delta2", type=float, default=(1.0, 8.0), sweep=True,
                  help="BS energy prices to sweep"),
        ParamSpec("periods", type=int, default=150, help="periods per run"),
        ParamSpec("levels", type=int, default=7,
                  help="control-grid levels per dimension"),
    ),
    run_cell=run_regret_cell,
    report=report_regret,
))
