"""The experimental testbed, in software.

Glues the RAN, edge and service substrates into the measurable system
of the paper's Fig. 8: an environment that, each orchestration period,
exposes a context (user count + CQI statistics), accepts a joint
control policy (image resolution, airtime, GPU speed, MCS cap) and
returns noisy KPI observations (service delay, mAP, server power, BS
power).
"""

from repro.testbed.config import (
    ControlPolicy,
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
    default_control_grid,
)
from repro.testbed.context import Context
from repro.testbed.env import EdgeAIEnvironment, TestbedObservation
from repro.testbed.powermeter import ObservationNoise, PowerMeter
from repro.testbed.multiservice import MultiServiceEnvironment, SliceSpec
from repro.testbed.scenarios import (
    dynamic_scenario,
    heterogeneous_scenario,
    static_scenario,
)
from repro.testbed.tariffs import (
    DayNightTariff,
    EnergyTariff,
    FlatTariff,
    SolarTariff,
)

__all__ = [
    "ControlPolicy",
    "CostWeights",
    "ServiceConstraints",
    "TestbedConfig",
    "default_control_grid",
    "Context",
    "EdgeAIEnvironment",
    "TestbedObservation",
    "ObservationNoise",
    "PowerMeter",
    "dynamic_scenario",
    "heterogeneous_scenario",
    "static_scenario",
    "MultiServiceEnvironment",
    "SliceSpec",
    "DayNightTariff",
    "EnergyTariff",
    "FlatTariff",
    "SolarTariff",
]
