"""Testbed calibration constants and the joint control space.

Every free parameter of the simulated prototype lives here so a single
object describes one "hardware deployment".  The defaults are calibrated
against the measurement ranges reported in Section 3 of the paper
(DESIGN.md documents each fit); constructing a :class:`TestbedConfig`
with different values models a different deployment (e.g. a more
efficient GPU or a wider radio channel), which the paper explicitly
motivates as the reason learning is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.ran.mac import RadioPolicy
from repro.ran.phy import mcs_from_fraction
from repro.utils.grids import cartesian_grid, linear_levels
from repro.utils.validation import check_fraction, check_non_negative, check_positive


@dataclass(frozen=True)
class ControlPolicy:
    """The joint control vector x = (eta, a, gamma, m), normalised.

    All four coordinates live in [0, 1]:

    * ``resolution``  -- Policy 1, mean image resolution (1.0 = 640x480).
    * ``airtime``     -- Policy 2, uplink duty-cycle budget.
    * ``gpu_speed``   -- Policy 3, normalised GPU power-limit level.
    * ``mcs_fraction``-- Policy 4, normalised maximum-MCS level.
    """

    resolution: float
    airtime: float
    gpu_speed: float
    mcs_fraction: float

    def __post_init__(self) -> None:
        check_fraction(self.resolution, "resolution")
        check_fraction(self.airtime, "airtime")
        check_fraction(self.gpu_speed, "gpu_speed")
        check_fraction(self.mcs_fraction, "mcs_fraction")

    def to_array(self) -> np.ndarray:
        """Control as a 4-vector (resolution, airtime, gpu, mcs)."""
        return np.array(
            [self.resolution, self.airtime, self.gpu_speed, self.mcs_fraction]
        )

    @classmethod
    def from_array(cls, values) -> "ControlPolicy":
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size != 4:
            raise ValueError(f"control vector must have 4 entries, got {arr.size}")
        return cls(
            resolution=float(arr[0]),
            airtime=float(arr[1]),
            gpu_speed=float(arr[2]),
            mcs_fraction=float(arr[3]),
        )

    def radio_policy(self) -> RadioPolicy:
        """Physical radio policies for the MAC scheduler."""
        return RadioPolicy(
            airtime=self.airtime, max_mcs=mcs_from_fraction(self.mcs_fraction)
        )

    @classmethod
    def max_resources(cls) -> "ControlPolicy":
        """The always-safe corner S0: every knob at maximum.

        Highest mAP (full resolution), lowest delay achievable with
        full resolution, and consequently the highest power draw.
        """
        return cls(resolution=1.0, airtime=1.0, gpu_speed=1.0, mcs_fraction=1.0)


@dataclass(frozen=True)
class CostWeights:
    """Monetary weights of eq. (1): ``u = delta1 * p_s + delta2 * p_b``."""

    delta1: float = 1.0
    delta2: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative(self.delta1, "delta1")
        check_non_negative(self.delta2, "delta2")

    def cost(self, server_power_w: float, bs_power_w: float) -> float:
        """Evaluate the cost function on a pair of power readings."""
        return float(self.delta1 * server_power_w + self.delta2 * bs_power_w)


@dataclass(frozen=True)
class ServiceConstraints:
    """The service-level constraints of problem (2).

    ``d_max_s`` upper-bounds the worst-user service delay; ``rho_min``
    lower-bounds the worst-user mAP.
    """

    d_max_s: float = 0.4
    rho_min: float = 0.5

    def __post_init__(self) -> None:
        check_positive(self.d_max_s, "d_max_s")
        check_fraction(self.rho_min, "rho_min")

    def satisfied(self, delay_s: float, map_score: float) -> bool:
        """Whether a KPI pair meets both constraints."""
        return delay_s <= self.d_max_s and map_score >= self.rho_min


@dataclass(frozen=True)
class TestbedConfig:
    """One simulated deployment of the Fig. 8 prototype.

    Attributes mirror hardware properties; see DESIGN.md for the
    calibration of each default against the paper's measurements.
    """

    # Radio
    bandwidth_mhz: float = 20.0
    #: End-to-end fraction of the nominal PHY rate a single closed-loop
    #: UE achieves through the real stack (grants, HARQ, segmentation).
    #: Calibrated so full-airtime top-MCS goodput is ~15 Mb/s.
    mac_efficiency: float = 0.21
    bs_idle_power_w: float = 4.2
    bs_base_busy_power_w: float = 6.0
    bs_mcs_busy_power_w: float = 0.16
    bs_grant_utilization: float = 0.5

    # Edge server / GPU
    gpu_min_power_cap_w: float = 100.0
    gpu_max_power_cap_w: float = 280.0
    gpu_idle_power_w: float = 18.0
    gpu_speed_exponent: float = 0.6
    gpu_base_inference_time_s: float = 0.090
    gpu_resolution_ease_s: float = 0.06
    gpu_busy_draw_fraction: float = 0.72
    host_idle_power_w: float = 48.0
    host_per_request_j: float = 1.2

    # Service / workload
    images_per_measurement: int = 150
    load_multiplier: float = 1.0

    # Control space discretisation (the paper uses 11 levels per axis).
    n_levels: int = 11
    min_resolution: float = 0.25
    min_airtime: float = 0.1

    # Observation noise (relative for delay/power, absolute for mAP).
    delay_noise_rel: float = 0.05
    power_noise_rel: float = 0.02

    # Context space normalisation bounds.
    max_users: int = 8

    def __post_init__(self) -> None:
        check_positive(self.bandwidth_mhz, "bandwidth_mhz")
        if not 0 < self.mac_efficiency <= 1:
            raise ValueError("mac_efficiency must be in (0, 1]")
        if self.n_levels < 2:
            raise ValueError("n_levels must be >= 2")
        check_fraction(self.min_resolution, "min_resolution")
        check_fraction(self.min_airtime, "min_airtime")
        if self.images_per_measurement < 1:
            raise ValueError("images_per_measurement must be >= 1")
        check_positive(self.load_multiplier, "load_multiplier")
        check_non_negative(self.delay_noise_rel, "delay_noise_rel")
        check_non_negative(self.power_noise_rel, "power_noise_rel")
        if self.max_users < 1:
            raise ValueError("max_users must be >= 1")

    def with_load_multiplier(self, multiplier: float) -> "TestbedConfig":
        """Copy of this deployment with emulated background load."""
        return replace(self, load_multiplier=multiplier)

    def control_grid(self) -> np.ndarray:
        """The discretised control space X as an (|X|, 4) array.

        Axis order matches :meth:`ControlPolicy.to_array`.  With the
        default 11 levels per axis, |X| = 14641 as in the paper.
        """
        return default_control_grid(
            n_levels=self.n_levels,
            min_resolution=self.min_resolution,
            min_airtime=self.min_airtime,
        )


def default_control_grid(
    n_levels: int = 11,
    min_resolution: float = 0.25,
    min_airtime: float = 0.1,
) -> np.ndarray:
    """Build the (resolution, airtime, gpu_speed, mcs) control grid.

    Resolution and airtime axes start at their physical minima (the
    paper sweeps resolutions from 25%); GPU speed and MCS cover [0, 1].
    """
    resolution_axis = linear_levels(n_levels, min_resolution, 1.0)
    airtime_axis = linear_levels(n_levels, min_airtime, 1.0)
    gpu_axis = linear_levels(n_levels, 0.0, 1.0)
    mcs_axis = linear_levels(n_levels, 0.0, 1.0)
    return cartesian_grid(resolution_axis, airtime_axis, gpu_axis, mcs_axis)
