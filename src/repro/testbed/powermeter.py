"""Measurement instruments: power meter and KPI observation noise.

The prototype measures BBU and server power with a GW-Instek GPM-8213
digital power meter.  Physical measurements are noisy even in static
setups (the paper stresses that its learner must cope with noisy
observations); this module centralises the noise models.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative


class PowerMeter:
    """Digital power meter with multiplicative Gaussian reading noise.

    Parameters
    ----------
    noise_rel:
        Relative standard deviation of one reading.
    rng:
        Seed or generator.
    """

    def __init__(self, noise_rel: float = 0.02, rng=None) -> None:
        self.noise_rel = check_non_negative(noise_rel, "noise_rel")
        self._rng = ensure_rng(rng)

    def read(self, true_power_w: float) -> float:
        """One noisy reading of a non-negative true power."""
        check_non_negative(true_power_w, "true_power_w")
        if self.noise_rel == 0:
            return float(true_power_w)
        reading = true_power_w * (1.0 + self._rng.normal(0.0, self.noise_rel))
        return float(max(reading, 0.0))

    def read_average(self, true_power_w: float, n_samples: int) -> float:
        """Average of ``n_samples`` independent readings."""
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        return float(np.mean([self.read(true_power_w) for _ in range(n_samples)]))


class ObservationNoise:
    """Noise applied to the per-period KPI observations.

    * delay: multiplicative log-normal (timing jitter scales with the
      magnitude of the delay);
    * mAP: additive Gaussian truncated to [0, 1] (PR-curve sampling
      noise of a finite measurement batch).
    """

    def __init__(
        self,
        delay_noise_rel: float = 0.05,
        map_noise_std: float = 0.02,
        rng=None,
    ) -> None:
        self.delay_noise_rel = check_non_negative(delay_noise_rel, "delay_noise_rel")
        self.map_noise_std = check_non_negative(map_noise_std, "map_noise_std")
        self._rng = ensure_rng(rng)

    def noisy_delay(self, delay_s: float) -> float:
        """Noisy observation of a (possibly infinite) service delay."""
        if not np.isfinite(delay_s):
            return float(delay_s)
        check_non_negative(delay_s, "delay_s")
        if self.delay_noise_rel == 0:
            return float(delay_s)
        sigma = self.delay_noise_rel
        factor = self._rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma)
        return float(delay_s * factor)

    def noisy_map(self, map_score: float) -> float:
        """Noisy observation of a mAP score, clipped to [0, 1]."""
        if not 0.0 <= map_score <= 1.0:
            raise ValueError(f"map_score must be in [0, 1], got {map_score}")
        if self.map_noise_std == 0:
            return float(map_score)
        return float(
            np.clip(map_score + self._rng.normal(0.0, self.map_noise_std), 0.0, 1.0)
        )
