"""The contextual-bandit environment (the whole Fig. 8 prototype).

Per orchestration period (seconds-level, the non-RT RIC timescale):

1. the agent observes the context ``c_t`` (user count + CQI statistics),
2. the agent applies a joint control ``x_t`` (Policies 1-4),
3. the environment solves the closed-loop steady state and returns the
   four noisy performance indicators: service delay, mAP, server power,
   BS power,
4. the wireless channels evolve to the next period.

The environment also exposes a noise-free :meth:`evaluate` used by the
offline exhaustive-search oracle of the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.faults import runtime as faults
from repro.service.detection import SyntheticDetector
from repro.service.images import SyntheticCocoDataset
from repro.service.pipeline import ServiceModel, UserEquipment
from repro.service.profiles import expected_map, map_observation_std
from repro.telemetry import runtime as telemetry
from repro.testbed.config import ControlPolicy, TestbedConfig
from repro.testbed.context import Context
from repro.testbed.powermeter import ObservationNoise, PowerMeter
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass(frozen=True)
class TestbedObservation:
    """One period's KPIs (Performance Indicators 1-4 plus extras).

    ``delay_s`` is the worst-user service delay and ``map_score`` the
    worst-user mAP, matching the constraint definitions of problem (2).

    Attributes
    ----------
    delay_s:
        Worst-user capture-to-response service delay, seconds (PI 1,
        the left side of the ``d(c, x) <= d_max`` constraint in
        problem 2).
    map_score:
        Worst-user detection accuracy, mAP in [0, 1] (PI 2, the
        ``rho(c, x) >= rho_min`` constraint in problem 2).
    server_power_w:
        Edge-server power draw, watts (PI 3, the ``p_s`` term of the
        eq. 1 cost).
    bs_power_w:
        Base-station baseband power draw, watts (PI 4, the ``p_b``
        term of the eq. 1 cost).
    gpu_delay_s:
        Worst-user GPU residence time (queueing + inference), seconds.
    gpu_utilization:
        GPU busy fraction in [0, 1].
    total_rate_hz:
        Aggregate served frame rate, frames/second.
    mean_mcs:
        Mean transport MCS index actually used across users
        (dimensionless, 0..24).
    offered_load_bps:
        Uplink load offered to the BS, bits/second.
    per_user_delay_s:
        Per-user service delays, seconds (``inf`` for starved users).
    per_user_rate_hz:
        Per-user served frame rates, frames/second.
    """

    delay_s: float
    map_score: float
    server_power_w: float
    bs_power_w: float
    gpu_delay_s: float
    gpu_utilization: float
    total_rate_hz: float
    mean_mcs: float
    offered_load_bps: float
    per_user_delay_s: tuple[float, ...]
    per_user_rate_hz: tuple[float, ...]


class EdgeAIEnvironment:
    """Simulated EdgeBOL testbed.

    Parameters
    ----------
    channels:
        One channel process per user; anything with a ``step() -> float``
        method returning an SNR in dB (see :mod:`repro.ran.channel`).
    config:
        Deployment calibration.
    rng:
        Seed or generator for all measurement noise.
    map_mode:
        ``"profile"`` (default) observes mAP as the closed-form expected
        value plus calibrated batch noise — fast, used for long learning
        runs.  ``"detector"`` runs the full synthetic-detector pipeline
        on a fresh batch of COCO-like frames each period.
    """

    def __init__(
        self,
        channels: Sequence,
        config: TestbedConfig | None = None,
        rng=None,
        map_mode: str = "profile",
    ) -> None:
        if not channels:
            raise ValueError("at least one user channel is required")
        if map_mode not in ("profile", "detector"):
            raise ValueError(f"map_mode must be 'profile' or 'detector', got {map_mode!r}")
        self.config = config if config is not None else TestbedConfig()
        if len(channels) > self.config.max_users:
            raise ValueError(
                f"{len(channels)} channels exceed config.max_users="
                f"{self.config.max_users}"
            )
        self.channels = list(channels)
        self.map_mode = map_mode

        noise_rng, meter_rng, detector_rng, dataset_rng = spawn_rngs(ensure_rng(rng), 4)
        cfg = self.config
        self._service = ServiceModel.from_config(cfg)
        self._vbs = self._service.vbs
        self._server = self._service.server
        self._noise = ObservationNoise(
            delay_noise_rel=cfg.delay_noise_rel,
            map_noise_std=map_observation_std(cfg.images_per_measurement),
            rng=noise_rng,
        )
        self._meter = PowerMeter(noise_rel=cfg.power_noise_rel, rng=meter_rng)
        self._detector = SyntheticDetector(rng=detector_rng)
        self._dataset = SyntheticCocoDataset(rng=dataset_rng)
        # Sensor fault injection (docs/ROBUSTNESS.md): None unless a
        # fault plan with `sensor` specs is installed; faulted readings
        # replace the *noisy* KPI samples the agent would have seen.
        self._sensor_faults = faults.make_injector("sensor")
        self._current_snrs = [float(ch.step()) for ch in self.channels]

    @property
    def n_users(self) -> int:
        return len(self.channels)

    @property
    def current_snrs_db(self) -> list[float]:
        """SNRs in effect for the upcoming period."""
        return list(self._current_snrs)

    @property
    def service_model(self) -> ServiceModel:
        """The underlying deterministic service model."""
        return self._service

    def set_load_multiplier(self, multiplier: float) -> None:
        """Scale the slice's offered load for subsequent periods.

        The fleet load harness (:mod:`repro.oran.load`) drives this
        per period to emulate diurnal traces, flash crowds and
        correlated cell load; the multiplier applies inside the BS
        power model exactly like ``TestbedConfig.load_multiplier``.
        """
        if multiplier <= 0:
            raise ValueError(
                f"load multiplier must be positive, got {multiplier}"
            )
        self._service.load_multiplier = float(multiplier)

    def observe_context(self) -> Context:
        """Context the agent sees at the start of the period."""
        return Context.from_snrs(self._current_snrs)

    def evaluate(
        self,
        policy: ControlPolicy,
        snrs_db: Sequence[float] | None = None,
        noisy: bool = False,
    ) -> TestbedObservation:
        """KPIs for a control at given (default: current) channel states.

        With ``noisy=False`` this is the oracle view: deterministic
        steady-state metrics and the expected mAP.
        """
        snrs = list(self._current_snrs if snrs_db is None else snrs_db)
        users = [UserEquipment(snr_db=s) for s in snrs]
        state = self._service.steady_state(
            resolution=policy.resolution,
            radio_policy=policy.radio_policy(),
            gpu_speed=policy.gpu_speed,
            users=users,
        )
        true_map = self._true_map(policy.resolution, noisy=noisy)

        delay = state.max_delay_s
        server_power = state.server.server_power_w
        bs_power = state.bs_power_w
        map_score = true_map
        if noisy:
            delay = self._noise.noisy_delay(delay)
            server_power = self._meter.read(server_power)
            bs_power = self._meter.read(bs_power)
            if self.map_mode == "profile":
                map_score = self._noise.noisy_map(true_map)
            if self._sensor_faults is not None:
                corrupt = self._sensor_faults.corrupt_reading
                server_power = corrupt("server_power", server_power)
                bs_power = corrupt("bs_power", bs_power)
                delay = corrupt("delay", delay)
                map_score = corrupt("map", map_score)
        gpu_delays = state.per_user_gpu_delay_s
        finite_gpu = gpu_delays[np.isfinite(gpu_delays)]
        gpu_delay = float(finite_gpu.max()) if finite_gpu.size else float("inf")
        return TestbedObservation(
            delay_s=float(delay),
            map_score=float(map_score),
            server_power_w=float(server_power),
            bs_power_w=float(bs_power),
            gpu_delay_s=gpu_delay,
            gpu_utilization=state.server.gpu_utilization,
            total_rate_hz=state.total_rate_hz,
            mean_mcs=state.mean_mcs,
            offered_load_bps=state.offered_load_bps,
            per_user_delay_s=tuple(float(d) for d in state.per_user_delay_s),
            per_user_rate_hz=tuple(float(r) for r in state.per_user_rate_hz),
        )

    def _true_map(self, resolution: float, noisy: bool) -> float:
        """mAP for the period, per the configured measurement mode."""
        if noisy and self.map_mode == "detector":
            batch = self._dataset.sample_batch(self.config.images_per_measurement)
            return float(self._detector.measure_map(batch, resolution))
        return expected_map(resolution)

    def step(self, policy: ControlPolicy) -> TestbedObservation:
        """Apply ``policy`` for one period, then advance the channels.

        Returns the noisy KPI vector the agent learns from (seconds,
        mAP, watts — see :class:`TestbedObservation`); recorded as the
        ``env.step`` telemetry span with the solver spans
        (``queueing.solve``) nested beneath it.
        """
        with telemetry.span("env.step") as sp:
            observation = self.evaluate(policy, noisy=True)
            self._current_snrs = [float(ch.step()) for ch in self.channels]
            if sp:
                sp.set("users", len(self.channels))
                sp.set("delay_s", observation.delay_s)
                sp.set("server_power_w", observation.server_power_w)
            return observation
