"""Canonical evaluation scenarios from Section 6 of the paper."""

from __future__ import annotations

from repro.ran.channel import GaussMarkovChannel, SnrTrace, dynamic_context_trace
from repro.testbed.config import TestbedConfig
from repro.testbed.env import EdgeAIEnvironment
from repro.utils.rng import ensure_rng, spawn_rngs


def static_scenario(
    mean_snr_db: float = 35.0,
    n_users: int = 1,
    config: TestbedConfig | None = None,
    rng=None,
    map_mode: str = "profile",
) -> EdgeAIEnvironment:
    """Steady channel conditions (Section 6.2/6.3: single context).

    All users share the same mean SNR with mild Gauss-Markov jitter, as
    when the testbed RF gain is fixed.
    """
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    parent = ensure_rng(rng)
    channel_rngs = spawn_rngs(parent, n_users)
    channels = [
        GaussMarkovChannel(mean_snr_db=mean_snr_db, std_db=0.8, rng=r)
        for r in channel_rngs
    ]
    return EdgeAIEnvironment(channels, config=config, rng=parent, map_mode=map_mode)


def heterogeneous_scenario(
    n_users: int,
    best_snr_db: float = 30.0,
    snr_decay: float = 0.8,
    config: TestbedConfig | None = None,
    rng=None,
    map_mode: str = "profile",
) -> EdgeAIEnvironment:
    """Multiple heterogeneous users (Section 6.4 / Fig. 12).

    User 1 has the best channel (30 dB mean SNR) and every additional
    user has 20% lower SNR, exactly the paper's construction.
    """
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    parent = ensure_rng(rng)
    channel_rngs = spawn_rngs(parent, n_users)
    channels = [
        GaussMarkovChannel(
            mean_snr_db=best_snr_db * (snr_decay**i), std_db=0.8, rng=r
        )
        for i, r in enumerate(channel_rngs)
    ]
    return EdgeAIEnvironment(channels, config=config, rng=parent, map_mode=map_mode)


def dynamic_scenario(
    low_db: float = 5.0,
    high_db: float = 38.0,
    period: int = 50,
    length: int = 150,
    config: TestbedConfig | None = None,
    rng=None,
    map_mode: str = "profile",
) -> EdgeAIEnvironment:
    """Fast context dynamics (Section 6.5 / Fig. 13).

    A single user whose SNR sweeps between ``low_db`` and ``high_db``
    following a deterministic triangular trace with jitter.
    """
    parent = ensure_rng(rng)
    trace: SnrTrace = dynamic_context_trace(
        low_db=low_db,
        high_db=high_db,
        period=period,
        length=length,
        rng=parent,
    )
    return EdgeAIEnvironment([trace], config=config, rng=parent, map_mode=map_mode)
