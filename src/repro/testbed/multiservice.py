"""Multi-service slicing (Section 4.4 of the paper).

The paper discusses extending EdgeBOL to jointly optimise several AI
services and concludes the joint problem is impractical (the
context-action dimensionality grows as 4S + 3), advocating instead one
pre-configured slice per service, each with its own EdgeBOL instance.
This module implements that multi-slice system so the claim can be
evaluated:

* each slice has its own users, image-resolution / airtime / MCS
  policies, and service constraints;
* the slices **share the GPU** (one FCFS station serving all slices'
  requests — the coupled resource the paper worries about) and the
  GPU speed policy of the *hosting* slice applies to the pool;
* the airtime budgets are coupled through the cell: the per-slice
  airtime policies are scaled down proportionally if they sum past 1.

The steady state is one closed multi-class MVA over all slices'
customers, so the cross-slice GPU contention is captured exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.edge.queueing import (
    ClosedNetwork,
    DelayStation,
    QueueingStation,
    solve_exact_mva,
    solve_schweitzer,
)
from repro.service.images import encoded_bits
from repro.service.pipeline import ServiceModel, UserEquipment
from repro.service.profiles import expected_map, map_observation_std
from repro.testbed.config import ControlPolicy, TestbedConfig
from repro.testbed.context import Context
from repro.testbed.env import TestbedObservation
from repro.testbed.powermeter import ObservationNoise, PowerMeter
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass(frozen=True)
class SliceSpec:
    """Static description of one service slice."""

    name: str
    channels: tuple
    # The slice's nominal share when airtime budgets oversubscribe.
    priority: float = 1.0


class MultiServiceEnvironment:
    """Several AI-service slices on one vBS + one GPU server.

    Parameters
    ----------
    slices:
        Slice specifications (channels evolve independently).
    config:
        Shared deployment calibration.
    rng:
        Seed for measurement noise.
    """

    def __init__(
        self,
        slices: Sequence[SliceSpec],
        config: TestbedConfig | None = None,
        rng=None,
    ) -> None:
        if not slices:
            raise ValueError("at least one slice is required")
        self.config = config if config is not None else TestbedConfig()
        self.slices = list(slices)
        total_users = sum(len(s.channels) for s in self.slices)
        if total_users == 0:
            raise ValueError("slices must contain at least one user")
        self._service = ServiceModel.from_config(self.config)
        noise_rng, meter_rng = spawn_rngs(ensure_rng(rng), 2)
        self._noise = ObservationNoise(
            delay_noise_rel=self.config.delay_noise_rel,
            map_noise_std=map_observation_std(self.config.images_per_measurement),
            rng=noise_rng,
        )
        self._meter = PowerMeter(noise_rel=self.config.power_noise_rel, rng=meter_rng)
        self._snrs: list[list[float]] = [
            [float(ch.step()) for ch in s.channels] for s in self.slices
        ]

    @property
    def n_slices(self) -> int:
        return len(self.slices)

    def observe_contexts(self) -> list[Context]:
        """Per-slice contexts (each agent sees only its own slice)."""
        return [Context.from_snrs(snrs) for snrs in self._snrs]

    def _normalised_airtimes(self, policies: Sequence[ControlPolicy]) -> list[float]:
        """Scale airtime budgets down if slices oversubscribe the cell.

        Oversubscription is resolved proportionally to the
        priority-weighted requests (an admission-control rule the slice
        orchestrator would enforce).
        """
        requested = np.array([p.airtime for p in policies])
        total = requested.sum()
        if total <= 1.0:
            return [float(a) for a in requested]
        priorities = np.array([s.priority for s in self.slices])
        weights = requested * priorities
        scaled = weights / weights.sum()
        return [float(a) for a in scaled]

    def step(self, policies: Sequence[ControlPolicy]) -> list[TestbedObservation]:
        """One orchestration period for every slice simultaneously.

        The GPU speed applied to the shared pool is the *maximum* of the
        slices' GPU policies (the pool must honour the most demanding
        slice's latency needs; the power limit follows the busiest
        request).
        """
        if len(policies) != self.n_slices:
            raise ValueError(
                f"need {self.n_slices} policies, got {len(policies)}"
            )
        airtimes = self._normalised_airtimes(policies)
        gpu_speed = max(p.gpu_speed for p in policies)

        # Build one closed network across all slices' users.
        tx_times: list[float] = []
        gpu_demands: list[float] = []
        think_times: list[float] = []
        slice_of_class: list[int] = []
        mean_mcs_per_slice: list[float] = []
        for idx, (spec, policy, airtime) in enumerate(
            zip(self.slices, policies, airtimes)
        ):
            radio = ControlPolicy(
                resolution=policy.resolution,
                airtime=airtime,
                gpu_speed=policy.gpu_speed,
                mcs_fraction=policy.mcs_fraction,
            ).radio_policy()
            grant = self._service.vbs.grant(radio, self._snrs[idx])
            mean_mcs_per_slice.append(grant.mean_mcs)
            bits = encoded_bits(policy.resolution)
            service_time = self._service.server.inference_time_s(
                policy.resolution, gpu_speed
            )
            for alloc, snr in zip(grant.allocations, self._snrs[idx]):
                tx_times.append(
                    self._service.vbs.transmission_time_s(bits, alloc)
                )
                gpu_demands.append(service_time)
                think_times.append(
                    UserEquipment(snr_db=snr).think_time_s(policy.resolution)
                )
                slice_of_class.append(idx)

        n = len(tx_times)
        finite = np.isfinite(tx_times)
        observations: list[TestbedObservation] = []
        if not np.all(finite):
            # Degenerate allocation: report unserved for every slice.
            for idx, policy in enumerate(policies):
                observations.append(self._unserved_observation(idx, policy))
            self._advance_channels()
            return observations

        network = ClosedNetwork(
            populations=tuple(1 for _ in range(n)),
            stations=(
                DelayStation("radio", tuple(float(t) for t in tx_times)),
                QueueingStation("gpu", tuple(gpu_demands)),
            ),
            think_times_s=tuple(think_times),
        )
        if n <= self._service.exact_mva_max_users:
            solution = solve_exact_mva(network)
        else:
            solution = solve_schweitzer(network)

        total_rate = float(solution.throughputs.sum())
        report = self._service.server.load_report(
            total_rate,
            float(np.mean([p.resolution for p in policies])),
            gpu_speed,
        )
        for idx, (policy, airtime) in enumerate(zip(policies, airtimes)):
            members = [k for k, s in enumerate(slice_of_class) if s == idx]
            delays = solution.cycle_times[members]
            rates = solution.throughputs[members]
            bits = encoded_bits(policy.resolution)
            offered = float(rates.sum() * bits * self.config.load_multiplier)
            radio = ControlPolicy(
                resolution=policy.resolution, airtime=airtime,
                gpu_speed=policy.gpu_speed, mcs_fraction=policy.mcs_fraction,
            ).radio_policy()
            grant = self._service.vbs.grant(radio, self._snrs[idx])
            bs_power = self._service.vbs.baseband_power_w(radio, grant, offered)
            # Server power attributed proportionally to GPU demand.
            slice_rate = float(rates.sum())
            share = slice_rate / total_rate if total_rate > 0 else 0.0
            observations.append(TestbedObservation(
                delay_s=self._noise.noisy_delay(float(delays.max())),
                map_score=self._noise.noisy_map(expected_map(policy.resolution)),
                server_power_w=self._meter.read(report.server_power_w * share),
                bs_power_w=self._meter.read(bs_power),
                gpu_delay_s=float(solution.response_times[1, members].max()),
                gpu_utilization=report.gpu_utilization,
                total_rate_hz=slice_rate,
                mean_mcs=mean_mcs_per_slice[idx],
                offered_load_bps=offered,
                per_user_delay_s=tuple(float(d) for d in delays),
                per_user_rate_hz=tuple(float(r) for r in rates),
            ))
        self._advance_channels()
        return observations

    def _unserved_observation(self, idx: int, policy: ControlPolicy):
        report = self._service.server.load_report(0.0, policy.resolution, 0.0)
        return TestbedObservation(
            delay_s=float("inf"),
            map_score=expected_map(policy.resolution),
            server_power_w=report.server_power_w,
            bs_power_w=self._service.vbs.power_model.idle_power_w,
            gpu_delay_s=float("inf"),
            gpu_utilization=0.0,
            total_rate_hz=0.0,
            mean_mcs=0.0,
            offered_load_bps=0.0,
            per_user_delay_s=tuple(
                float("inf") for _ in self.slices[idx].channels
            ),
            per_user_rate_hz=tuple(0.0 for _ in self.slices[idx].channels),
        )

    def _advance_channels(self) -> None:
        self._snrs = [
            [float(ch.step()) for ch in s.channels] for s in self.slices
        ]
