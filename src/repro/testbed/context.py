"""Context vectors (Section 4.2 of the paper).

The context at period ``t`` is ``c_t = [n_t, cqi_mean, cqi_var]``: the
number of users in the slice plus the mean and variance of the uplink
CQI across users during the previous period.  Aggregating per-user
channel state into two statistics keeps the GP input dimension constant
regardless of the user count (the design decision validated in
Section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.ran.phy import snr_to_cqi

#: Largest CQI value, used for normalisation.
_CQI_MAX = 15.0

#: Variance normalisation scale: variance of CQIs spread over the full
#: range is at most (15-1)^2 / 4 = 49.
_CQI_VAR_SCALE = 49.0


@dataclass(frozen=True)
class Context:
    """Aggregated slice context.

    Attributes
    ----------
    n_users:
        Number of active users in the slice.
    cqi_mean:
        Mean uplink CQI across users (1..15).
    cqi_var:
        Population variance of the uplink CQI across users.
    """

    n_users: int
    cqi_mean: float
    cqi_var: float

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {self.n_users}")
        if not 1.0 <= self.cqi_mean <= _CQI_MAX:
            raise ValueError(f"cqi_mean must be in [1, 15], got {self.cqi_mean}")
        if self.cqi_var < 0:
            raise ValueError(f"cqi_var must be >= 0, got {self.cqi_var}")

    @classmethod
    def from_snrs(cls, snrs_db: Sequence[float]) -> "Context":
        """Aggregate per-user SNRs into the CQI-statistics context."""
        snrs = list(snrs_db)
        if not snrs:
            raise ValueError("at least one user SNR is required")
        cqis = np.array([snr_to_cqi(s) for s in snrs], dtype=float)
        return cls(
            n_users=len(cqis),
            cqi_mean=float(cqis.mean()),
            cqi_var=float(cqis.var()),
        )

    def to_array(self, max_users: int = 8) -> np.ndarray:
        """Normalised 3-vector for the GP input space.

        Each coordinate is scaled to roughly [0, 1] so a single set of
        kernel lengthscales covers all context dimensions.
        """
        if max_users < 1:
            raise ValueError(f"max_users must be >= 1, got {max_users}")
        return np.array(
            [
                self.n_users / max_users,
                self.cqi_mean / _CQI_MAX,
                self.cqi_var / _CQI_VAR_SCALE,
            ]
        )

    @classmethod
    def dimension(cls) -> int:
        """Length of the normalised context vector."""
        return 3
