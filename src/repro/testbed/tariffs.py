"""Time-varying energy tariffs (Section 4.3 of the paper).

The paper motivates the cost weights delta1/delta2 with scenarios where
the price of a watt differs between the edge server and the vBS and
*changes over time*: grid electricity priced by day/night bands, or a
solar-powered small cell whose energy scarcity follows the sun.  These
tariff models produce a :class:`repro.testbed.config.CostWeights` per
orchestration period and drive the tariff-tracking experiment.
"""

from __future__ import annotations

import abc
import math

from repro.testbed.config import CostWeights
from repro.utils.validation import check_non_negative, check_positive


class EnergyTariff(abc.ABC):
    """A schedule of energy prices over orchestration periods."""

    @abc.abstractmethod
    def weights_at(self, period: int) -> CostWeights:
        """Cost weights in effect at period ``period``."""

    def changes_at(self, period: int) -> bool:
        """Whether the weights differ from the previous period."""
        if period <= 0:
            return True
        return self.weights_at(period) != self.weights_at(period - 1)


class FlatTariff(EnergyTariff):
    """Constant prices (the baseline setting of the paper)."""

    def __init__(self, delta1: float = 1.0, delta2: float = 1.0) -> None:
        self._weights = CostWeights(delta1, delta2)

    def weights_at(self, period: int) -> CostWeights:
        return self._weights


class DayNightTariff(EnergyTariff):
    """Two-band grid tariff: cheap nights, expensive days.

    Both prices scale; the BS band can differ from the server band
    (e.g. the BS is on a separate metered supply).
    """

    def __init__(
        self,
        day_weights: CostWeights = CostWeights(1.0, 8.0),
        night_weights: CostWeights = CostWeights(1.0, 1.0),
        periods_per_day: int = 100,
        day_fraction: float = 0.6,
    ) -> None:
        if periods_per_day < 2:
            raise ValueError("periods_per_day must be >= 2")
        if not 0.0 < day_fraction < 1.0:
            raise ValueError("day_fraction must be in (0, 1)")
        self.day_weights = day_weights
        self.night_weights = night_weights
        self.periods_per_day = int(periods_per_day)
        self.day_fraction = float(day_fraction)

    def weights_at(self, period: int) -> CostWeights:
        check_non_negative(period, "period")
        phase = (period % self.periods_per_day) / self.periods_per_day
        return self.day_weights if phase < self.day_fraction else self.night_weights


class SolarTariff(EnergyTariff):
    """Solar-powered small cell: BS watts get scarce as output drops.

    delta2 oscillates sinusoidally between a cheap noon value and an
    expensive night value (quantised so weights change in steps, not
    every period).
    """

    def __init__(
        self,
        delta1: float = 1.0,
        delta2_min: float = 1.0,
        delta2_max: float = 32.0,
        periods_per_day: int = 120,
        n_steps: int = 8,
    ) -> None:
        check_non_negative(delta1, "delta1")
        check_positive(delta2_min, "delta2_min")
        if delta2_max <= delta2_min:
            raise ValueError("delta2_max must exceed delta2_min")
        if periods_per_day < 2 or n_steps < 2:
            raise ValueError("periods_per_day and n_steps must be >= 2")
        self.delta1 = float(delta1)
        self.delta2_min = float(delta2_min)
        self.delta2_max = float(delta2_max)
        self.periods_per_day = int(periods_per_day)
        self.n_steps = int(n_steps)

    def weights_at(self, period: int) -> CostWeights:
        check_non_negative(period, "period")
        phase = 2.0 * math.pi * (period % self.periods_per_day) / self.periods_per_day
        # Noon (phase pi) -> minimum price; midnight -> maximum.
        level = 0.5 * (1.0 + math.cos(phase))
        delta2 = self.delta2_min + (self.delta2_max - self.delta2_min) * level
        # Quantise to n_steps bands so the agent sees discrete changes.
        span = self.delta2_max - self.delta2_min
        step = span / (self.n_steps - 1)
        delta2 = self.delta2_min + round((delta2 - self.delta2_min) / step) * step
        return CostWeights(self.delta1, float(delta2))
