"""Tests for the O-RAN orchestration plane."""

import pytest

from repro.oran import (
    A1PolicyRequest,
    A1PolicyService,
    E2Node,
    E2Termination,
    MessageBus,
    O1Termination,
    OranSystem,
    SMOFramework,
)
from repro.oran.a1 import RADIO_POLICY_TYPE_ID, PolicyType, radio_policy_type
from repro.oran.apps import (
    DataCollectorRApp,
    KPIDatabaseXApp,
    PolicyServiceRApp,
    PolicyServiceXApp,
)
from repro.core import EdgeBOL
from repro.testbed.config import (
    ControlPolicy,
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario


class TestMessageBus:
    def test_publish_subscribe(self):
        bus = MessageBus()
        received = []
        bus.subscribe("topic", received.append)
        n = bus.publish("topic", "hello")
        assert n == 1 and received == ["hello"]

    def test_multiple_subscribers_in_order(self):
        bus = MessageBus()
        log = []
        bus.subscribe("t", lambda m: log.append(("a", m)))
        bus.subscribe("t", lambda m: log.append(("b", m)))
        bus.publish("t", 1)
        assert log == [("a", 1), ("b", 1)]

    def test_unsubscribe(self):
        bus = MessageBus()
        received = []
        bus.subscribe("t", received.append)
        bus.unsubscribe("t", received.append)
        bus.publish("t", 1)
        assert received == []

    def test_history_bounded(self):
        bus = MessageBus(history_limit=3)
        for i in range(10):
            bus.publish("t", i)
        assert bus.history("t") == [7, 8, 9]

    def test_empty_topic_rejected(self):
        bus = MessageBus()
        with pytest.raises(ValueError):
            bus.publish("", 1)

    def test_topics_listing(self):
        bus = MessageBus()
        bus.publish("a", 1)
        bus.subscribe("b", lambda m: None)
        assert bus.topics() == ["a", "b"]


class TestA1PolicyService:
    def make(self):
        service = A1PolicyService()
        service.register_type(radio_policy_type())
        return service

    def put(self, service, airtime=0.5, max_mcs=20, policy_id="p1"):
        return service.handle(A1PolicyRequest(
            operation="PUT",
            policy_type_id=RADIO_POLICY_TYPE_ID,
            policy_id=policy_id,
            body={"airtime": airtime, "max_mcs": max_mcs},
        ))

    def test_put_creates(self):
        service = self.make()
        response = self.put(service)
        assert response.status == 201
        assert service.instances(RADIO_POLICY_TYPE_ID) == ["p1"]

    def test_put_replaces(self):
        service = self.make()
        self.put(service)
        response = self.put(service, airtime=0.9)
        assert response.status == 200

    def test_get(self):
        service = self.make()
        self.put(service, airtime=0.7)
        response = service.handle(A1PolicyRequest(
            operation="GET", policy_type_id=RADIO_POLICY_TYPE_ID,
            policy_id="p1",
        ))
        assert response.ok and response.body["airtime"] == 0.7

    def test_get_missing_404(self):
        service = self.make()
        response = service.handle(A1PolicyRequest(
            operation="GET", policy_type_id=RADIO_POLICY_TYPE_ID,
            policy_id="nope",
        ))
        assert response.status == 404

    def test_delete(self):
        service = self.make()
        self.put(service)
        response = service.handle(A1PolicyRequest(
            operation="DELETE", policy_type_id=RADIO_POLICY_TYPE_ID,
            policy_id="p1",
        ))
        assert response.status == 204
        assert service.instances(RADIO_POLICY_TYPE_ID) == []

    def test_schema_validation(self):
        service = self.make()
        response = service.handle(A1PolicyRequest(
            operation="PUT", policy_type_id=RADIO_POLICY_TYPE_ID,
            policy_id="p1", body={"airtime": 2.0, "max_mcs": 20},
        ))
        assert response.status == 400
        assert any("airtime" in e for e in response.body["errors"])

    def test_unknown_field_rejected(self):
        service = self.make()
        response = service.handle(A1PolicyRequest(
            operation="PUT", policy_type_id=RADIO_POLICY_TYPE_ID,
            policy_id="p1",
            body={"airtime": 0.5, "max_mcs": 20, "bogus": 1},
        ))
        assert response.status == 400

    def test_unknown_type_404(self):
        service = self.make()
        response = service.handle(A1PolicyRequest(
            operation="PUT", policy_type_id=99999, policy_id="p1",
        ))
        assert response.status == 404

    def test_enforcer_called(self):
        service = self.make()
        calls = []
        service.register_enforcer(lambda t, p, b: calls.append((t, p, b)))
        self.put(service, airtime=0.4)
        assert calls[-1][2]["airtime"] == 0.4
        service.handle(A1PolicyRequest(
            operation="DELETE", policy_type_id=RADIO_POLICY_TYPE_ID,
            policy_id="p1",
        ))
        assert calls[-1][2] is None

    def test_policy_type_validate(self):
        ptype = PolicyType(1, "t", {"x": (0.0, 1.0)})
        assert ptype.validate({"x": 0.5}) == []
        assert ptype.validate({}) == ["missing field 'x'"]
        assert "must be numeric" in ptype.validate({"x": "str"})[0]


class TestE2:
    def test_control_sets_mac_policy(self):
        bus = MessageBus()
        node = E2Node("enb", bus)
        termination = E2Termination(bus)
        termination.send_control(airtime=0.3, max_mcs=12)
        assert node.radio_policy.airtime == 0.3
        assert node.radio_policy.max_mcs == 12

    def test_indication_requires_subscription(self):
        bus = MessageBus()
        node = E2Node("enb", bus)
        termination = E2Termination(bus)
        received = []
        termination.register_indication_handler(received.append)
        node.report_kpis({"bs_power_w": 5.0})
        assert received == []  # no subscription yet
        termination.subscribe_kpis("xapp", ("bs_power_w",))
        node.report_kpis({"bs_power_w": 5.0})
        assert len(received) == 1
        assert received[0].kpis == {"bs_power_w": 5.0}

    def test_indication_filters_kpis(self):
        bus = MessageBus()
        node = E2Node("enb", bus)
        termination = E2Termination(bus)
        received = []
        termination.register_indication_handler(received.append)
        termination.subscribe_kpis("xapp", ("bs_power_w",))
        node.report_kpis({"bs_power_w": 5.0, "secret": 1.0})
        assert "secret" not in received[0].kpis


class TestO1AndApps:
    def test_o1_forwarding(self):
        bus = MessageBus()
        o1 = O1Termination(bus)
        received = []
        o1.register_handler(received.append)
        o1.forward("src", {"k": 1.0})
        assert received[0].kpis == {"k": 1.0}

    def test_kpi_xapp_pipeline(self):
        bus = MessageBus()
        node = E2Node("enb", bus)
        e2 = E2Termination(bus)
        o1 = O1Termination(bus)
        xapp = KPIDatabaseXApp(e2, o1)
        collector = DataCollectorRApp(o1)
        e2.subscribe_kpis(xapp.name, ("bs_power_w",))
        node.report_kpis({"bs_power_w": 6.2})
        assert collector.latest_kpis == {"bs_power_w": 6.2}
        assert len(xapp.records) == 1

    def test_policy_rapp_xapp_path(self):
        bus = MessageBus()
        node = E2Node("enb", bus)
        e2 = E2Termination(bus)
        a1 = A1PolicyService()
        a1.register_type(radio_policy_type())
        PolicyServiceXApp(a1, e2)
        service_knobs = []
        rapp = PolicyServiceRApp(
            a1, on_service_policy=lambda r, g: service_knobs.append((r, g))
        )
        decision = ControlPolicy(0.5, 0.6, 0.7, 0.8)
        rapp.deploy(decision)
        assert node.radio_policy.airtime == pytest.approx(0.6)
        assert node.radio_policy.max_mcs == decision.radio_policy().max_mcs
        assert service_knobs == [(0.5, 0.7)]


class TestOranSystem:
    def test_full_loop_enforces_decision(self):
        testbed = TestbedConfig(n_levels=5)
        env = static_scenario(mean_snr_db=35.0, rng=0, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        system = OranSystem(env, agent)
        records = system.run(5)
        assert len(records) == 5
        smo = system.smo
        assert smo.policy_rapp.deployed_policies == 5
        assert smo.policy_xapp.enforced == 5
        assert smo.data_rapp.report_count == 5
        # KPI path delivered the BS power the agent consumed.
        last = records[-1]
        assert last.observation.bs_power_w == pytest.approx(
            smo.data_rapp.latest_kpis["bs_power_w"]
        )

    def test_loop_matches_direct_drive_structure(self):
        """Costs through the O-RAN plane stay in the same range as
        driving the environment directly."""
        testbed = TestbedConfig(n_levels=5)
        env = static_scenario(mean_snr_db=35.0, rng=1, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        system = OranSystem(env, agent)
        records = system.run(10)
        costs = [r.cost for r in records]
        assert all(80.0 < c < 200.0 for c in costs)

    def test_smo_framework_wiring(self):
        smo = SMOFramework()
        assert smo.near_rt_ric.a1_service.policy_types() == [RADIO_POLICY_TYPE_ID]
        assert len(smo.near_rt_ric.xapps) == 2
        assert len(smo.non_rt_ric.rapps) == 2
        assert smo.e2_node.subscriptions  # KPI subscription registered


class TestReleaseDueReentrancy:
    """Regression: ``_release_due`` under reentrant same-topic publish.

    A handler that publishes on the topic it receives from re-enters
    ``_release_due`` while a delayed message is being delivered.  The
    old implementation committed the new held state only *after*
    delivering, so the reentrant call re-aged the already-due entry and
    delivered it a second time, out of order relative to history.
    """

    @staticmethod
    def _plan():
        from repro.faults import FaultPlan, FaultSpec
        return FaultPlan(specs=(
            FaultSpec(kind="bus", mode="delay", target="t", at=(0, 1),
                      magnitude=1.0),
        ))

    def test_sync_bus_no_duplicate_release(self):
        from repro.faults import use

        with use(self._plan()):
            bus = MessageBus()
            seen = []
            fired = []

            def handler(message):
                seen.append(message)
                if message == "A" and not fired:
                    fired.append(True)
                    bus.publish("t", "R")  # reentrant same-topic publish

            bus.subscribe("t", handler)
            bus.publish("t", "A")   # held for 1 publish
            bus.publish("t", "B")   # releases A (handler republishes), held
            bus.publish("t", "C")   # releases B
            assert seen.count("A") == 1, "delayed message delivered twice"
            assert seen == ["A", "R", "B", "C"]
            assert bus.history("t") == seen

    def test_async_bus_no_duplicate_release(self):
        from repro.faults import use
        from repro.oran import AsyncMessageBus, post

        with use(self._plan()):
            bus = AsyncMessageBus()
            seen = []
            fired = []

            def handler(message):
                seen.append(message)
                if message == "A" and not fired:
                    fired.append(True)
                    post(bus, "t", "R")

            bus.subscribe("t", handler)
            for message in ("A", "B", "C"):
                post(bus, "t", message)
                bus.drain()
            assert seen.count("A") == 1, "delayed message delivered twice"
            # The handler runs deferred (after publish "B" completed and
            # held its message), so its reentrant publish is the aging
            # publish that releases "B" — ahead of "R", unlike the
            # inline sync ordering.  The invariants under test hold on
            # both transports: exactly-once release, history == delivery.
            assert seen == ["A", "B", "R", "C"]
            assert bus.history("t") == seen
