"""Integration tests for the numerics modes (batched, sparse, dense).

The dense default is the bit-identity reference, so these tests pin the
three claims the numerics refactor makes:

* **batched == dense** — the stacked multi-head engine path produces
  the same moments as the per-head loop (1e-9) and counts work on the
  :class:`EngineStats` counters tally-for-tally, through rebuilds,
  extensions, cache hits, evictions, empty (prior) heads and
  custom-kernel heads that fall back to the per-head path;
* **eviction is replay-stable** — a run that crosses
  ``max_observations + eviction_block`` produces bit-identical
  trajectories whether the engine cache is warm or cold at eviction
  time, and a sparse budget large enough never to trigger produces
  exactly the dense trajectory;
* **the mode is observable** — agents expose ``numerics_mode``,
  decision records carry it, ``repro diagnose`` stamps it on anomaly
  flags, and the CLI flags export the selection to the environment.
"""

import os

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import EdgeBOL, EdgeBOLConfig
from repro.core.backend import (
    ENV_BACKEND,
    ENV_BATCHED,
    ENV_BUDGET,
    ENV_SPARSE,
    NumericsConfig,
)
from repro.core.gp import GaussianProcess
from repro.core.kernels import RBF, Matern
from repro.core.posterior import SurrogateEngine
from repro.obs import runtime as obs
from repro.obs.diagnose import detect_anomalies, render_dashboard
from repro.testbed.config import CostWeights, ServiceConstraints, TestbedConfig
from repro.testbed.scenarios import static_scenario

CONTEXT_DIM = 3
CONTROL_DIM = 4
D = CONTEXT_DIM + CONTROL_DIM
ENV_VARS = (ENV_BACKEND, ENV_BATCHED, ENV_SPARSE, ENV_BUDGET)


@pytest.fixture
def clean_numerics_env():
    """Snapshot and restore the numerics environment variables."""
    saved = {var: os.environ.pop(var, None) for var in ENV_VARS}
    yield
    for var, value in saved.items():
        if value is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = value


class TiltedMatern(Matern):
    """A user-defined kernel: excluded from exact-type batch grouping."""


def make_heads(cost_kwargs=None):
    """Four heads: two groupable Materns, one RBF, one custom kernel."""
    return {
        "cost": GaussianProcess(
            Matern(lengthscales=np.full(D, 0.7), output_scale=4.0),
            noise_variance=0.01, **(cost_kwargs or {}),
        ),
        "delay": GaussianProcess(
            Matern(lengthscales=np.full(D, 0.6), output_scale=0.02),
            noise_variance=0.001, prior_mean=0.8,
        ),
        "map": GaussianProcess(
            RBF(lengthscales=np.full(D, 0.9), output_scale=0.02),
            noise_variance=0.001,
        ),
        "power": GaussianProcess(
            TiltedMatern(lengthscales=np.full(D, 0.8), output_scale=1.0),
            noise_variance=0.01,
        ),
    }


def counters(engine):
    """Snapshot minus the (non-deterministic) wall time."""
    snap = engine.stats.snapshot()
    snap.pop("wall_time_s")
    return snap


class TestBatchedMatchesDense:
    def test_lifecycle_moments_and_counters(self):
        """Rebuild/extend/hit/evict/prior paths, moment + counter parity.

        The cost head evicts mid-run, the map head stays empty (prior
        path) for the first stretch, and the power head's custom kernel
        exercises the per-head fallback inside the batched sweep.
        """
        rng = np.random.default_rng(1)
        grid = rng.random((40, CONTROL_DIM))
        evict_kwargs = {"max_observations": 8, "eviction_block": 3}
        dense_heads = make_heads(cost_kwargs=evict_kwargs)
        batched_heads = make_heads(cost_kwargs=evict_kwargs)
        dense = SurrogateEngine(dense_heads, grid, context_dim=CONTEXT_DIM,
                                batched=False)
        batched = SurrogateEngine(batched_heads, grid,
                                  context_dim=CONTEXT_DIM, batched=True)
        assert not dense.batched and batched.batched
        contexts = [rng.random(CONTEXT_DIM) for _ in range(2)]
        for t in range(18):
            context = contexts[t % 2]
            z = np.concatenate([context, grid[t % 40]])
            for name in dense_heads:
                if name == "map" and t < 12:
                    continue  # empty head: both paths serve the prior
                y = float(rng.normal())
                dense_heads[name].add(z, y)
                batched_heads[name].add(z, y)
            for engine in (dense, batched):
                engine.posterior(context)  # rebuild/extend pass
            d = dense.posterior(context)   # pure cache-hit pass
            b = batched.posterior(context)
            for name in d.heads:
                np.testing.assert_allclose(b.mean(name), d.mean(name),
                                           atol=1e-9, rtol=0)
                np.testing.assert_allclose(b.variance(name),
                                           d.variance(name),
                                           atol=1e-9, rtol=0)
        assert dense_heads["cost"].evictions >= 1
        assert batched_heads["cost"].evictions >= 1
        assert counters(batched) == counters(dense)

    def test_kernel_evals_counter_identical(self):
        """The satellite fix: batched kernel_evals == per-head loop's."""
        rng = np.random.default_rng(2)
        grid = rng.random((25, CONTROL_DIM))
        dense_heads = make_heads()
        batched_heads = make_heads()
        dense = SurrogateEngine(dense_heads, grid, context_dim=CONTEXT_DIM,
                                batched=False)
        batched = SurrogateEngine(batched_heads, grid,
                                  context_dim=CONTEXT_DIM, batched=True)
        context = rng.random(CONTEXT_DIM)
        for t in range(4):
            z = np.concatenate([context, grid[t]])
            for name in dense_heads:
                dense_heads[name].add(z, float(t))
                batched_heads[name].add(z, float(t))
            dense.posterior(context)
            batched.posterior(context)
        stats_d, stats_b = counters(dense), counters(batched)
        assert stats_b["kernel_evals"] == stats_d["kernel_evals"]
        assert stats_b["rebuilds"] == stats_d["rebuilds"]
        assert stats_b["extensions"] == stats_d["extensions"]
        assert stats_b["cache_hits"] == stats_d["cache_hits"]

    def test_subset_head_query_preserves_order(self):
        rng = np.random.default_rng(3)
        grid = rng.random((20, CONTROL_DIM))
        heads = make_heads()
        engine = SurrogateEngine(heads, grid, context_dim=CONTEXT_DIM,
                                 batched=True)
        context = rng.random(CONTEXT_DIM)
        z = np.concatenate([context, grid[0]])
        for gp in heads.values():
            gp.add(z, 1.0)
        batch = engine.posterior(context, heads=("delay", "cost"))
        assert batch.heads == ("delay", "cost")
        with pytest.raises(KeyError):
            engine.posterior(context, heads=("bogus",))

    def test_single_head_query_works_batched(self):
        rng = np.random.default_rng(4)
        grid = rng.random((15, CONTROL_DIM))
        heads = make_heads()
        engine = SurrogateEngine(heads, grid, context_dim=CONTEXT_DIM,
                                 batched=True)
        context = rng.random(CONTEXT_DIM)
        batch = engine.posterior(context, heads=("cost",))
        joint = engine.joint_grid(context)
        mean, var = heads["cost"].predict(joint)
        np.testing.assert_allclose(batch.mean("cost"), mean, atol=1e-8)
        np.testing.assert_allclose(batch.variance("cost"), var, atol=1e-8)


def run_trajectory(agent_config=None, reset_at=None, n_periods=28):
    """One seeded static run; returns (per-period rows, agent, events).

    ``reset_at`` drops the engine cache cold immediately before that
    period's selection.  ``events`` records the period at which each
    GP's first eviction landed (-1 when it never did).
    """
    testbed = TestbedConfig(n_levels=5)
    env = static_scenario(mean_snr_db=35.0, rng=0, config=testbed)
    agent = EdgeBOL(
        testbed.control_grid(),
        ServiceConstraints(0.4, 0.5),
        CostWeights(1.0, 1.0),
        config=agent_config,
    )
    rows = []
    first_eviction = -1
    for t in range(n_periods):
        if reset_at is not None and t == reset_at:
            agent.engine.reset_cache()
        context = env.observe_context()
        policy = agent.select(context)
        observation = env.step(policy)
        cost = agent.observe(context, policy, observation)
        if first_eviction < 0 and agent.gps[0].evictions > 0:
            first_eviction = t
        rows.append((
            float(cost),
            tuple(float(v) for v in policy.to_array()),
            int(agent.last_safe_set_size),
            float(observation.delay_s),
            float(observation.map_score),
        ))
    return rows, agent, first_eviction


class TestEvictionReplayStability:
    @pytest.mark.parametrize("config,n_periods", [
        # Dense default path: oldest-block drop at
        # max_observations + eviction_block (GP default block of 100).
        (EdgeBOLConfig(max_observations=8), 115),
        # Sparse policy path: inducing-subset eviction at budget + block.
        (EdgeBOLConfig(numerics=NumericsConfig(
            sparse=True, sparse_budget=10, sparse_block=5)), 28),
    ], ids=["dense-default", "sparse-policy"])
    def test_rows_identical_warm_or_cold_cache_at_eviction(
            self, config, n_periods):
        """The satellite bit-identity check for the eviction path.

        The engine cache never feeds back into GP state, so the
        trajectory must be byte-for-byte the same whether the cache is
        warm or freshly reset when the budget-crossing eviction lands.
        """
        warm, agent, evict_t = run_trajectory(config, n_periods=n_periods)
        assert evict_t > 0, "run never crossed the eviction threshold"
        assert agent.gps[0].evictions >= 1
        cold, _, _ = run_trajectory(config, reset_at=evict_t,
                                    n_periods=n_periods)
        assert warm == cold

    def test_big_budget_sparse_matches_dense_exactly(self):
        """A sparse budget that never triggers is the dense run, bit-
        for-bit: same RunLog rows, zero evictions."""
        dense_rows, _, _ = run_trajectory(EdgeBOLConfig())
        sparse_rows, agent, _ = run_trajectory(EdgeBOLConfig(
            numerics=NumericsConfig(sparse=True, sparse_budget=512),
        ))
        assert agent.numerics_mode == "sparse"
        assert all(gp.evictions == 0 for gp in agent.gps)
        assert sparse_rows == dense_rows

    def test_small_budget_sparse_run_stays_bounded_and_safe(self):
        numerics = NumericsConfig(sparse=True, sparse_budget=8,
                                  sparse_block=4)
        rows, agent, _ = run_trajectory(
            EdgeBOLConfig(numerics=numerics), n_periods=30
        )
        assert all(gp.evictions >= 1 for gp in agent.gps)
        assert all(
            gp.n_observations <= numerics.sparse_budget + numerics.sparse_block
            for gp in agent.gps
        )
        assert all(np.isfinite(row[0]) for row in rows)
        # The learner still functions: the safe set grew beyond {S0}.
        assert rows[-1][2] > 1

    def test_explicit_max_observations_beats_sparse_budget(self):
        config = EdgeBOLConfig(
            max_observations=6,
            numerics=NumericsConfig(sparse=True, sparse_budget=512,
                                    sparse_block=4),
        )
        _, agent, _ = run_trajectory(config, n_periods=20)
        assert all(gp.n_observations <= 6 + 4 for gp in agent.gps)

    def test_batched_agent_runs_and_reports_mode(self):
        rows, agent, _ = run_trajectory(EdgeBOLConfig(
            numerics=NumericsConfig(batched_heads=True),
        ), n_periods=15)
        assert agent.numerics_mode == "batched"
        assert agent.engine.batched
        assert all(np.isfinite(row[0]) for row in rows)


class TestModeObservability:
    @pytest.fixture(autouse=True)
    def _no_sink(self):
        obs.uninstall()
        yield
        obs.uninstall()

    def test_decision_records_carry_numerics_mode(self):
        testbed = TestbedConfig(n_levels=4)
        env = static_scenario(mean_snr_db=35.0, rng=0, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(), ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
            config=EdgeBOLConfig(
                numerics=NumericsConfig(sparse=True, sparse_budget=64),
            ),
        )
        with obs.use(obs.ListSink()) as sink:
            tracer = obs.make_tracer(agent)
            agent.attach_tracer(tracer)
            for _ in range(4):
                context = env.observe_context()
                policy = agent.select(context)
                agent.observe(context, policy, env.step(policy))
        assert len(sink.records) == 4
        assert all(r["numerics_mode"] == "sparse" for r in sink.records)

    def test_anomaly_flags_stamped_with_mode(self):
        records = [
            {
                "t": t,
                "numerics_mode": "sparse",
                "degraded": True,
                "outcome": {"cost": 100.0},
                "safe_set": {"fraction": 0.1, "grid": 625},
            }
            for t in range(3)
        ]
        flags = detect_anomalies(records)
        assert flags
        assert all(flag["numerics_mode"] == "sparse" for flag in flags)
        dashboard = render_dashboard(records, anomalies=flags)
        assert "sparse" in dashboard

    def test_flags_without_mode_stay_schema_compatible(self):
        records = [{"t": t, "degraded": True} for t in range(3)]
        flags = detect_anomalies(records)
        assert flags
        assert all("numerics_mode" not in flag for flag in flags)


class TestCliNumericsFlags:
    def test_parser_accepts_flags(self):
        parser = build_parser()
        args = parser.parse_args([
            "dynamic", "--periods", "5", "--numerics", "sparse-batched",
            "--gp-budget", "32", "--backend", "numpy",
        ])
        assert args.numerics == "sparse-batched"
        assert args.gp_budget == 32
        assert args.backend == "numpy"

    def test_parser_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dynamic", "--numerics", "warp"])

    def test_flags_export_env_and_run(self, clean_numerics_env, tmp_path,
                                      capsys):
        code = main([
            "dynamic", "--periods", "5", "--levels", "3",
            "--out", str(tmp_path), "--numerics", "sparse",
            "--gp-budget", "24",
        ])
        assert code == 0
        assert os.environ[ENV_SPARSE] == "1"
        assert os.environ[ENV_BUDGET] == "24"
        assert "numerics mode: sparse" in capsys.readouterr().out
        assert (tmp_path / "dynamic.csv").exists()

    def test_no_flags_leave_environment_alone(self, clean_numerics_env,
                                              tmp_path):
        code = main([
            "dynamic", "--periods", "3", "--levels", "3",
            "--out", str(tmp_path),
        ])
        assert code == 0
        assert ENV_SPARSE not in os.environ
